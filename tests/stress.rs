//! Concurrency stress: many simultaneous HTTP clients submitting and
//! polling while the worker pool churns — exercises the full Fig. 1
//! pipeline under load.

use cyclerank_platform::prelude::*;
use cyclerank_platform::server::ApiServer;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One-shot request; `Connection: close` makes the keep-alive server
/// close after the response so `read_to_string` terminates.
fn http(addr: SocketAddr, raw: String) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(raw.as_bytes()).expect("send");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read");
    let status = out.split_whitespace().nth(1).and_then(|v| v.parse().ok()).unwrap_or(0);
    let body = out.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    (status, body)
}

#[test]
fn many_concurrent_clients() {
    let engine = Arc::new(Scheduler::builder().workers(3).build());
    let handle = ApiServer::bind("127.0.0.1:0", Arc::clone(&engine)).unwrap().spawn();
    let addr = handle.addr();

    // 6 client threads × 4 tasks each, mixing languages and algorithms.
    let clients: Vec<_> = (0..6)
        .map(|c| {
            std::thread::spawn(move || {
                let langs = ["it", "pl", "fr", "en"];
                let mut ids = Vec::new();
                for t in 0..4 {
                    let lang = langs[(c + t) % langs.len()];
                    let title = "Fake news";
                    let algo = if t % 2 == 0 { "cycle_rank" } else { "personalized_page_rank" };
                    let body = format!(
                        r#"{{"dataset":"fixture-fakenews-{lang}","params":{{"algorithm":"{algo}"}},"source":"{title}","top_k":3}}"#
                    );
                    let req = format!(
                        "POST /api/tasks HTTP/1.1\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
                        body.len()
                    );
                    let (status, resp) = http(addr, req);
                    assert_eq!(status, 202, "{resp}");
                    let v: serde_json::Value = serde_json::from_str(&resp).unwrap();
                    ids.push(v["task_id"].as_str().unwrap().to_string());
                }
                // Poll all to terminal.
                let deadline = Instant::now() + Duration::from_secs(120);
                for id in ids {
                    loop {
                        let (status, body) = http(
                            addr,
                            format!("GET /api/tasks/{id} HTTP/1.1\r\nconnection: close\r\n\r\n"),
                        );
                        assert_eq!(status, 200);
                        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
                        match v["state"]["state"].as_str() {
                            Some("completed") => break,
                            Some("failed") => panic!("task failed: {body}"),
                            _ => {
                                assert!(Instant::now() < deadline, "stress poll timeout");
                                std::thread::sleep(Duration::from_millis(5));
                            }
                        }
                    }
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }

    // All 24 tasks completed; the board agrees.
    let m = engine.metrics();
    assert_eq!(m.total, 24);
    assert_eq!(m.completed, 24);
    assert_eq!(m.failed, 0);
    handle.stop();
}
