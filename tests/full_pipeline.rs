//! Cross-crate integration: file formats → graph substrate → algorithms →
//! engine → datastore, end to end.

use cyclerank_platform::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// A user uploads a graph file (as the demo supports), the platform parses
/// it, runs every algorithm on it, and the rankings are consistent across
/// the format round-trip.
#[test]
fn uploaded_graph_roundtrips_through_all_formats_and_algorithms() {
    // Build a small labelled community graph and serialize it as Pajek
    // (the only format carrying labels).
    let mut b = GraphBuilder::new();
    b.add_labeled_edge("center", "a");
    b.add_labeled_edge("a", "center");
    b.add_labeled_edge("center", "b");
    b.add_labeled_edge("b", "center");
    b.add_labeled_edge("a", "b");
    b.add_labeled_edge("b", "a");
    b.add_labeled_edge("center", "popular");
    b.add_labeled_edge("a", "popular");
    b.add_labeled_edge("b", "popular");
    b.add_labeled_edge("popular", "elsewhere");
    b.add_labeled_edge("elsewhere", "popular");
    let original = b.build();

    let pajek = cyclerank_platform::formats::write_graph_to_string(
        &original,
        cyclerank_platform::formats::Format::Pajek,
    );
    let loaded = cyclerank_platform::formats::load_graph_from_str(
        &pajek,
        Some(cyclerank_platform::formats::Format::Pajek),
    )
    .expect("parse own output");

    let original = Arc::new(original);
    let loaded = Arc::new(loaded);
    for algo in Algorithm::ALL {
        let a = Query::on(&original)
            .algorithm(algo)
            .reference("center")
            .run()
            .expect("algorithm on original");
        let b = Query::on(&loaded)
            .algorithm(algo)
            .reference("center")
            .run()
            .expect("algorithm on loaded");
        // Same labels in the same ranked order.
        let la: Vec<String> = a.output.ranking.top_k_labeled(&original, 5);
        let lb: Vec<String> = b.output.ranking.top_k_labeled(&loaded, 5);
        assert_eq!(la, lb, "{algo} ranking differs across format round-trip");
    }
}

/// The engine pipeline against a file-backed datastore: results survive on
/// disk and can be re-read by a fresh store instance (the "permalink"
/// behaviour of the demo).
#[test]
fn engine_persists_results_to_file_datastore() {
    let dir = std::env::temp_dir().join(format!("cyclerank-e2e-{}", std::process::id()));
    let store = Arc::new(FileStore::open(&dir).unwrap());

    let task_id = {
        let engine = Scheduler::builder().workers(2).datastore(store.clone()).build();
        let id = engine.submit(
            TaskBuilder::new("fixture-fakenews-fr")
                .algorithm(Algorithm::CycleRank)
                .source("Fake news")
                .top_k(6)
                .build()
                .unwrap(),
        );
        let result = engine.wait(&id, Duration::from_secs(60)).unwrap();
        assert_eq!(result.top[1].0, "Ère post-vérité");
        id
    }; // engine dropped: workers joined

    // A fresh store over the same directory still serves the result.
    let reopened = FileStore::open(&dir).unwrap();
    let persisted = reopened.get_result(&task_id).unwrap().expect("persisted result");
    assert_eq!(persisted.algorithm, "cyclerank");
    assert!(persisted.top.iter().any(|(l, _)| l == "Donald Trump"));
    let log = reopened.get_log(&task_id).unwrap();
    assert!(log.contains("done"));
    std::fs::remove_dir_all(&dir).ok();
}

/// Registry datasets work through the whole stack, including the weighted
/// Twitter graphs.
#[test]
fn weighted_twitter_dataset_through_engine() {
    let engine = Scheduler::builder().workers(1).build();
    let id = engine.submit(
        TaskBuilder::new("twitter-cop27").algorithm(Algorithm::PageRank).top_k(10).build().unwrap(),
    );
    let r = engine.wait(&id, Duration::from_secs(120)).unwrap();
    assert_eq!(r.top.len(), 10);
    // Celebrities (ids 0..5) dominate PageRank on the interaction network.
    let top_ids: Vec<u32> = r.top.iter().filter_map(|(l, _)| l.parse().ok()).collect();
    assert!(
        top_ids.iter().filter(|&&i| i < 5).count() >= 3,
        "expected celebrity accounts in the top-10, got {top_ids:?}"
    );
}

/// The dataset-comparison use case across snapshots of the same language
/// (the "compare a graph at different points in time" functionality).
#[test]
fn temporal_snapshots_differ_but_both_answer() {
    let engine = Scheduler::builder().workers(2).build();
    let sizes: Vec<usize> = ["wiki-sv-2003", "wiki-sv-2018"]
        .iter()
        .map(|ds| {
            let id = engine.submit(
                TaskBuilder::new(*ds).algorithm(Algorithm::PageRank).top_k(5).build().unwrap(),
            );
            let r = engine.wait(&id, Duration::from_secs(120)).unwrap();
            assert_eq!(r.top.len(), 5, "{ds}");
            r.nodes
        })
        .collect();
    assert!(sizes[1] > sizes[0] * 3, "2018 snapshot should dwarf 2003: {sizes:?}");
}
