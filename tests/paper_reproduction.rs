//! The headline reproduction assertions: the regenerated tables agree with
//! the paper at the documented level (see EXPERIMENTS.md).

use relbench::tables;

fn positions(paper: &[&str], measured: &[String]) -> usize {
    paper.iter().zip(measured).filter(|(p, m)| **p == m.as_str()).count()
}

fn set_overlap(paper: &[&str], measured: &[String]) -> usize {
    let p: std::collections::HashSet<&str> = paper.iter().copied().collect();
    measured.iter().filter(|m| p.contains(m.as_str())).count()
}

/// Table I: every column reproduces exactly, position by position.
#[test]
fn table1_exact() {
    for block in tables::table1() {
        for (col, (name, paper)) in block.measured.iter().zip(&block.paper) {
            assert_eq!(
                positions(paper, &col.entries),
                5,
                "Table I {} / {name}: measured {:?}",
                block.caption,
                col.entries
            );
        }
    }
}

/// Table II: PageRank and CycleRank columns exact; PPR columns agree at
/// the set level on ≥ 3 of 5 (the qualitative claim — popular one-way
/// items surface under PPR — is asserted separately in the datasets
/// crate's shape tests).
#[test]
fn table2_pr_and_cr_exact_ppr_set_level() {
    for block in tables::table2() {
        let (pr_col, (_, pr_paper)) = (&block.measured[0], &block.paper[0]);
        assert_eq!(positions(pr_paper, &pr_col.entries), 5, "Table II {} PR", block.caption);

        let (cr_col, (_, cr_paper)) = (&block.measured[1], &block.paper[1]);
        assert_eq!(positions(cr_paper, &cr_col.entries), 5, "Table II {} CR", block.caption);

        let (ppr_col, (_, ppr_paper)) = (&block.measured[2], &block.paper[2]);
        assert!(
            set_overlap(ppr_paper, &ppr_col.entries) >= 3,
            "Table II {} PPR set overlap too low: {:?}",
            block.caption,
            ppr_col.entries
        );
    }
}

/// Table III: all six language columns reproduce exactly.
#[test]
fn table3_exact() {
    for (lang, col) in tables::table3() {
        let paper = tables::table3_paper(lang);
        assert_eq!(
            positions(&paper, &col.entries),
            paper.len(),
            "Table III {lang}: measured {:?}",
            col.entries
        );
    }
}
