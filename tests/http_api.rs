//! End-to-end test of the HTTP API gateway: a TCP client exercising the
//! full Web-UI workflow of §III (browse datasets → submit query set →
//! poll status → fetch results and logs).

use cyclerank_platform::prelude::*;
use cyclerank_platform::server::ApiServer;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One-shot request; `Connection: close` makes the keep-alive server
/// close after the response so `read_to_string` terminates.
fn http(addr: SocketAddr, raw: String) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(raw.as_bytes()).expect("send");
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read");
    let status = out.split_whitespace().nth(1).and_then(|v| v.parse().ok()).unwrap_or(0);
    let body = out.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    http(addr, format!("GET {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n"))
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    http(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn delete(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    http(
        addr,
        format!(
            "DELETE {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn start() -> (cyclerank_platform::server::server::ServerHandle, SocketAddr) {
    let engine = Arc::new(Scheduler::builder().workers(2).build());
    let server = ApiServer::bind("127.0.0.1:0", engine).unwrap();
    let handle = server.spawn();
    let addr = handle.addr();
    (handle, addr)
}

#[test]
fn full_web_ui_workflow() {
    let (handle, addr) = start();

    // Browse.
    let (status, body) = get(addr, "/api/datasets");
    assert_eq!(status, 200);
    let catalog: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert_eq!(catalog.as_array().unwrap().len(), 50);

    // The algorithms listing is registry-backed: ids, metadata, and the
    // parameter schema each algorithm accepts.
    let (status, body) = get(addr, "/api/algorithms");
    assert_eq!(status, 200);
    let algos: serde_json::Value = serde_json::from_str(&body).unwrap();
    let algos = algos.as_array().unwrap();
    assert!(algos.len() >= 7, "at least the paper's seven algorithms");
    let cyclerank = algos.iter().find(|a| a["id"] == "cyclerank").expect("cyclerank listed");
    assert_eq!(cyclerank["name"], "Cyclerank");
    assert_eq!(cyclerank["personalized"], true);
    assert_eq!(cyclerank["produces_scores"], true);
    let params = cyclerank["parameters"].as_array().unwrap();
    assert!(params.iter().any(|p| p["name"] == "max_cycle_len" && p["kind"] == "int"));
    assert!(params.iter().any(|p| p["name"] == "scoring" && p["kind"] == "enum"));
    let tworank = algos.iter().find(|a| a["id"] == "2drank").expect("2drank listed");
    assert_eq!(tworank["produces_scores"], false);
    let pagerank = algos.iter().find(|a| a["id"] == "pagerank").expect("pagerank listed");
    assert_eq!(pagerank["personalized"], false);
    assert!(pagerank["parameters"]
        .as_array()
        .unwrap()
        .iter()
        .any(|p| p["name"] == "damping" && p["kind"] == "float"));

    // Submit the Fig. 2 query set (three rows).
    let qs = r#"[
        {"dataset": "fixture-fakenews-en", "params": {"algorithm": "cycle_rank", "max_cycle_len": 3},
         "source": "Fake news", "top_k": 6},
        {"dataset": "fixture-fakenews-en", "params": {"algorithm": "page_rank", "damping": 0.3},
         "source": null, "top_k": 6},
        {"dataset": "fixture-fakenews-en", "params": {"algorithm": "personalized_page_rank", "damping": 0.3},
         "source": "Fake news", "top_k": 6}
    ]"#;
    let (status, body) = post(addr, "/api/query-sets", qs);
    assert_eq!(status, 202, "{body}");
    let submitted: serde_json::Value = serde_json::from_str(&body).unwrap();
    let ids: Vec<String> = submitted["task_ids"]
        .as_array()
        .unwrap()
        .iter()
        .map(|v| v.as_str().unwrap().to_string())
        .collect();
    assert_eq!(ids.len(), 3);

    // Poll all tasks to terminal state.
    let deadline = Instant::now() + Duration::from_secs(120);
    for id in &ids {
        loop {
            let (status, body) = get(addr, &format!("/api/tasks/{id}"));
            assert_eq!(status, 200);
            let record: serde_json::Value = serde_json::from_str(&body).unwrap();
            match record["state"]["state"].as_str() {
                Some("completed") => break,
                Some("failed") => panic!("task failed: {body}"),
                _ if Instant::now() > deadline => panic!("timeout polling {id}"),
                _ => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    // Fetch the CycleRank result: it must match the Table III en column.
    let (status, body) = get(addr, &format!("/api/tasks/{}/result", ids[0]));
    assert_eq!(status, 200);
    let result: serde_json::Value = serde_json::from_str(&body).unwrap();
    let labels: Vec<&str> =
        result["top"].as_array().unwrap().iter().map(|e| e[0].as_str().unwrap()).collect();
    assert_eq!(labels[0], "Fake news");
    assert_eq!(labels[1], "CNN");
    assert_eq!(labels[2], "Facebook");

    // Logs are served as text.
    let (status, log) = get(addr, &format!("/api/tasks/{}/log", ids[0]));
    assert_eq!(status, 200);
    assert!(log.contains("done"));

    handle.stop();
}

#[test]
fn gateway_rejects_invalid_input() {
    let (handle, addr) = start();
    assert_eq!(post(addr, "/api/tasks", "{malformed").0, 400);
    assert_eq!(post(addr, "/api/query-sets", "[]").0, 400);
    assert_eq!(get(addr, "/api/tasks/no-such-task").0, 404);
    assert_eq!(get(addr, "/api/datasets/no-such-dataset").0, 404);
    assert_eq!(get(addr, "/definitely/not/a/route").0, 404);
    // Edge mutations on an unknown dataset are a client error (404 with a
    // JSON error body), not a server fault.
    let batch = r#"{"edges": [{"source": "a", "target": "b"}]}"#;
    let (status, body) = post(addr, "/api/datasets/no-such-dataset/edges", batch);
    assert_eq!(status, 404, "POST edges on unknown dataset: {body}");
    let err: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert!(err["error"].as_str().unwrap().contains("no-such-dataset"));
    let (status, body) = delete(addr, "/api/datasets/no-such-dataset/edges", batch);
    assert_eq!(status, 404, "DELETE edges on unknown dataset: {body}");
    let err: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert!(err["error"].as_str().unwrap().contains("no-such-dataset"));
    // A task for a dataset that does not exist fails (visible via status).
    let (status, body) = post(
        addr,
        "/api/tasks",
        r#"{"dataset": "ghost", "params": {"algorithm": "page_rank"}, "source": null}"#,
    );
    assert_eq!(status, 202); // accepted, then fails asynchronously
    let id = serde_json::from_str::<serde_json::Value>(&body).unwrap()["task_id"]
        .as_str()
        .unwrap()
        .to_string();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (_, body) = get(addr, &format!("/api/tasks/{id}"));
        let record: serde_json::Value = serde_json::from_str(&body).unwrap();
        if record["state"]["state"] == "failed" {
            assert!(record["state"]["error"].as_str().unwrap().contains("ghost"));
            break;
        }
        assert!(Instant::now() < deadline, "task never failed");
        std::thread::sleep(Duration::from_millis(10));
    }
    handle.stop();
}

/// Kill-and-recover over the wire: upload + mutate through one server
/// bound to a `--data-dir`, stop it cold, boot a second server on the same
/// directory, and demand the identical graph version and durable stats.
#[test]
fn mutations_survive_server_restart() {
    let dir = std::env::temp_dir().join(format!(
        "relserver-e2e-{}-{}",
        std::process::id(),
        std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().subsec_nanos()
    ));

    let boot = |dir: &std::path::Path| {
        let engine =
            Arc::new(Scheduler::builder().workers(1).data_dir(dir).try_build().expect("boot"));
        let server = ApiServer::bind("127.0.0.1:0", engine).unwrap();
        let handle = server.spawn();
        let addr = handle.addr();
        (handle, addr)
    };

    let (handle, addr) = boot(&dir);
    let content = "*Vertices 2\n1 \"me\"\n2 \"friend\"\n*Arcs\n1 2\n2 1\n";
    let body = serde_json::json!({"name": "durable-net", "content": content}).to_string();
    assert_eq!(post(addr, "/api/datasets", &body).0, 200);
    let batch = r#"{"edges": [{"source": "friend", "target": "stranger", "weight": 2.5}]}"#;
    assert_eq!(post(addr, "/api/datasets/durable-net/edges", batch).0, 200);
    let (status, stats) = get(addr, "/api/datasets/durable-net/stats");
    assert_eq!(status, 200);
    let before: serde_json::Value = serde_json::from_str(&stats).unwrap();
    assert!(before["persistence"]["journal_records"].as_u64().unwrap() >= 1);
    handle.stop();

    let (handle, addr) = boot(&dir);
    let (status, stats) = get(addr, "/api/datasets/durable-net/stats");
    assert_eq!(status, 200, "recovered dataset must be served: {stats}");
    let after: serde_json::Value = serde_json::from_str(&stats).unwrap();
    assert_eq!(after["version"], before["version"]);
    assert_eq!(after["nodes"], before["nodes"]);
    assert_eq!(after["edges"], before["edges"]);
    assert_eq!(after["persistence"], before["persistence"]);
    handle.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}
