//! Integration tests for the worker-pool serving path: admission
//! control, per-lane load shedding, keep-alive connection reuse, and
//! oversized-request rejection — all over real TCP connections.

use cyclerank_platform::prelude::*;
use cyclerank_platform::server::{ApiServer, ServingConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// A parsed HTTP response read off a (possibly keep-alive) connection.
struct Resp {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Resp {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }

    fn json(&self) -> serde_json::Value {
        serde_json::from_str(&self.body).unwrap_or_else(|e| panic!("bad json ({e}): {}", self.body))
    }
}

/// Reads exactly one `Content-Length`-framed response, leaving the
/// connection usable for the next request.
fn read_response(reader: &mut BufReader<TcpStream>) -> Resp {
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    let status = line.split_whitespace().nth(1).and_then(|v| v.parse().ok()).unwrap_or(0);
    let mut headers = Vec::new();
    loop {
        let mut h = String::new();
        reader.read_line(&mut h).expect("header line");
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((k, v)) = h.split_once(':') {
            headers.push((k.trim().to_string(), v.trim().to_string()));
        }
    }
    let len: usize = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0);
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).expect("body");
    Resp { status, headers, body: String::from_utf8_lossy(&body).into_owned() }
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    let reader = BufReader::new(s.try_clone().unwrap());
    (s, reader)
}

/// One-shot request on a fresh connection (keep-alive unless the caller
/// put `connection: close` in `raw`); returns the parsed response.
fn one_shot(addr: SocketAddr, raw: &str) -> Resp {
    let (mut s, mut reader) = connect(addr);
    s.write_all(raw.as_bytes()).expect("send");
    read_response(&mut reader)
}

fn get(addr: SocketAddr, path: &str) -> Resp {
    one_shot(addr, &format!("GET {path} HTTP/1.1\r\nconnection: close\r\n\r\n"))
}

fn post(addr: SocketAddr, path: &str, body: &str) -> Resp {
    one_shot(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nconnection: close\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn start(config: ServingConfig) -> cyclerank_platform::server::server::ServerHandle {
    let engine = Arc::new(Scheduler::builder().workers(2).build());
    ApiServer::bind_with("127.0.0.1:0", engine, config).unwrap().spawn()
}

const COLD_SOLVE: &str = r#"{
    "dataset": "fixture-enwiki-2018",
    "params": {"algorithm": "personalized_page_rank"},
    "source": "Freddie Mercury",
    "top_k": 10
}"#;

/// The acceptance scenario: with the expensive lane fully saturated,
/// cheap routes (health, stats, cached solves, certified top-k) keep
/// answering while cold solves and mutations shed with `429` and a
/// `Retry-After` hint.
#[test]
fn saturated_expensive_lane_sheds_while_cheap_routes_answer() {
    let h = start(ServingConfig {
        workers: 4,
        queue_depth: 16,
        max_expensive: 2,
        keep_alive: Duration::from_secs(5),
        retry_after_secs: 1,
    });
    let addr = h.addr();

    // Warm the result cache with one cold synchronous solve while the
    // lane is open.
    let r = post(addr, "/api/tasks?sync=1", COLD_SOLVE);
    assert_eq!(r.status, 200, "warming solve: {}", r.body);
    assert_eq!(r.json()["top"][0][0], "Freddie Mercury");

    // Saturate the lane through the same gate dispatch uses.
    let permits: Vec<_> =
        std::iter::from_fn(|| h.serving_state().try_acquire_expensive()).collect();
    assert_eq!(permits.len(), 2, "configured lane width");

    // Cold solve for a seed nobody cached: shed, with Retry-After.
    let cold = COLD_SOLVE.replace("Freddie Mercury", "Queen (band)");
    let r = post(addr, "/api/tasks?sync=1", &cold);
    assert_eq!(r.status, 429, "{}", r.body);
    assert_eq!(r.header("retry-after"), Some("1"));

    // Mutations are expensive-lane too: shed.
    let r = post(
        addr,
        "/api/datasets/fixture-fakenews-it/edges",
        r#"{"edges": [{"source": "Fake news", "target": "CNN"}]}"#,
    );
    assert_eq!(r.status, 429, "{}", r.body);
    assert_eq!(r.header("retry-after"), Some("1"));

    // Cheap lanes still answer: liveness, the identical (now cached)
    // solve, and a certified top-k solve for an uncached seed.
    assert_eq!(get(addr, "/api/health").status, 200);
    let r = post(addr, "/api/tasks?sync=1", COLD_SOLVE);
    assert_eq!(r.status, 200, "cached solve must bypass the lane: {}", r.body);
    let r = post(addr, "/api/tasks?sync=1&top_k=5", &cold);
    assert_eq!(r.status, 200, "top-k serving must bypass the lane: {}", r.body);
    assert_eq!(r.json()["top"].as_array().unwrap().len(), 5);

    // Async submission only enqueues — never shed by the lane.
    let r = post(addr, "/api/tasks", &cold);
    assert_eq!(r.status, 202, "{}", r.body);

    // The stats route accounts for every shed.
    let stats = get(addr, "/api/serving/stats").json();
    assert_eq!(stats["max_expensive"].as_u64(), Some(2));
    assert_eq!(stats["expensive_in_flight"].as_u64(), Some(2));
    assert!(stats["shed_expensive"].as_u64().unwrap() >= 2, "{stats}");
    assert_eq!(stats["shed_queue_full"].as_u64(), Some(0));
    assert!(stats["engine"]["cache"]["hits"].as_u64().unwrap() >= 1, "{stats}");

    // Releasing the permits reopens the lane.
    drop(permits);
    let r = post(addr, "/api/tasks?sync=1", &cold);
    assert_eq!(r.status, 200, "lane reopens after release: {}", r.body);
    h.stop();
}

/// Satellite: several sequential requests reuse one connection, and
/// `Connection: close` is honored.
#[test]
fn keep_alive_serves_sequential_requests_on_one_connection() {
    let h = start(ServingConfig {
        workers: 2,
        queue_depth: 8,
        max_expensive: 1,
        keep_alive: Duration::from_secs(10),
        retry_after_secs: 1,
    });
    let addr = h.addr();
    let (mut s, mut reader) = connect(addr);

    for i in 0..3 {
        s.write_all(b"GET /api/health HTTP/1.1\r\n\r\n").unwrap();
        let r = read_response(&mut reader);
        assert_eq!(r.status, 200, "request {i}");
        assert_eq!(r.header("connection"), Some("keep-alive"));
    }
    // A POST with a body works mid-connection too.
    let body = r#"{"edges": [{"source": "Fake news", "target": "CNN"}]}"#;
    let raw = format!(
        "POST /api/datasets/fixture-fakenews-it/edges HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    s.write_all(raw.as_bytes()).unwrap();
    assert_eq!(read_response(&mut reader).status, 200);

    // The pool counted the reuses.
    let stats = get(addr, "/api/serving/stats").json();
    assert!(stats["keep_alive_reuses"].as_u64().unwrap() >= 3, "{stats}");

    // `Connection: close` ends the connection after the response.
    s.write_all(b"GET /api/health HTTP/1.1\r\nconnection: close\r\n\r\n").unwrap();
    let r = read_response(&mut reader);
    assert_eq!(r.status, 200);
    assert_eq!(r.header("connection"), Some("close"));
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("server closes");
    assert!(rest.is_empty(), "no bytes after a closed response");
    h.stop();
}

/// Tentpole acceptance: when every worker is pinned and the admission
/// queue is full, further connections are shed at accept time with a
/// `429` and `Retry-After` instead of queueing without bound — and a
/// queued connection is served as soon as a worker frees up.
#[test]
fn full_admission_queue_sheds_connections_with_retry_after() {
    let h = start(ServingConfig {
        workers: 1,
        queue_depth: 1,
        max_expensive: 1,
        keep_alive: Duration::from_secs(30),
        retry_after_secs: 2,
    });
    let addr = h.addr();

    // Pin the only worker: a keep-alive connection holds it between
    // requests until closed.
    let (mut pin, mut pin_reader) = connect(addr);
    pin.write_all(b"GET /api/health HTTP/1.1\r\n\r\n").unwrap();
    assert_eq!(read_response(&mut pin_reader).status, 200);

    // Fills the queue's single slot; no worker will pick it up yet.
    let (mut queued, mut queued_reader) = connect(addr);

    // Queue full: the acceptor itself answers 429 and closes.
    let (mut shed, mut shed_reader) = connect(addr);
    shed.write_all(b"GET /api/health HTTP/1.1\r\n\r\n").unwrap();
    let r = read_response(&mut shed_reader);
    assert_eq!(r.status, 429, "{}", r.body);
    assert_eq!(r.header("retry-after"), Some("2"));
    let mut rest = Vec::new();
    shed_reader.read_to_end(&mut rest).expect("shed connection closes");

    // Releasing the pinned connection frees the worker, which then
    // serves the queued connection.
    drop(pin_reader);
    drop(pin);
    queued.write_all(b"GET /api/serving/stats HTTP/1.1\r\nconnection: close\r\n\r\n").unwrap();
    let r = read_response(&mut queued_reader);
    assert_eq!(r.status, 200, "queued connection served after worker frees: {}", r.body);
    let stats = r.json();
    assert!(stats["shed_queue_full"].as_u64().unwrap() >= 1, "{stats}");
    assert_eq!(stats["workers"].as_u64(), Some(1));
    h.stop();
}

/// Satellite: oversized request bodies and header blocks are refused
/// with `413` before being buffered.
#[test]
fn oversized_requests_get_413() {
    let h = start(ServingConfig {
        workers: 2,
        queue_depth: 8,
        max_expensive: 1,
        keep_alive: Duration::from_secs(5),
        retry_after_secs: 1,
    });
    let addr = h.addr();

    // Declared body beyond the 1 MiB cap: refused on the headers alone.
    let r = one_shot(
        addr,
        &format!("POST /api/datasets HTTP/1.1\r\ncontent-length: {}\r\n\r\n", (1 << 20) + 1),
    );
    assert_eq!(r.status, 413, "{}", r.body);

    // An endless header line: refused after the 16 KiB header cap.
    let (mut s, mut reader) = connect(addr);
    s.write_all(b"GET /api/health HTTP/1.1\r\nx-junk: ").unwrap();
    s.write_all(&vec![b'a'; 64 << 10]).ok(); // server may close mid-write
    let r = read_response(&mut reader);
    assert_eq!(r.status, 413, "{}", r.body);

    let stats = get(addr, "/api/serving/stats").json();
    assert!(stats["rejected_payload"].as_u64().unwrap() >= 2, "{stats}");
    h.stop();
}
