//! # cyclerank-platform
//!
//! Reproduction of *Comparing Personalized Relevance Algorithms for
//! Directed Graphs* (ICDE 2024): the CycleRank demonstration platform —
//! seven relevance algorithms, the execution engine behind the demo's web
//! UI, synthetic stand-ins for its 50 datasets, and a benchmark harness
//! regenerating every table in the paper.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`graph`] (`relgraph`) — CSR directed graphs, traversal, SCCs;
//! * [`formats`] (`relformats`) — edgelist CSV / Pajek / ASD readers and
//!   writers;
//! * [`algorithms`] (`relcore`) — PageRank, Personalized PageRank,
//!   CheiRank, 2DRank, their personalized variants, and CycleRank;
//! * [`datasets`] (`reldata`) — generators, labelled fixtures, the
//!   50-dataset registry;
//! * [`engine`] (`relengine`) — task builder, query sets, scheduler,
//!   executor pool, status board, datastores;
//! * [`server`] (`relserver`) — the HTTP API gateway.
//!
//! ## Quickstart
//!
//! ```
//! use cyclerank_platform::prelude::*;
//!
//! // Build a graph, ask CycleRank who is relevant to "Pasta".
//! let mut b = GraphBuilder::new();
//! b.add_labeled_edge("Pasta", "Italy");
//! b.add_labeled_edge("Italy", "Pasta");
//! b.add_labeled_edge("Pasta", "United States");
//! let g = b.build();
//! let r = g.node_by_label("Pasta").unwrap();
//! let out = cyclerank(&g, r, &CycleRankConfig::default()).unwrap();
//! assert!(out.scores.get(g.node_by_label("Italy").unwrap()) > 0.0);
//! ```

pub use relcore as algorithms;
pub use reldata as datasets;
pub use relengine as engine;
pub use relformats as formats;
pub use relgraph as graph;
pub use relserver as server;

/// One-stop imports for the common workflow.
pub mod prelude {
    pub use relcore::cyclerank::cyclerank;
    pub use relcore::pagerank::pagerank;
    pub use relcore::ppr::personalized_pagerank;
    pub use relcore::runner::{run, Algorithm, AlgorithmParams};
    pub use relcore::{CycleRankConfig, PageRankConfig, ScoringFunction};
    pub use reldata::{catalog, load_dataset};
    pub use relengine::prelude::*;
    pub use relgraph::{DirectedGraph, GraphBuilder, GraphStats, NodeId};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_work() {
        use crate::prelude::*;
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 0)]);
        let (s, _) = pagerank(g.view(), &PageRankConfig::default()).unwrap();
        assert!((s.sum() - 1.0).abs() < 1e-9);
        assert_eq!(catalog().len(), 50);
    }
}
