//! # cyclerank-platform
//!
//! Reproduction of *Comparing Personalized Relevance Algorithms for
//! Directed Graphs* (ICDE 2024): the CycleRank demonstration platform —
//! seven relevance algorithms, the execution engine behind the demo's web
//! UI, synthetic stand-ins for its 50 datasets, and a benchmark harness
//! regenerating every table in the paper.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`graph`] (`relgraph`) — CSR directed graphs, traversal, SCCs;
//! * [`formats`] (`relformats`) — edgelist CSV / Pajek / ASD readers and
//!   writers;
//! * [`algorithms`] (`relcore`) — PageRank, Personalized PageRank,
//!   CheiRank, 2DRank, their personalized variants, CycleRank, and the
//!   trait-based algorithm registry + `Query` API that serves them;
//! * [`datasets`] (`reldata`) — generators, labelled fixtures, the
//!   50-dataset registry;
//! * [`engine`] (`relengine`) — task builder, query sets, scheduler,
//!   executor pool, status board, datastores;
//! * [`server`] (`relserver`) — the HTTP API gateway.
//!
//! ## Quickstart: the `Query` API
//!
//! Every algorithm invocation goes through one fluent front door,
//! [`Query`](relcore::Query): pick a target (an in-memory graph or a
//! catalog dataset id), an algorithm by registry name, parameters, and
//! run.
//!
//! ```
//! use cyclerank_platform::prelude::*;
//!
//! // Build a graph, ask CycleRank who is relevant to "Pasta".
//! let mut b = GraphBuilder::new();
//! b.add_labeled_edge("Pasta", "Italy");
//! b.add_labeled_edge("Italy", "Pasta");
//! b.add_labeled_edge("Pasta", "United States");
//! let g = b.build();
//!
//! let result = Query::on(g)
//!     .algorithm("cyclerank")
//!     .reference("Pasta")
//!     .k(3)
//!     .top(2)
//!     .run()
//!     .unwrap();
//! assert_eq!(result.top_entries()[1].0, "Italy");
//! ```
//!
//! Named datasets from the 50-entry catalog work the same way (the
//! catalog installs its resolver on first touch):
//!
//! ```
//! use cyclerank_platform::prelude::*;
//!
//! assert_eq!(catalog().len(), 50);
//! let result = Query::on("fixture-enwiki-2018")
//!     .algorithm("cyclerank")
//!     .reference("Freddie Mercury")
//!     .k(3)
//!     .top(2)
//!     .run()
//!     .unwrap();
//! assert_eq!(result.top_entries()[1].0, "Queen (band)");
//! ```
//!
//! New algorithms register at runtime through
//! [`AlgorithmRegistry`](relcore::AlgorithmRegistry) and are immediately
//! available to `Query`, the engine, the HTTP API, and the CLI — see the
//! registry docs for a complete out-of-tree example.
//!
//! ## Legacy API
//!
//! The pre-redesign entry point `relcore::runner::run(graph, &params,
//! reference)` is deprecated; it survives as a thin shim over the
//! registry so existing code keeps compiling. Migrate to [`Query`]:
//!
//! ```text
//! // before
//! let out = run(&g, &AlgorithmParams::new(Algorithm::CycleRank), Some(node))?;
//! // after
//! let out = Query::on(&g).algorithm("cyclerank").reference(node).run()?;
//! ```
//!
//! [`Query`]: relcore::Query

pub use relcore as algorithms;
pub use reldata as datasets;
pub use relengine as engine;
pub use relformats as formats;
pub use relgraph as graph;
pub use relserver as server;

/// One-stop imports for the common workflow.
pub mod prelude {
    pub use relcore::cyclerank::cyclerank;
    pub use relcore::pagerank::pagerank;
    pub use relcore::ppr::personalized_pagerank;
    #[allow(deprecated)]
    pub use relcore::runner::run;
    pub use relcore::runner::{Algorithm, AlgorithmParams};
    pub use relcore::{
        AlgorithmDescriptor, AlgorithmRegistry, CycleRankConfig, PageRankConfig, ParamSpec, Query,
        QueryResult, RelevanceAlgorithm, ScoringFunction,
    };
    pub use reldata::{catalog, load_dataset};
    pub use relengine::prelude::*;
    pub use relgraph::{DirectedGraph, GraphBuilder, GraphStats, NodeId};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_work() {
        use crate::prelude::*;
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 0)]);
        let (s, _) = pagerank(g.view(), &PageRankConfig::default()).unwrap();
        assert!((s.sum() - 1.0).abs() < 1e-9);
        assert_eq!(catalog().len(), 50);
    }

    #[test]
    fn query_api_through_facade() {
        use crate::prelude::*;
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 0), (1, 2)]);
        let result = Query::on(g).algorithm("pagerank").top(3).run().unwrap();
        assert_eq!(result.algorithm, "pagerank");
        assert_eq!(result.top_entries().len(), 3);
        assert!(AlgorithmRegistry::global().len() >= 7);
    }
}
