//! Temporal dataset comparison: §IV-D notes that "a similar analysis can
//! also be performed by comparing snapshots of a graph at different points
//! in time, another functionality available in the demo". This example
//! runs the same global PageRank query over the four yearly snapshots of
//! one language edition and reports how the ranking drifts as the
//! encyclopedia grows.
//!
//! ```sh
//! cargo run --example temporal_comparison
//! ```

use cyclerank_platform::algorithms::compare::{jaccard_at_k, rank_biased_overlap};
use cyclerank_platform::prelude::*;
use std::time::Duration;

fn main() {
    let years = [2003u32, 2008, 2013, 2018];
    let engine = Scheduler::builder().workers(4).build();

    // One PageRank task per snapshot of the Swedish edition.
    let mut query_set = QuerySet::new();
    for year in years {
        query_set.add(
            TaskBuilder::new(format!("wiki-sv-{year}"))
                .algorithm(Algorithm::PageRank)
                .top_k(10)
                .build()
                .unwrap(),
        );
    }
    let ids = engine.submit_query_set(&query_set);
    let results = engine.wait_all(&ids, Duration::from_secs(300)).expect("tasks complete");

    println!("{:<6} {:>8} {:>9} {:>12}", "year", "nodes", "edges", "runtime_ms");
    for (year, r) in years.iter().zip(&results) {
        println!("{year:<6} {:>8} {:>9} {:>12}", r.nodes, r.edges, r.runtime_ms);
    }

    // Ranking drift between consecutive snapshots, over the shared node
    // range (earlier snapshots are prefixes of the same generator family,
    // so we compare by node index).
    println!("\nranking drift between consecutive snapshots (top-100):");
    println!("{:<14} {:>10} {:>8}", "pair", "jaccard", "rbo");
    for w in years.windows(2) {
        let (a, b) = (w[0], w[1]);
        let ga = engine.executor().dataset(&format!("wiki-sv-{a}")).unwrap();
        let gb = engine.executor().dataset(&format!("wiki-sv-{b}")).unwrap();
        let (sa, _) = pagerank(ga.view(), &PageRankConfig::default()).unwrap();
        let (sb, _) = pagerank(gb.view(), &PageRankConfig::default()).unwrap();
        let ra = sa.ranking();
        let rb = sb.ranking();
        println!(
            "{:<14} {:>10.3} {:>8.3}",
            format!("{a} vs {b}"),
            jaccard_at_k(&ra, &rb, 100),
            rank_biased_overlap(&ra, &rb, 0.98),
        );
    }

    println!(
        "\nEach snapshot triples the previous one's size; global rankings only\n\
         partially persist — the same drift analysis runs for CycleRank via\n\
         `relrank compare-datasets --datasets wiki-it-2013,wiki-it-2018 ...`."
    );
}
