//! The paper's *dataset comparison* use case (§IV-D, Table III): the same
//! CycleRank query — "Fake news", K = 3, σ = e⁻ⁿ — across six Wikipedia
//! language editions, showing how different language communities frame the
//! same concept.
//!
//! ```sh
//! cargo run --example dataset_comparison
//! ```

use cyclerank_platform::datasets::fixtures::Language;
use cyclerank_platform::prelude::*;
use std::time::Duration;

fn main() {
    let engine = Scheduler::builder().workers(6).build();

    // One task per language edition; note the local article title differs
    // per edition ("Fake News" in German, "Nepnieuws" in Dutch).
    let mut query_set = QuerySet::new();
    for lang in Language::ALL {
        query_set.add(
            TaskBuilder::new(format!("fixture-fakenews-{lang}"))
                .algorithm(Algorithm::CycleRank)
                .max_cycle_len(3)
                .source(lang.fake_news_title())
                .top_k(6)
                .build()
                .expect("valid task"),
        );
    }

    let ids = engine.submit_query_set(&query_set);
    let results = engine.wait_all(&ids, Duration::from_secs(120)).expect("tasks complete");

    const W: usize = 24;
    print!("{:<4}", "#");
    for lang in Language::ALL {
        print!("{:<W$}", format!("Fake news ({lang})"));
    }
    println!();
    // Row 0 is the reference itself; rows 1..=5 are Table III.
    for rank in 1..=5 {
        print!("{:<4}", rank);
        for r in &results {
            let label = r.top.get(rank).map(|(l, _)| l.as_str()).unwrap_or("-");
            let mut cell: String = label.chars().take(W - 2).collect();
            if label.chars().count() > W - 2 {
                cell.push('…');
            }
            print!("{cell:<W$}");
        }
        println!();
    }

    // The same query also runs on the full-size generated snapshots, which
    // embed the labelled neighbourhood (dataset ids wiki-XX-2018).
    println!("\nsame query on the generated wiki-it-2018 snapshot:");
    let id = engine.submit(
        TaskBuilder::new("wiki-it-2018")
            .algorithm(Algorithm::CycleRank)
            .max_cycle_len(3)
            .source("Fake news")
            .top_k(6)
            .build()
            .unwrap(),
    );
    let r = engine.wait(&id, Duration::from_secs(120)).expect("task completes");
    for (rank, (label, score)) in r.top.iter().enumerate() {
        println!("  {:>2}  {label:<24} {score:.5}", rank);
    }
}
