//! End-to-end tour of the API gateway: start the HTTP server on an
//! ephemeral port, then act as the Web UI — list datasets, submit a task,
//! poll until completed, fetch the result — all over plain TCP.
//!
//! ```sh
//! cargo run --example web_api
//! ```

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use cyclerank_platform::prelude::*;
use cyclerank_platform::server::ApiServer;

fn http(addr: std::net::SocketAddr, raw: String) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let status: u16 =
        response.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status code");
    let body = response.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
    (status, body)
}

fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    http(addr, format!("GET {path} HTTP/1.1\r\nhost: demo\r\n\r\n"))
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> (u16, String) {
    http(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nhost: demo\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn main() {
    // Boot the platform: 2 computational nodes behind the gateway.
    let engine = Arc::new(Scheduler::builder().workers(2).build());
    let server = ApiServer::bind("127.0.0.1:0", engine).expect("bind");
    let handle = server.spawn();
    let addr = handle.addr();
    println!("API gateway listening on http://{addr}");

    // Browse the catalog.
    let (status, body) = get(addr, "/api/datasets");
    let datasets: serde_json::Value = serde_json::from_str(&body).unwrap();
    println!("GET /api/datasets -> {status}, {} datasets", datasets.as_array().unwrap().len());

    // Submit the Table III Italian query.
    let task = r#"{
        "dataset": "fixture-fakenews-it",
        "params": {"algorithm": "cycle_rank", "max_cycle_len": 3},
        "source": "Fake news",
        "top_k": 6
    }"#;
    let (status, body) = post(addr, "/api/tasks", task);
    let submitted: serde_json::Value = serde_json::from_str(&body).unwrap();
    let task_id = submitted["task_id"].as_str().unwrap().to_string();
    println!("POST /api/tasks -> {status}, task {task_id}");

    // Poll until terminal, as the Web UI's status widget does.
    loop {
        let (_, body) = get(addr, &format!("/api/tasks/{task_id}"));
        let record: serde_json::Value = serde_json::from_str(&body).unwrap();
        let state = record["state"]["state"].as_str().unwrap_or("?").to_string();
        println!("poll: {state}");
        if state == "completed" || state == "failed" {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    // Fetch and display the result.
    let (status, body) = get(addr, &format!("/api/tasks/{task_id}/result"));
    assert_eq!(status, 200, "result should be ready");
    let result: serde_json::Value = serde_json::from_str(&body).unwrap();
    println!("\ntop results for {:?}:", result["source"].as_str().unwrap());
    for entry in result["top"].as_array().unwrap() {
        println!("  {:<22} {:.5}", entry[0].as_str().unwrap(), entry[1].as_f64().unwrap());
    }

    handle.stop();
    println!("\nserver stopped");
}
