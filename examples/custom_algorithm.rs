//! Registering an out-of-tree algorithm: implement `RelevanceAlgorithm`,
//! register it once, and the new id runs through the same `Query` front
//! door (and engine, HTTP API, CLI) as the seven paper algorithms.
//!
//! ```sh
//! cargo run --example custom_algorithm
//! ```

use cyclerank_platform::algorithms::result::ScoreVector;
use cyclerank_platform::algorithms::runner::RelevanceOutput;
use cyclerank_platform::prelude::*;
use std::sync::Arc;

/// A toy ranker: score = in-degree + out-degree ("who is best connected").
struct DegreeRank;

impl RelevanceAlgorithm for DegreeRank {
    fn id(&self) -> &str {
        "degreerank"
    }

    fn display_name(&self) -> &str {
        "DegreeRank"
    }

    fn is_personalized(&self) -> bool {
        false
    }

    fn parameters(&self) -> Vec<ParamSpec> {
        Vec::new() // no knobs: ignores AlgorithmParams entirely
    }

    fn execute(
        &self,
        graph: &DirectedGraph,
        _params: &AlgorithmParams,
        _reference: Option<NodeId>,
    ) -> Result<RelevanceOutput, cyclerank_platform::algorithms::AlgoError> {
        let scores = ScoreVector::new(
            graph
                .nodes()
                .map(|u| (graph.out_neighbors(u).len() + graph.in_neighbors(u).len()) as f64)
                .collect(),
        );
        Ok(RelevanceOutput {
            algorithm: self.id().to_string(),
            ranking: scores.ranking(),
            scores: Some(scores),
            top: None,
            convergence: None,
            trace: None,
            cycles_found: None,
        })
    }
}

fn main() {
    // One registration call makes the id available platform-wide.
    AlgorithmRegistry::global().register(Arc::new(DegreeRank)).expect("id is free");

    println!("registry now lists {} algorithms:", AlgorithmRegistry::global().len());
    for d in AlgorithmRegistry::global().descriptors() {
        println!("  {:<12} {}", d.id, d.name);
    }

    // The custom id runs through the ordinary Query front door, on a
    // catalog dataset. Dataset-name resolution needs the catalog hooked
    // up once per process (touching `catalog()`/`load_dataset` or
    // building an engine also does this).
    cyclerank_platform::datasets::connect_query_api();
    let result = Query::on("fixture-enwiki-2018")
        .algorithm("degreerank")
        .top(5)
        .run()
        .expect("degreerank runs");
    println!("\nTop-5 best-connected articles by {}:", result.algorithm);
    for (label, score) in result.top_entries() {
        println!("  {score:>5.0}  {label}");
    }
}
