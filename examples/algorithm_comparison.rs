//! The paper's *algorithm comparison* use case (§IV-D, Tables I–II):
//! run all seven algorithms on one dataset and reference node through the
//! execution engine, exactly as the demo's task builder would, and print
//! the side-by-side top-5 table.
//!
//! ```sh
//! cargo run --example algorithm_comparison
//! ```

use cyclerank_platform::prelude::*;
use std::time::Duration;

fn main() {
    let dataset = "fixture-amazon-books";
    let reference = "1984";

    // Build the query set of Fig. 2: one row per algorithm.
    let mut query_set = QuerySet::new();
    for algo in Algorithm::ALL {
        let mut builder = TaskBuilder::new(dataset).algorithm(algo).top_k(5).max_cycle_len(5);
        if algo.is_personalized() {
            builder = builder.source(reference);
        }
        query_set.add(builder.build().expect("valid task"));
    }
    println!("{}", query_set.display_table());

    // Submit to a 4-worker engine and wait for all rows.
    let engine = Scheduler::builder().workers(4).build();
    let ids = engine.submit_query_set(&query_set);
    let results = engine.wait_all(&ids, Duration::from_secs(120)).expect("all tasks complete");

    // Render the comparison: one column per algorithm.
    const W: usize = 26;
    print!("{:<4}", "#");
    for r in &results {
        print!("{:<W$}", r.algorithm);
    }
    println!();
    for rank in 0..5 {
        print!("{:<4}", rank + 1);
        for r in &results {
            let label = r.top.get(rank).map(|(l, _)| l.as_str()).unwrap_or("-");
            let mut cell: String = label.chars().take(W - 2).collect();
            if label.chars().count() > W - 2 {
                cell.push('…');
            }
            print!("{cell:<W$}");
        }
        println!();
    }

    println!("\nruntimes:");
    for r in &results {
        println!("  {:<12} {:>6} ms", r.algorithm, r.runtime_ms);
    }
}
