//! The Fig. 1 / Fig. 2 walkthrough: build a query set interactively (add
//! rows, delete a row, inspect the permalink), submit it to the scheduler,
//! poll the status board while workers run, then fetch results and logs
//! from the datastore — the full five-step lifecycle of §III.
//!
//! ```sh
//! cargo run --example task_builder
//! ```

use cyclerank_platform::prelude::*;
use std::time::Duration;

fn main() {
    // ---- step 1: the Task Builder assembles a query set (Fig. 2) -------
    let mut query_set = QuerySet::new();
    query_set.add(
        TaskBuilder::new("wiki-en-2018")
            .algorithm(Algorithm::CycleRank)
            .max_cycle_len(3)
            .source("Fake news")
            .top_k(5)
            .build()
            .unwrap(),
    );
    query_set.add(
        TaskBuilder::new("wiki-en-2018")
            .algorithm(Algorithm::PageRank)
            .damping(0.3)
            .top_k(5)
            .build()
            .unwrap(),
    );
    query_set.add(
        TaskBuilder::new("wiki-en-2018")
            .algorithm(Algorithm::PersonalizedPageRank)
            .damping(0.3)
            .source("Fake news")
            .top_k(5)
            .build()
            .unwrap(),
    );
    // A row added by mistake — and removed with the per-row ✕ control.
    let extra = query_set
        .add(TaskBuilder::new("synthetic-ring").algorithm(Algorithm::CheiRank).build().unwrap());
    query_set.remove(extra);

    println!("{}", query_set.display_table());

    // ---- step 2: submit to the Scheduler --------------------------------
    let store = std::sync::Arc::new(MemoryStore::new());
    let engine = Scheduler::builder().workers(2).datastore(store).build();
    let ids = engine.submit_query_set(&query_set);
    println!("submitted {} tasks", ids.len());

    // ---- step 3: the Status component polls progress --------------------
    loop {
        let pending = engine.board().pending_count();
        println!("  status poll: {pending} task(s) still pending");
        if pending == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }

    // ---- steps 4–5: results and logs from the datastore -----------------
    for id in &ids {
        let record = engine.board().get(id).expect("tracked task");
        println!("\ntask {id} [{}]", record.spec.display_row());
        match record.state {
            TaskState::Completed => {
                let result = engine.store().get_result(id).unwrap().expect("stored result");
                for (rank, (label, score)) in result.top.iter().enumerate() {
                    println!("  {:>2}. {label:<32} {score:.6}", rank + 1);
                }
                let log = engine.store().get_log(id).unwrap();
                println!("  log: {}", log.lines().last().unwrap_or(""));
            }
            state => println!("  unexpected terminal state: {state:?}"),
        }
    }
}
