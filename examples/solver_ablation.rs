//! Solver ablation through the engine: the same Personalized-PageRank task
//! executed with each of the platform's four solvers (§II: "more efficient
//! algorithms are available"), comparing runtime and ranking agreement
//! against the exact power iteration.
//!
//! ```sh
//! cargo run --release --example solver_ablation
//! ```

use cyclerank_platform::algorithms::compare::{jaccard_at_k, ndcg_at_k};
use cyclerank_platform::algorithms::runner::Solver;
use cyclerank_platform::prelude::*;
use std::time::Duration;

fn main() {
    let dataset = "amazon-copurchase"; // 20k products, generated
    let source = "100"; // an ordinary product (numeric id: unlabeled graph)
    let engine = Scheduler::builder().workers(1).build();

    // Reference: exact scores computed directly for ranking-quality checks.
    let graph = engine.executor().dataset(dataset).expect("dataset loads");
    let seed = NodeId::new(100);
    let (exact, _) = personalized_pagerank(graph.view(), &PageRankConfig::default(), seed).unwrap();
    let exact_ranking = exact.ranking();

    println!("{:<14} {:>9} {:>10} {:>10}", "solver", "ms", "ndcg@10", "jacc@10");
    for solver in [Solver::Power, Solver::GaussSeidel, Solver::Push, Solver::MonteCarlo] {
        let task = TaskBuilder::new(dataset)
            .algorithm(Algorithm::PersonalizedPageRank)
            .solver(solver)
            .source(source)
            .top_k(10)
            .build()
            .unwrap();
        let id = engine.submit(task);
        let result = engine.wait(&id, Duration::from_secs(300)).expect("task completes");

        // Re-derive a RankedList from the labelled top (labels are numeric
        // ids on this unlabeled dataset).
        let top_ids: Vec<NodeId> =
            result.top.iter().filter_map(|(l, _)| l.parse::<u32>().ok().map(NodeId::new)).collect();
        let approx = cyclerank_platform::algorithms::RankedList::new(top_ids);
        let ndcg = ndcg_at_k(&approx, exact.as_slice(), 10);
        let jacc = jaccard_at_k(&exact_ranking, &approx, 10);
        println!("{:<14} {:>9} {:>10.4} {:>10.4}", solver.id(), result.runtime_ms, ndcg, jacc);
    }

    println!(
        "\nAll four agree on who matters; the approximate solvers trade a little\n\
         tail accuracy for locality (push) or simplicity (Monte-Carlo)."
    );
}
