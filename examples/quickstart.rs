//! Quickstart: load a pre-packaged dataset and run CycleRank and
//! Personalized PageRank against the same reference node through the
//! unified `Query` API, then compare what they surface.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use cyclerank_platform::prelude::*;

fn main() {
    // 1. Pick a dataset from the 50-entry registry (here: the labelled
    //    stand-in for the English Wikipedia snapshot behind Table I).
    //    Browsing the catalog also wires dataset-name queries up.
    let n = catalog().len();
    println!("catalog holds {n} datasets");

    // 2. CycleRank: relevance from bounded-length cycles (K = 3, σ = e⁻ⁿ).
    //    `Query` resolves the dataset id and the reference label for us.
    let cr = Query::on("fixture-enwiki-2018")
        .algorithm("cyclerank")
        .reference("Freddie Mercury")
        .k(3)
        .top(5)
        .run()
        .expect("cyclerank runs");
    println!(
        "\nCycleRank found {} cycles through the reference ({} nodes, {} edges).",
        cr.output.cycles_found.unwrap_or(0),
        cr.graph.node_count(),
        cr.graph.edge_count(),
    );
    println!("Top-5 by CycleRank:");
    for (label, score) in cr.top_entries() {
        println!("  {score:.5}  {label}");
    }

    // 3. Personalized PageRank on the same query (α = 0.3, as in Table I).
    let ppr = Query::on("fixture-enwiki-2018")
        .algorithm("ppr")
        .reference("Freddie Mercury")
        .alpha(0.3)
        .top(5)
        .run()
        .expect("ppr converges");
    println!(
        "\nTop-5 by Personalized PageRank ({} iterations):",
        ppr.output.convergence.map(|c| c.iterations).unwrap_or(0)
    );
    for (label, score) in ppr.top_entries() {
        println!("  {score:.5}  {label}");
    }

    // 4. The contrast the paper demonstrates: PPR surfaces globally popular
    //    pages the reference merely links to; CycleRank requires mutual
    //    (cyclic) linkage.
    let graph = &cr.graph;
    let tribute = graph.node_by_label("The FM Tribute Concert").unwrap();
    println!(
        "\n'The FM Tribute Concert': PPR score {:.5}, CycleRank score {:.5}",
        ppr.scores().map(|s| s.get(tribute)).unwrap_or(0.0),
        cr.scores().map(|s| s.get(tribute)).unwrap_or(0.0),
    );
}
