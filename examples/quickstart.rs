//! Quickstart: load a pre-packaged dataset, run CycleRank and Personalized
//! PageRank against the same reference node, and compare what they surface.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use cyclerank_platform::prelude::*;

fn main() {
    // 1. Pick a dataset from the 50-entry registry (here: the labelled
    //    stand-in for the English Wikipedia snapshot behind Table I).
    let graph = load_dataset("fixture-enwiki-2018").expect("dataset exists");
    println!(
        "loaded fixture-enwiki-2018: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );

    // 2. Resolve the query node by its article title.
    let reference = graph.node_by_label("Freddie Mercury").expect("article exists");

    // 3. CycleRank: relevance from bounded-length cycles (K = 3, σ = e⁻ⁿ).
    let cr = cyclerank(&graph, reference, &CycleRankConfig::default()).expect("cyclerank runs");
    println!("\nCycleRank found {} cycles through the reference.", cr.cycles_found);
    println!("Top-5 by CycleRank:");
    for (label, score) in cr.scores.top_k_labeled(&graph, 5) {
        println!("  {score:.5}  {label}");
    }

    // 4. Personalized PageRank on the same query (α = 0.3, as in Table I).
    let (ppr, conv) =
        personalized_pagerank(graph.view(), &PageRankConfig::with_damping(0.3), reference)
            .expect("ppr converges");
    println!("\nTop-5 by Personalized PageRank ({} iterations):", conv.iterations);
    for (label, score) in ppr.top_k_labeled(&graph, 5) {
        println!("  {score:.5}  {label}");
    }

    // 5. The contrast the paper demonstrates: PPR surfaces globally popular
    //    pages the reference merely links to; CycleRank requires mutual
    //    (cyclic) linkage.
    let tribute = graph.node_by_label("The FM Tribute Concert").unwrap();
    println!(
        "\n'The FM Tribute Concert': PPR score {:.5}, CycleRank score {:.5}",
        ppr.get(tribute),
        cr.scores.get(tribute),
    );
}
