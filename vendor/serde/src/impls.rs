//! Serialize/Deserialize implementations for standard-library types.

use crate::{DeError, Deserialize, Map, Serialize, Value};
use std::collections::{BTreeMap, HashMap};

// ---------------------------------------------------------------- identity

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// --------------------------------------------------------------- primitives

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::custom("expected boolean"))
    }
}

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let u = v
                    .as_u64()
                    .ok_or_else(|| DeError::custom("expected unsigned integer"))?;
                <$t>::try_from(u).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::U64(i as u64) } else { Value::I64(i) }
            }
        }

        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let i = v
                    .as_i64()
                    .ok_or_else(|| DeError::custom("expected integer"))?;
                <$t>::try_from(i).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(f64::deserialize_value(v)? as f32)
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

// ------------------------------------------------------------------ strings

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_str().map(str::to_string).ok_or_else(|| DeError::custom("expected string"))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

// --------------------------------------------------------------- references

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(Box::new(T::deserialize_value(v)?))
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

// --------------------------------------------------------------- containers

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(t) => t.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![self.0.serialize_value(), self.1.serialize_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let a = v.as_array().ok_or_else(|| DeError::custom("expected 2-element array"))?;
        if a.len() != 2 {
            return Err(DeError::custom("expected 2-element array"));
        }
        Ok((A::deserialize_value(&a[0])?, B::deserialize_value(&a[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![
            self.0.serialize_value(),
            self.1.serialize_value(),
            self.2.serialize_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let a = v.as_array().ok_or_else(|| DeError::custom("expected 3-element array"))?;
        if a.len() != 3 {
            return Err(DeError::custom("expected 3-element array"));
        }
        Ok((
            A::deserialize_value(&a[0])?,
            B::deserialize_value(&a[1])?,
            C::deserialize_value(&a[2])?,
        ))
    }
}

impl<V: Serialize, S> Serialize for HashMap<String, V, S> {
    fn serialize_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.serialize_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let obj = v.as_object().ok_or_else(|| DeError::custom("expected object"))?;
        obj.iter().map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?))).collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.serialize_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let obj = v.as_object().ok_or_else(|| DeError::custom("expected object"))?;
        obj.iter().map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?))).collect()
    }
}
