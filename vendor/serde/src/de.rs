//! Deserialization error type.

use std::fmt;

/// Error produced while deserializing a [`crate::Value`] into a typed
/// structure (or while parsing text into a `Value`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with an arbitrary message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// Creates a "missing field" error.
    pub fn missing_field(name: &str) -> Self {
        DeError { msg: format!("missing field `{name}`") }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}
