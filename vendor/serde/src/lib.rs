//! Offline stand-in for the `serde` crate.
//!
//! The workspace builds in an environment without crates.io access, so this
//! crate implements the subset of serde's surface the platform actually
//! uses: `Serialize`/`Deserialize` traits over a JSON-shaped [`Value`]
//! model, derive macros (re-exported from `serde_derive`), and impls for
//! the standard types that appear in the workspace's data structures.
//!
//! The data model is deliberately simpler than real serde's: serialization
//! goes through an owned [`Value`] tree rather than a streaming
//! `Serializer`. For the graph sizes the JSON endpoints handle this is
//! plenty, and it keeps the stand-in auditable.

pub mod de;
pub mod value;

mod impls;

pub use de::DeError;
pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Value};

/// A type that can render itself into the JSON-shaped [`Value`] model.
pub trait Serialize {
    /// Converts `self` to a [`Value`] tree.
    fn serialize_value(&self) -> Value;
}

/// A type that can reconstruct itself from the JSON-shaped [`Value`] model.
pub trait Deserialize: Sized {
    /// Builds `Self` from a [`Value`] tree.
    fn deserialize_value(v: &Value) -> Result<Self, DeError>;
}
