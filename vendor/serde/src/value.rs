//! The JSON-shaped value tree shared by the serde and serde_json stand-ins.

use std::collections::BTreeMap;
use std::fmt;

/// Object representation: a sorted map of field name to value.
pub type Map = BTreeMap<String, Value>;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A negative integer (positives parse as `U64`).
    I64(i64),
    /// A non-negative integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an unsigned integer, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(u) => Some(*u),
            Value::I64(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as a signed integer, when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(i) => Some(*i),
            Value::U64(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    /// The value as a float (integers convert losslessly enough).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(f) => Some(*f),
            Value::U64(u) => Some(*u as f64),
            Value::I64(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// True when this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// True when this is a boolean.
    pub fn is_boolean(&self) -> bool {
        matches!(self, Value::Bool(_))
    }

    /// True when this is a string.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// True when this is a number.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::I64(_) | Value::U64(_) | Value::F64(_))
    }

    /// Object field lookup (None for non-objects or absent keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::I64(i) => *i == *other as i64,
                    Value::U64(u) => {
                        (*other as i128) >= 0 && *u as i128 == *other as i128
                    }
                    _ => false,
                }
            }
        }
    )*};
}
eq_int!(i32, i64, u32, u64, usize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

/// Writes `s` as a JSON string literal into `out`.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes a number so that it round-trips: floats use Rust's shortest
/// representation, with a trailing `.0` added to integral floats so they
/// re-parse as floats.
fn write_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        let s = f.to_string();
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no Inf/NaN; emit null like serde_json does.
        out.push_str("null");
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => write_f64(*f, out),
        Value::String(s) => write_json_string(s, out),
        Value::Array(a) => {
            out.push('[');
            for (i, e) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(e, out);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, e)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(k, out);
                out.push(':');
                write_compact(e, out);
            }
            out.push('}');
        }
    }
}

/// Writes a pretty-printed (2-space indented) rendering of `v`.
pub fn write_pretty(v: &Value, out: &mut String, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(a) if !a.is_empty() => {
            out.push_str("[\n");
            for (i, e) in a.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_pretty(e, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, e)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_json_string(k, out);
                out.push_str(": ");
                write_pretty(e, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

impl fmt::Display for Value {
    /// Compact JSON rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_compact(self, &mut s);
        f.write_str(&s)
    }
}
