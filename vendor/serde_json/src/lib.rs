//! Offline stand-in for `serde_json`.
//!
//! Text ⇄ [`Value`] conversion over the in-tree serde stand-in's data
//! model: a recursive-descent JSON parser, compact and pretty writers, and
//! the [`json!`] macro (flat-literal subset).

use serde::value::{write_json_string, write_pretty};
use serde::{DeError, Deserialize, Serialize};
use std::fmt;

pub use serde::{Map, Value};

/// Parse or serialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

// ------------------------------------------------------------------ parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<()> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", expected as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.err(&format!("unexpected character {:?}", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input came from &str, so
                    // the boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err(&format!("invalid number {text:?}")))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parses a JSON string into a `Value`.
pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

// --------------------------------------------------------------- front door

/// Deserializes `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let v = parse_value(s)?;
    Ok(T::deserialize_value(&v)?)
}

/// Deserializes `T` from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.serialize_value().to_string())
}

/// Serializes `value` to a pretty-printed JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.serialize_value(), &mut out, 0);
    Ok(out)
}

/// Serializes `value` to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    Ok(to_string(value)?.into_bytes())
}

/// Converts any serializable value into a `Value` tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize_value()
}

/// Builds a [`Value`] from a JSON-ish literal. Supports the flat subset the
/// workspace uses: objects with literal string keys and expression values,
/// arrays of expressions, and bare expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($k:literal : $v:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert($k.to_string(), $crate::to_value(&$v)); )*
        $crate::Value::Object(m)
    }};
    ([ $($v:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$v) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[doc(hidden)]
pub fn _escape_for_tests(s: &str) -> String {
    let mut out = String::new();
    write_json_string(s, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic() {
        let v = parse_value(r#"{"a": [1, -2, 3.5, "x\n", true, null]}"#).unwrap();
        assert_eq!(v["a"][0], 1);
        assert_eq!(v["a"][1], -2);
        assert_eq!(v["a"][2], 3.5);
        assert_eq!(v["a"][3], "x\n");
        assert_eq!(v["a"][4], true);
        assert!(v["a"][5].is_null());
        let text = v.to_string();
        assert_eq!(parse_value(&text).unwrap(), v);
    }

    #[test]
    fn float_roundtrips_exactly() {
        for f in [0.1, 1.0 / 3.0, 1e-10, 123456.789, f64::MIN_POSITIVE] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, f, "{text}");
        }
    }

    #[test]
    fn json_macro_shapes() {
        let v = json!({"name": "x", "n": 3});
        assert_eq!(v["name"], "x");
        assert_eq!(v["n"], 3);
        let a = json!([1, 2]);
        assert_eq!(a.as_array().unwrap().len(), 2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{nope").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("1 2").is_err());
        assert!(parse_value("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v: String = from_str(r#""é😀""#).unwrap();
        assert_eq!(v, "é😀");
    }
}
