//! Offline stand-in for `crossbeam`: an unbounded MPMC channel built on
//! `Mutex<VecDeque>` + `Condvar`. Supports the clone-the-receiver worker
//! pool pattern the engine's scheduler uses.

pub mod thread {
    //! Scoped threads, bridged to `std::thread::scope` (crossbeam's
    //! `scope` predates std's and returns `Result` instead of panicking
    //! on child panics; we preserve that shape via `catch_unwind`).

    /// Handle passed to the scope closure; `spawn` mirrors crossbeam's
    /// signature where the child closure receives the scope again.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }

    /// Runs `f` with a scope handle; all spawned threads are joined before
    /// returning. A panicking child surfaces as `Err`.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_stack_data() {
            let data = [1, 2, 3, 4];
            let mut out = vec![0; 4];
            super::scope(|s| {
                for (src, dst) in data.chunks(2).zip(out.chunks_mut(2)) {
                    s.spawn(move |_| {
                        for (a, b) in src.iter().zip(dst.iter_mut()) {
                            *b = a * 10;
                        }
                    });
                }
            })
            .unwrap();
            assert_eq!(out, vec![10, 20, 30, 40]);
        }

        #[test]
        fn child_panic_is_an_err() {
            let r = super::scope(|s| {
                s.spawn(|_| panic!("child failure"));
            });
            assert!(r.is_err());
        }
    }
}

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        /// Woken when a bounded queue frees a slot.
        space: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        /// `None` = unbounded; `Some(cap)` = at most `cap` queued messages.
        cap: Option<usize>,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; cloneable (multiple consumers).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned when sending into a channel with no receivers left.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned when the channel is empty and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Sender::try_send`] on a bounded channel.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The queue is at capacity; the message is handed back.
        Full(T),
        /// Every receiver is gone; the message is handed back.
        Disconnected(T),
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            space: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            cap,
        });
        (Sender { inner: Arc::clone(&inner) }, Receiver { inner })
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// Creates a bounded MPMC channel holding at most `cap` queued
    /// messages. [`Sender::send`] blocks while full;
    /// [`Sender::try_send`] refuses instead — the admission-control
    /// primitive the serving layer's load shedding is built on.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(cap))
    }

    impl<T> Sender<T> {
        /// Enqueues a message. Unbounded channels never block; bounded
        /// channels wait for a free slot (erroring only when every
        /// receiver is gone).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(cap) = self.inner.cap {
                while q.len() >= cap {
                    if self.inner.receivers.load(Ordering::SeqCst) == 0 {
                        return Err(SendError(value));
                    }
                    q = self.inner.space.wait(q).unwrap_or_else(|e| e.into_inner());
                }
            }
            q.push_back(value);
            drop(q);
            self.inner.ready.notify_one();
            Ok(())
        }

        /// Enqueues a message only if the queue has room right now; a
        /// full bounded queue refuses immediately with
        /// [`TrySendError::Full`] instead of blocking.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            if self.inner.receivers.load(Ordering::SeqCst) == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            if self.inner.cap.is_some_and(|cap| q.len() >= cap) {
                return Err(TrySendError::Full(value));
            }
            q.push_back(value);
            drop(q);
            self.inner.ready.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake all blocked receivers.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    self.inner.space.notify_one();
                    return Ok(v);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.inner.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Pops a message if one is immediately available.
        pub fn try_recv(&self) -> Option<T> {
            let v = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner()).pop_front();
            if v.is_some() {
                self.inner.space.notify_one();
            }
            v
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.inner.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last receiver gone: wake senders blocked on a full queue.
                self.inner.space.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn fan_out_to_multiple_receivers() {
            let (tx, rx) = unbounded::<u32>();
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got.len()
                    })
                })
                .collect();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, 100);
        }

        #[test]
        fn recv_errors_after_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn bounded_try_send_refuses_when_full() {
            let (tx, rx) = bounded::<u32>(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert_eq!(tx.len(), 2);
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            // Draining one slot re-admits.
            assert_eq!(rx.try_recv(), Some(1));
            tx.try_send(3).unwrap();
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
            drop(rx);
            assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
        }

        #[test]
        fn bounded_send_blocks_until_slot_frees() {
            let (tx, rx) = bounded::<u32>(1);
            tx.send(1).unwrap();
            let t = thread::spawn(move || tx.send(2).is_ok());
            thread::sleep(std::time::Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            assert!(t.join().unwrap(), "blocked send completes once a slot frees");
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn bounded_send_errors_when_receivers_gone() {
            let (tx, rx) = bounded::<u32>(1);
            tx.send(1).unwrap();
            let t = thread::spawn(move || tx.send(2));
            thread::sleep(std::time::Duration::from_millis(20));
            drop(rx);
            assert_eq!(t.join().unwrap(), Err(SendError(2)));
        }
    }
}
