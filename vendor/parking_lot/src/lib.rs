//! Offline stand-in for `parking_lot`: non-poisoning `Mutex`/`RwLock`
//! wrappers over `std::sync`. Poisoned locks are recovered transparently,
//! matching parking_lot's panic-safe semantics.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn poison_recovery() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
