//! Offline stand-in for `criterion`: a minimal wall-clock benchmark
//! harness with the API shape the bench suite uses (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! `Throughput`, and the `criterion_group!`/`criterion_main!` macros).
//!
//! Each benchmark runs a short warm-up followed by a fixed number of timed
//! samples and prints median time per iteration. No statistics beyond
//! that — the point is that `cargo bench` runs and produces comparable
//! numbers offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Creates a harness.
    pub fn new() -> Self {
        Criterion::default()
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), sample_size: 10 }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 10, &mut f);
        self
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares the work per iteration (accepted for API parity; the
    /// stand-in prints times only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { function: function.to_string(), parameter: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Declared per-iteration throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures.
pub struct Bencher {
    samples: Vec<Duration>,
    per_sample_target: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly and records per-iteration times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: time one call.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        // Batch enough iterations to fill the per-sample budget.
        let iters = (self.per_sample_target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.samples.push(t.elapsed() / iters);
    }
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bench = Bencher {
        samples: Vec::with_capacity(sample_size),
        per_sample_target: Duration::from_millis(20),
    };
    for _ in 0..sample_size {
        f(&mut bench);
    }
    bench.samples.sort();
    let median = bench.samples.get(bench.samples.len() / 2).copied().unwrap_or_default();
    let (lo, hi) = (
        bench.samples.first().copied().unwrap_or_default(),
        bench.samples.last().copied().unwrap_or_default(),
    );
    println!("bench {label:<50} median {median:>12.3?}  range [{lo:.3?} .. {hi:.3?}]");
}

/// Declares a group-running function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::new();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` for a bench binary, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
