//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the simplified trait pair in the in-tree `serde` stand-in (a JSON-shaped
//! `Value` data model). The derive parses the item's token stream by hand —
//! `syn`/`quote` are unavailable offline — and supports the attribute
//! subset this workspace uses:
//!
//! * container: `#[serde(rename_all = "snake_case")]`,
//!   `#[serde(transparent)]`, `#[serde(tag = "...")]`
//! * field: `#[serde(default)]`, `#[serde(default = "path")]`
//!
//! Semantics follow real serde where it matters here: missing `Option`
//! fields deserialize to `None`, unknown fields are ignored, unit enums
//! (de)serialize as strings, and internally-tagged enums put the tag key
//! alongside the variant's fields.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ------------------------------------------------------------------ model

#[derive(Default, Clone)]
struct ContainerAttrs {
    rename_all: Option<String>,
    tag: Option<String>,
    transparent: bool,
}

#[derive(Clone)]
struct Field {
    name: String,
    ty_head: String,
    has_default: bool,
    default_path: Option<String>,
}

impl Field {
    fn is_option(&self) -> bool {
        self.ty_head == "Option"
    }
}

struct Variant {
    name: String,
    fields: Vec<Field>,
    unit: bool,
}

enum Body {
    Named(Vec<Field>),
    Tuple(usize),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    attrs: ContainerAttrs,
    body: Body,
}

// ----------------------------------------------------------------- parsing

fn lit_string(t: &TokenTree) -> String {
    let s = t.to_string();
    s.trim_matches('"').to_string()
}

/// Parses the contents of one `#[serde(...)]` group into `container` /
/// `field` attribute state.
fn parse_serde_args(group: TokenStream, c: &mut ContainerAttrs, f: &mut Field) {
    let toks: Vec<TokenTree> = group.into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Ident(id) => {
                let key = id.to_string();
                let has_value =
                    matches!(toks.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=');
                let value = if has_value { toks.get(i + 2).map(lit_string) } else { None };
                match (key.as_str(), value) {
                    ("rename_all", Some(v)) => c.rename_all = Some(v),
                    ("tag", Some(v)) => c.tag = Some(v),
                    ("transparent", None) => c.transparent = true,
                    ("default", Some(v)) => {
                        f.has_default = true;
                        f.default_path = Some(v);
                    }
                    ("default", None) => f.has_default = true,
                    _ => {} // ignore unsupported knobs
                }
                i += if has_value { 3 } else { 1 };
            }
            _ => i += 1,
        }
    }
}

/// Consumes leading attributes starting at `i`, folding any `#[serde(...)]`
/// contents into the supplied state. Returns the index past the attributes.
fn skip_attrs(toks: &[TokenTree], mut i: usize, c: &mut ContainerAttrs, f: &mut Field) -> usize {
    while let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let Some(TokenTree::Ident(id)) = inner.first() {
                if id.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        parse_serde_args(args.stream(), c, f);
                    }
                }
            }
            i += 2;
        } else {
            break;
        }
    }
    i
}

/// Skips a visibility modifier (`pub`, `pub(crate)`, ...).
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = toks.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Parses the named fields inside a brace group.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut fattrs = Field {
            name: String::new(),
            ty_head: String::new(),
            has_default: false,
            default_path: None,
        };
        let mut dummy = ContainerAttrs::default();
        i = skip_attrs(&toks, i, &mut dummy, &mut fattrs);
        i = skip_vis(&toks, i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        i += 1; // name
        i += 1; // ':'
                // Capture the head of the type (enough to recognize Option<...>),
                // then skip to the field-separating comma at angle-bracket depth 0.
        if let Some(t) = toks.get(i) {
            fattrs.ty_head = t.to_string();
        }
        let mut depth: i32 = 0;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fattrs.name = name;
        fields.push(fattrs);
    }
    fields
}

/// Counts the fields of a tuple struct's paren group.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth: i32 = 0;
    let mut count = 0;
    let mut saw_any = false;
    for t in stream {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            _ => saw_any = true,
        }
    }
    if saw_any {
        count + 1
    } else {
        0
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut dummy_c = ContainerAttrs::default();
        let mut dummy_f = Field {
            name: String::new(),
            ty_head: String::new(),
            has_default: false,
            default_path: None,
        };
        i = skip_attrs(&toks, i, &mut dummy_c, &mut dummy_f);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        i += 1;
        let mut fields = Vec::new();
        let mut unit = true;
        if let Some(TokenTree::Group(g)) = toks.get(i) {
            if g.delimiter() == Delimiter::Brace {
                fields = parse_named_fields(g.stream());
                unit = false;
            }
            i += 1;
        }
        // Skip to the variant-separating comma.
        while let Some(t) = toks.get(i) {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, fields, unit });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut attrs = ContainerAttrs::default();
    let mut dummy_f = Field {
        name: String::new(),
        ty_head: String::new(),
        has_default: false,
        default_path: None,
    };
    let mut i = skip_attrs(&toks, 0, &mut attrs, &mut dummy_f);
    i = skip_vis(&toks, i);
    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, got {other:?}"),
    };
    i += 1;
    // Generic parameters are not supported by the stand-in (none of the
    // workspace's serde types are generic); skip them so the error surfaces
    // as a normal compile failure rather than a parser panic.
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            let mut depth = 0;
            while let Some(t) = toks.get(i) {
                match t {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        }
    }
    let body = match (kind.as_str(), toks.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Body::Named(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Body::Tuple(count_tuple_fields(g.stream()))
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Body::Enum(parse_variants(g.stream()))
        }
        other => panic!("serde derive: unsupported item body {:?}", other.1.map(|t| t.to_string())),
    };
    Input { name, attrs, body }
}

// ----------------------------------------------------------------- renames

fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

fn rename(rule: &Option<String>, name: &str) -> String {
    match rule.as_deref() {
        Some("snake_case") => snake_case(name),
        Some("lowercase") => name.to_lowercase(),
        Some("UPPERCASE") => name.to_uppercase(),
        _ => name.to_string(),
    }
}

// ----------------------------------------------------------------- codegen

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.body {
        Body::Named(fields) => {
            let mut inserts = String::new();
            for f in fields {
                let key = rename(&input.attrs.rename_all, &f.name);
                inserts.push_str(&format!(
                    "m.insert(::std::string::String::from(\"{key}\"), \
                     ::serde::Serialize::serialize_value(&self.{field}));\n",
                    field = f.name
                ));
            }
            format!("let mut m = ::serde::Map::new();\n{inserts}::serde::Value::Object(m)")
        }
        Body::Tuple(1) => "::serde::Serialize::serialize_value(&self.0)".to_string(),
        Body::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = rename(&input.attrs.rename_all, &v.name);
                match (&input.attrs.tag, v.unit) {
                    (None, true) => {
                        arms.push_str(&format!(
                            "{name}::{v} => ::serde::Value::String(\
                             ::std::string::String::from(\"{vname}\")),\n",
                            v = v.name
                        ));
                    }
                    (Some(tag), _) => {
                        let binds: Vec<&str> = v.fields.iter().map(|f| f.name.as_str()).collect();
                        let pattern = if v.unit {
                            format!("{name}::{}", v.name)
                        } else {
                            format!("{name}::{} {{ {} }}", v.name, binds.join(", "))
                        };
                        let mut inserts = format!(
                            "let mut m = ::serde::Map::new();\n\
                             m.insert(::std::string::String::from(\"{tag}\"), \
                             ::serde::Value::String(::std::string::String::from(\"{vname}\")));\n"
                        );
                        for f in &v.fields {
                            inserts.push_str(&format!(
                                "m.insert(::std::string::String::from(\"{key}\"), \
                                 ::serde::Serialize::serialize_value({field}));\n",
                                key = f.name,
                                field = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{pattern} => {{ {inserts} ::serde::Value::Object(m) }}\n"
                        ));
                    }
                    (None, false) => {
                        // Externally tagged: {"Variant": {fields}}.
                        let binds: Vec<&str> = v.fields.iter().map(|f| f.name.as_str()).collect();
                        let mut inserts = String::from("let mut inner = ::serde::Map::new();\n");
                        for f in &v.fields {
                            inserts.push_str(&format!(
                                "inner.insert(::std::string::String::from(\"{key}\"), \
                                 ::serde::Serialize::serialize_value({field}));\n",
                                key = f.name,
                                field = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => {{ {inserts}\
                             let mut m = ::serde::Map::new();\n\
                             m.insert(::std::string::String::from(\"{vname}\"), \
                             ::serde::Value::Object(inner));\n\
                             ::serde::Value::Object(m) }}\n",
                            v = v.name,
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .expect("serde derive: generated Serialize impl must parse")
}

/// Emits the expression that produces a field's value from `__m` (an
/// object map), honoring defaults and Option semantics.
fn field_from_map(f: &Field, key: &str) -> String {
    let missing = if let Some(path) = &f.default_path {
        format!("{path}()")
    } else if f.has_default {
        "::std::default::Default::default()".to_string()
    } else if f.is_option() {
        "::std::option::Option::None".to_string()
    } else {
        format!("return ::std::result::Result::Err(::serde::DeError::missing_field(\"{key}\"))")
    };
    format!(
        "match __m.get(\"{key}\") {{\n\
         ::std::option::Option::Some(x) => ::serde::Deserialize::deserialize_value(x)?,\n\
         ::std::option::Option::None => {missing},\n}}"
    )
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.body {
        Body::Named(fields) => {
            let mut inits = String::new();
            for f in fields {
                let key = rename(&input.attrs.rename_all, &f.name);
                inits.push_str(&format!("{}: {},\n", f.name, field_from_map(f, &key)));
            }
            format!(
                "let __m = __v.as_object().ok_or_else(|| \
                 ::serde::DeError::custom(\"expected object for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Body::Tuple(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize_value(__v)?))"
        ),
        Body::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize_value(&__a[{i}])?"))
                .collect();
            format!(
                "let __a = __v.as_array().ok_or_else(|| \
                 ::serde::DeError::custom(\"expected array for {name}\"))?;\n\
                 if __a.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::DeError::custom(\"wrong tuple length for {name}\")); }}\n\
                 ::std::result::Result::Ok({name}({elems}))",
                elems = elems.join(", ")
            )
        }
        Body::Enum(variants) => {
            if let Some(tag) = &input.attrs.tag {
                let mut arms = String::new();
                for v in variants {
                    let vname = rename(&input.attrs.rename_all, &v.name);
                    if v.unit {
                        arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{v}),\n",
                            v = v.name
                        ));
                    } else {
                        let mut inits = String::new();
                        for f in &v.fields {
                            inits.push_str(&format!(
                                "{}: {},\n",
                                f.name,
                                field_from_map(f, &f.name)
                            ));
                        }
                        arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{v} {{\n{inits}}}),\n",
                            v = v.name
                        ));
                    }
                }
                format!(
                    "let __m = __v.as_object().ok_or_else(|| \
                     ::serde::DeError::custom(\"expected object for {name}\"))?;\n\
                     let __tag = __m.get(\"{tag}\").and_then(|t| t.as_str()).ok_or_else(|| \
                     ::serde::DeError::custom(\"missing tag `{tag}` for {name}\"))?;\n\
                     match __tag {{\n{arms}\
                     other => ::std::result::Result::Err(::serde::DeError::custom(\
                     format!(\"unknown {name} variant {{other:?}}\"))),\n}}"
                )
            } else {
                let mut arms = String::new();
                for v in variants.iter().filter(|v| v.unit) {
                    let vname = rename(&input.attrs.rename_all, &v.name);
                    arms.push_str(&format!(
                        "::std::option::Option::Some(\"{vname}\") => \
                         ::std::result::Result::Ok({name}::{v}),\n",
                        v = v.name
                    ));
                }
                format!(
                    "match __v.as_str() {{\n{arms}\
                     other => ::std::result::Result::Err(::serde::DeError::custom(\
                     format!(\"unknown {name} variant {{other:?}}\"))),\n}}"
                )
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .expect("serde derive: generated Deserialize impl must parse")
}
