//! Deterministic RNG and case-failure type for the proptest stand-in.

use std::fmt;

/// SplitMix64 generator seeded from the test name, so every run of a given
/// test explores the same cases (reproducible CI).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (usually the test function name).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        // Honor PROPTEST_SEED for ad-hoc exploration.
        if let Ok(seed) = std::env::var("PROPTEST_SEED") {
            if let Ok(s) = seed.parse::<u64>() {
                h ^= s.wrapping_mul(0x9E3779B97F4A7C15);
            }
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.next_u64() % bound
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property did not hold.
    Fail(String),
    /// The case was rejected (kept for API parity; unused here).
    Reject(String),
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Creates a rejection with a message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}
