//! Sampling strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;

/// Strategy that picks one element of a fixed list.
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Debug + Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }
}

/// Picks uniformly from `options` (which must be non-empty).
pub fn select<T: Debug + Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    Select { options }
}
