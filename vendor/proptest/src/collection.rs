//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Acceptable size arguments for [`vec()`](fn@vec): an exact length or a range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max_exclusive: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange { min: r.start, max_exclusive: r.end }
    }
}

/// Strategy producing `Vec`s of values from `element`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.max_exclusive - self.size.min) as u64;
        let len = self.size.min + if span > 0 { rng.below(span) as usize } else { 0 };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors whose length falls in `size` (a `usize` for exact
/// length or a `Range<usize>`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
