//! Offline stand-in for `proptest`.
//!
//! Deterministic strategy-based property testing covering the API subset
//! the workspace's test suites use: the [`proptest!`] macro,
//! `prop_assert!`/`prop_assert_eq!`, range/tuple strategies,
//! `prop::collection::vec`, `prop::sample::select`, `any::<T>()`, and
//! string strategies compiled from a small regex subset (`[...]` classes,
//! groups, `?`, `{m,n}`, `\PC`).
//!
//! Differences from real proptest: no shrinking (failures report the raw
//! inputs), and case generation is seeded from the test name so runs are
//! reproducible.

pub mod arbitrary;
pub mod collection;
pub mod config;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Namespace mirror so `prop::collection::vec(...)` works as in proptest.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// One-stop import for tests.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::config::ProptestConfig;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. Mirrors proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(8))]
///     #[test]
///     fn my_property(x in 0u32..100, v in prop::collection::vec(0u8..3, 0..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($crate::config::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); ) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)*
                let __inputs = format!("{:?}", ($(&$arg,)*));
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}\ninputs: {}",
                        stringify!($name), __case + 1, __config.cases, e, __inputs
                    );
                }
            }
        }
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
}

/// Fails the current property case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current property case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Fails the current property case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}
