//! The [`Strategy`] trait and implementations for ranges, tuples, and
//! string patterns.

use crate::string::StringPattern;
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::Range;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug + Clone;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Debug + Clone,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Debug + Clone>(pub T);

impl<T: Debug + Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug + Clone, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = ((self.end as i128) - (self.start as i128)) as u64;
                ((self.start as i128) + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// String literals act as regex-subset string strategies, as in proptest.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        StringPattern::compile(self).generate(rng)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng), self.3.generate(rng))
    }
}

/// Boxed strategies so helpers can return `impl Strategy` of mixed shapes.
impl<V: Debug + Clone> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}
