//! Run configuration.

/// How many cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the suite quick while
        // still exploring a meaningful sample. Override per-block with
        // `#![proptest_config(ProptestConfig::with_cases(n))]` or globally
        // with the PROPTEST_CASES environment variable.
        let cases = std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
        ProptestConfig { cases }
    }
}
