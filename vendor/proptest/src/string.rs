//! String strategies from a small regex subset.
//!
//! Supports what the workspace's property tests use: literal characters,
//! character classes `[...]` with ranges and escapes, groups `(...)`, the
//! `?` and `{m,n}` postfix repetitions, and `\PC` (any non-control
//! character).

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    Class(Vec<char>),
    Group(Vec<(Atom, Rep)>),
    AnyPrintable,
}

#[derive(Debug, Clone, Copy)]
struct Rep {
    min: usize,
    max: usize, // inclusive
}

const ONE: Rep = Rep { min: 1, max: 1 };

/// Sample pool for `\PC`: ASCII printables plus a few multibyte characters
/// so parsers meet non-ASCII input.
const PRINTABLE_EXTRA: [char; 8] = ['é', 'ß', 'λ', '中', '☃', '😀', '–', '\u{00a0}'];

/// A compiled pattern.
#[derive(Debug, Clone)]
pub struct StringPattern {
    atoms: Vec<(Atom, Rep)>,
}

impl StringPattern {
    /// Compiles a pattern; panics on syntax outside the supported subset
    /// (a test-authoring error, not a runtime condition).
    pub fn compile(pattern: &str) -> Self {
        let chars: Vec<char> = pattern.chars().collect();
        let (atoms, rest) = parse_sequence(&chars, 0, None);
        assert_eq!(rest, chars.len(), "unsupported regex pattern: {pattern:?}");
        StringPattern { atoms }
    }

    /// Generates one matching string.
    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        generate_seq(&self.atoms, rng, &mut out);
        out
    }
}

fn parse_sequence(chars: &[char], mut i: usize, until: Option<char>) -> (Vec<(Atom, Rep)>, usize) {
    let mut atoms = Vec::new();
    while i < chars.len() {
        if Some(chars[i]) == until {
            return (atoms, i);
        }
        let (atom, next) = parse_atom(chars, i);
        let (rep, next) = parse_rep(chars, next);
        atoms.push((atom, rep));
        i = next;
    }
    assert!(until.is_none(), "unterminated group in regex pattern");
    (atoms, i)
}

fn parse_atom(chars: &[char], i: usize) -> (Atom, usize) {
    match chars[i] {
        '\\' => {
            let next = chars.get(i + 1).copied().expect("dangling backslash");
            if next == 'P' && chars.get(i + 2) == Some(&'C') {
                (Atom::AnyPrintable, i + 3)
            } else {
                (Atom::Literal(next), i + 2)
            }
        }
        '[' => parse_class(chars, i + 1),
        '(' => {
            let (inner, end) = parse_sequence(chars, i + 1, Some(')'));
            (Atom::Group(inner), end + 1)
        }
        c => (Atom::Literal(c), i + 1),
    }
}

fn parse_class(chars: &[char], mut i: usize) -> (Atom, usize) {
    let mut members = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let c = if chars[i] == '\\' {
            i += 1;
            chars[i]
        } else {
            chars[i]
        };
        // Range like a-z (a trailing '-' is a literal).
        if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).map(|&e| e != ']').unwrap_or(false) {
            let hi = chars[i + 2];
            for v in (c as u32)..=(hi as u32) {
                if let Some(ch) = char::from_u32(v) {
                    members.push(ch);
                }
            }
            i += 3;
        } else {
            members.push(c);
            i += 1;
        }
    }
    assert!(i < chars.len(), "unterminated character class");
    (Atom::Class(members), i + 1)
}

fn parse_rep(chars: &[char], i: usize) -> (Rep, usize) {
    match chars.get(i) {
        Some('?') => (Rep { min: 0, max: 1 }, i + 1),
        Some('{') => {
            let close =
                chars[i..].iter().position(|&c| c == '}').expect("unterminated {m,n} repetition")
                    + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repetition bound"),
                    hi.trim().parse().expect("bad repetition bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            };
            (Rep { min, max }, close + 1)
        }
        _ => (ONE, i),
    }
}

fn generate_seq(atoms: &[(Atom, Rep)], rng: &mut TestRng, out: &mut String) {
    for (atom, rep) in atoms {
        let span = (rep.max - rep.min + 1) as u64;
        let count = rep.min + rng.below(span) as usize;
        for _ in 0..count {
            generate_atom(atom, rng, out);
        }
    }
}

fn generate_atom(atom: &Atom, rng: &mut TestRng, out: &mut String) {
    match atom {
        Atom::Literal(c) => out.push(*c),
        Atom::Class(members) => {
            out.push(members[rng.below(members.len() as u64) as usize]);
        }
        Atom::Group(inner) => generate_seq(inner, rng, out),
        Atom::AnyPrintable => {
            // Mostly ASCII printables, occasionally multibyte.
            if rng.below(8) == 0 {
                out.push(PRINTABLE_EXTRA[rng.below(PRINTABLE_EXTRA.len() as u64) as usize]);
            } else {
                out.push(char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_pattern_shape() {
        let p = StringPattern::compile("[a-zA-Z<>&\"]([a-zA-Z<>&\" ]{0,10}[a-zA-Z<>&\"])?");
        let mut rng = TestRng::for_test("label_pattern_shape");
        for _ in 0..200 {
            let s = p.generate(&mut rng);
            assert!(!s.is_empty());
            assert!(s.len() <= 12, "{s:?}");
            assert!(!s.starts_with(' ') && !s.ends_with(' '), "{s:?}");
        }
    }

    #[test]
    fn printable_pattern_bounds() {
        let p = StringPattern::compile("\\PC{0,300}");
        let mut rng = TestRng::for_test("printable_pattern_bounds");
        for _ in 0..50 {
            let s = p.generate(&mut rng);
            assert!(s.chars().count() <= 300);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn exact_repetition() {
        let p = StringPattern::compile("a{3}b?");
        let mut rng = TestRng::for_test("exact_repetition");
        for _ in 0..20 {
            let s = p.generate(&mut rng);
            assert!(s == "aaa" || s == "aaab", "{s:?}");
        }
    }
}
