//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset the workspace uses: [`RngCore`], [`Rng`]
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`], a deterministic
//! [`rngs::StdRng`] built on SplitMix64, [`thread_rng`], and the free
//! [`random`] function. Statistical quality is adequate for synthetic
//! dataset generation and Monte-Carlo estimation; this is not a
//! cryptographic generator.

use std::ops::Range;

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Values producible uniformly from raw bits (the `Standard` distribution).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range random values can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Integer types uniform ranges can be drawn from. A single blanket impl
/// over this trait (rather than one impl per type) lets integer-literal
/// ranges unify with the surrounding expression, matching real rand's
/// inference behavior.
pub trait UniformInt: Copy + PartialOrd {
    /// Widens to `i128`.
    fn to_i128(self) -> i128;
    /// Narrows from `i128` (caller guarantees range).
    fn from_i128(v: i128) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        let span = (self.end.to_i128() - self.start.to_i128()) as u128;
        let v = (rng.next_u64() as u128) % span;
        T::from_i128(self.start.to_i128() + v as i128)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_add(0x9E3779B97F4A7C15) }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    /// A per-call generator seeded from the clock and a global counter.
    #[derive(Debug)]
    pub struct ThreadRng {
        inner: StdRng,
    }

    impl ThreadRng {
        pub(crate) fn fresh() -> Self {
            use std::sync::atomic::{AtomicU64, Ordering};
            use std::time::{SystemTime, UNIX_EPOCH};
            static COUNTER: AtomicU64 = AtomicU64::new(0);
            let t = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0);
            let c = COUNTER.fetch_add(0x9E3779B97F4A7C15, Ordering::Relaxed);
            ThreadRng { inner: StdRng::seed_from_u64(t ^ c.rotate_left(17)) }
        }
    }

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// A non-deterministically seeded generator.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::fresh()
}

/// One value from the standard distribution, non-deterministically seeded.
pub fn random<T: Standard>() -> T {
    T::sample(&mut thread_rng())
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let x: usize = rng.gen_range(0..3);
            assert!(x < 3);
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn thread_rng_values_differ() {
        let a: u64 = random();
        let b: u64 = random();
        assert_ne!(a, b);
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
    }
}
