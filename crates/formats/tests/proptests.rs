//! Property tests: every format round-trips arbitrary graphs.

use proptest::prelude::*;
use relformats::{load_graph_from_str, write_graph_to_string, Format};
use relgraph::GraphBuilder;

fn edge_list(max_nodes: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..max_nodes, 0..max_nodes), 1..max_edges)
}

fn graphs_equal(a: &relgraph::DirectedGraph, b: &relgraph::DirectedGraph) -> bool {
    a.node_count() == b.node_count()
        && a.edge_count() == b.edge_count()
        && a.nodes().all(|u| a.out_neighbors(u) == b.out_neighbors(u))
}

proptest! {
    #[test]
    fn csv_roundtrip(edges in edge_list(50, 200)) {
        let g = GraphBuilder::from_edge_indices(edges);
        let s = write_graph_to_string(&g, Format::EdgeListCsv);
        let back = load_graph_from_str(&s, Some(Format::EdgeListCsv)).unwrap();
        // CSV cannot represent trailing isolated nodes; compare up to the
        // highest node that carries an edge.
        prop_assert_eq!(back.edge_count(), g.edge_count());
        for (u, v) in g.edges() {
            prop_assert!(back.has_edge(u, v));
        }
    }

    #[test]
    fn pajek_roundtrip_exact(edges in edge_list(40, 160)) {
        let g = GraphBuilder::from_edge_indices(edges);
        let s = write_graph_to_string(&g, Format::Pajek);
        let back = load_graph_from_str(&s, Some(Format::Pajek)).unwrap();
        prop_assert!(graphs_equal(&g, &back));
    }

    #[test]
    fn asd_roundtrip_exact(edges in edge_list(40, 160)) {
        let g = GraphBuilder::from_edge_indices(edges);
        let s = write_graph_to_string(&g, Format::Asd);
        let back = load_graph_from_str(&s, Some(Format::Asd)).unwrap();
        prop_assert!(graphs_equal(&g, &back));
    }

    #[test]
    fn graphml_roundtrip_exact(edges in edge_list(40, 160)) {
        let g = GraphBuilder::from_edge_indices(edges);
        let s = write_graph_to_string(&g, Format::GraphMl);
        let back = load_graph_from_str(&s, Some(Format::GraphMl)).unwrap();
        prop_assert!(graphs_equal(&g, &back));
    }

    #[test]
    fn jsongraph_roundtrip_exact(edges in edge_list(40, 160)) {
        let g = GraphBuilder::from_edge_indices(edges);
        let s = write_graph_to_string(&g, Format::JsonGraph);
        let back = load_graph_from_str(&s, Some(Format::JsonGraph)).unwrap();
        prop_assert!(graphs_equal(&g, &back));
    }

    #[test]
    fn graphml_roundtrip_with_labels(
        edges in edge_list(15, 40),
        // No leading/trailing whitespace: the GraphML parser trims text
        // nodes to tolerate pretty-printed files.
        labels in prop::collection::vec("[a-zA-Z<>&\"]([a-zA-Z<>&\" ]{0,10}[a-zA-Z<>&\"])?", 15),
    ) {
        let mut b = GraphBuilder::new();
        for (u, v) in edges { b.add_edge_indices(u, v); }
        b.ensure_node(14);
        let g = {
            // Attach unique labels (suffix the index to avoid collisions).
            let mut g = b.build();
            for (i, l) in labels.iter().enumerate() {
                g.labels_mut().set(relgraph::NodeId::new(i as u32), format!("{l}-{i}"));
            }
            g
        };
        let s = write_graph_to_string(&g, Format::GraphMl);
        let back = load_graph_from_str(&s, Some(Format::GraphMl)).unwrap();
        for (u, l) in g.labels().iter() {
            prop_assert_eq!(back.node_by_label(l), Some(u), "label {} lost", l);
        }
    }

    #[test]
    fn sniffing_own_output_recovers_format(edges in edge_list(20, 60)) {
        let g = GraphBuilder::from_edge_indices(edges);
        for f in [
            Format::EdgeListCsv,
            Format::Pajek,
            Format::Asd,
            Format::GraphMl,
            Format::JsonGraph,
        ] {
            let s = write_graph_to_string(&g, f);
            // Sniffed parse must reproduce the same edge multiset even if
            // the guessed format name differs (ASD vs CSV ambiguity cannot
            // arise because ASD headers match their edge count).
            let back = load_graph_from_str(&s, None).unwrap();
            prop_assert_eq!(back.edge_count(), g.edge_count());
        }
    }

    /// Robustness: no parser may panic on arbitrary input — malformed
    /// uploads must come back as `Err`, never crash a worker.
    #[test]
    fn parsers_never_panic_on_garbage(input in "\\PC{0,300}") {
        for f in [
            Format::EdgeListCsv,
            Format::Pajek,
            Format::Asd,
            Format::GraphMl,
            Format::JsonGraph,
        ] {
            let _ = load_graph_from_str(&input, Some(f));
        }
        let _ = load_graph_from_str(&input, None);
    }

    /// Same, for inputs that superficially resemble each format.
    #[test]
    fn parsers_never_panic_on_near_valid(
        prefix in prop::sample::select(vec![
            "*Vertices 3\n", "<graphml><graph edgedefault=\"directed\">",
            "{\"edges\": [", "3 2\n", "source,target\n",
        ]),
        suffix in "\\PC{0,120}",
    ) {
        let input = format!("{prefix}{suffix}");
        for f in [
            Format::EdgeListCsv,
            Format::Pajek,
            Format::Asd,
            Format::GraphMl,
            Format::JsonGraph,
        ] {
            let _ = load_graph_from_str(&input, Some(f));
        }
    }

    #[test]
    fn weighted_csv_roundtrip(
        edges in prop::collection::vec((0u32..20, 0u32..20, 1u32..1000), 1..80)
    ) {
        let mut b = GraphBuilder::new();
        for &(u, v, w) in &edges {
            b.add_weighted_edge(relgraph::NodeId::new(u), relgraph::NodeId::new(v), w as f64 / 4.0);
        }
        let g = b.build();
        let s = write_graph_to_string(&g, Format::EdgeListCsv);
        let back = load_graph_from_str(&s, Some(Format::EdgeListCsv)).unwrap();
        prop_assert!(back.is_weighted());
        for (u, v, w) in g.weighted_edges() {
            prop_assert_eq!(back.edge_weight(u, v), Some(w));
        }
    }
}
