//! Graphviz DOT export (write-only).
//!
//! The demo's Web UI renders the neighbourhood of a query result as a
//! picture; the library-side equivalent is exporting the relevant subgraph
//! as DOT for `dot -Tsvg`. Only a writer is provided — DOT is an output
//! format here, not an upload format.

use relgraph::DirectedGraph;

/// Escapes a DOT double-quoted string.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Serializes the whole graph as a directed DOT graph. Node labels become
/// DOT labels; edge weights (if any) become edge labels.
pub fn write(g: &DirectedGraph) -> String {
    write_scored(g, None)
}

/// Like [`write()`](fn@write), with an optional per-node score that is rendered into
/// the node label and mapped onto a color ramp (higher score = darker).
pub fn write_scored(g: &DirectedGraph, scores: Option<&[f64]>) -> String {
    let mut out = String::from(
        "digraph relevance {\n  rankdir=LR;\n  node [shape=box, style=filled, fillcolor=white];\n",
    );
    let max_score = scores.map(|s| s.iter().cloned().fold(f64::MIN, f64::max)).filter(|&m| m > 0.0);
    for u in g.nodes() {
        let name = g.display_name(u);
        let mut attrs = format!("label=\"{}\"", escape(&name));
        if let (Some(s), Some(max)) = (scores, max_score) {
            let score = s.get(u.index()).copied().unwrap_or(0.0);
            attrs = format!("label=\"{}\\n{:.4}\"", escape(&name), score);
            // Light blue ramp: 0 → white, max → steel blue.
            let t = (score / max).clamp(0.0, 1.0);
            let shade = (255.0 - t * 120.0) as u8;
            attrs.push_str(&format!(", fillcolor=\"#{:02x}{:02x}ff\"", shade, shade));
        }
        out.push_str(&format!("  n{} [{}];\n", u.raw(), attrs));
    }
    if g.is_weighted() {
        for (u, v, w) in g.weighted_edges() {
            out.push_str(&format!("  n{} -> n{} [label=\"{w}\"];\n", u.raw(), v.raw()));
        }
    } else {
        for (u, v) in g.edges() {
            out.push_str(&format!("  n{} -> n{};\n", u.raw(), v.raw()));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgraph::GraphBuilder;

    #[test]
    fn basic_structure() {
        let mut b = GraphBuilder::new();
        b.add_labeled_edge("Pasta", "Italy");
        let g = b.build();
        let dot = write(&g);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("label=\"Pasta\""));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn scores_rendered_with_colors() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 0)]);
        let dot = write_scored(&g, Some(&[1.0, 0.5]));
        assert!(dot.contains("1.0000"));
        assert!(dot.contains("0.5000"));
        assert!(dot.contains("fillcolor=\"#"));
    }

    #[test]
    fn weighted_edges_labeled() {
        let mut b = GraphBuilder::new();
        b.add_weighted_edge(relgraph::NodeId::new(0), relgraph::NodeId::new(1), 2.5);
        let g = b.build();
        assert!(write(&g).contains("label=\"2.5\""));
    }

    #[test]
    fn quotes_escaped() {
        let mut b = GraphBuilder::new();
        let a = b.add_labeled_node("say \"hi\"");
        let c = b.add_labeled_node("x");
        b.add_edge(a, c);
        let g = b.build();
        assert!(write(&g).contains("say \\\"hi\\\""));
    }

    #[test]
    fn all_zero_scores_no_color_crash() {
        let g = GraphBuilder::from_edge_indices([(0, 1)]);
        let dot = write_scored(&g, Some(&[0.0, 0.0]));
        assert!(dot.contains("digraph"));
    }
}
