//! ASD format — the demo platform's own minimal graph format.
//!
//! Reconstructed from the input format of the CycleRank reference
//! implementation:
//!
//! ```text
//! 4 5
//! 0 1
//! 1 0
//! 1 2
//! 2 3
//! 3 0
//! ```
//!
//! The header line declares `<node_count> <edge_count>`; each following
//! non-comment line is one directed edge `source target`, 0-indexed.
//! Lines starting with `#` are comments. The parser verifies the header
//! counts against the actual content — the format's one advantage over a
//! bare edge list is that truncated uploads are detected.

use crate::error::FormatError;
use relgraph::{DirectedGraph, GraphBuilder};

/// Parses ASD content.
pub fn parse(content: &str) -> Result<DirectedGraph, FormatError> {
    let mut lines = content
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

    let (hline, header) = lines.next().ok_or(FormatError::UnknownFormat)?;
    let mut it = header.split_whitespace();
    let n: u32 = it
        .next()
        .ok_or_else(|| FormatError::parse(hline, "missing node count"))?
        .parse()
        .map_err(|_| FormatError::parse(hline, "bad node count"))?;
    let m: usize = it
        .next()
        .ok_or_else(|| FormatError::parse(hline, "missing edge count"))?
        .parse()
        .map_err(|_| FormatError::parse(hline, "bad edge count"))?;
    if it.next().is_some() {
        return Err(FormatError::parse(hline, "header has extra fields"));
    }

    let mut b = GraphBuilder::with_capacity(n as usize, m);
    if n > 0 {
        b.ensure_node(n - 1);
    }
    let mut count = 0usize;
    for (ln, line) in lines {
        let mut f = line.split_whitespace();
        let (us, vs) = match (f.next(), f.next(), f.next()) {
            (Some(u), Some(v), None) => (u, v),
            _ => return Err(FormatError::parse(ln, format!("expected 'src dst', got {line:?}"))),
        };
        let u: u32 = us.parse().map_err(|_| FormatError::parse(ln, "bad source id"))?;
        let v: u32 = vs.parse().map_err(|_| FormatError::parse(ln, "bad target id"))?;
        if u >= n || v >= n {
            return Err(FormatError::parse(
                ln,
                format!("edge {u}->{v} outside declared node range 0..{n}"),
            ));
        }
        b.add_edge_indices(u, v);
        count += 1;
    }
    if count != m {
        return Err(FormatError::Inconsistent(format!(
            "header declares {m} edges but file contains {count}"
        )));
    }

    b.try_build().map_err(|e| FormatError::Inconsistent(e.to_string()))
}

/// Serializes a graph as ASD. Weights are not representable in ASD and are
/// dropped; parallel edges were already merged at build time.
pub fn write(g: &DirectedGraph) -> String {
    let mut out = format!("{} {}\n", g.node_count(), g.edge_count());
    for (u, v) in g.edges() {
        out.push_str(&format!("{} {}\n", u.raw(), v.raw()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgraph::NodeId;

    #[test]
    fn basic() {
        let g = parse("3 3\n0 1\n1 2\n2 0\n").unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(NodeId::new(2), NodeId::new(0)));
    }

    #[test]
    fn isolated_nodes_from_header() {
        let g = parse("5 1\n0 1\n").unwrap();
        assert_eq!(g.node_count(), 5);
    }

    #[test]
    fn comments_and_blank_lines() {
        let g = parse("# my graph\n2 1\n\n# the edge\n0 1\n").unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn edge_count_mismatch_detected() {
        assert!(matches!(parse("2 2\n0 1\n"), Err(FormatError::Inconsistent(_))));
        assert!(matches!(parse("2 0\n0 1\n"), Err(FormatError::Inconsistent(_))));
    }

    #[test]
    fn duplicate_edges_merge_breaks_count_check() {
        // Duplicates are legal input; the declared count refers to lines.
        let g = parse("2 2\n0 1\n0 1\n").unwrap();
        assert_eq!(g.edge_count(), 1); // merged at build
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(parse("2 1\n0 5\n").is_err());
        assert!(parse("2 1\n5 0\n").is_err());
    }

    #[test]
    fn malformed_rejected() {
        assert!(parse("").is_err());
        assert!(parse("x y\n").is_err());
        assert!(parse("2\n").is_err());
        assert!(parse("2 1 9\n0 1\n").is_err());
        assert!(parse("2 1\n0\n").is_err());
        assert!(parse("2 1\n0 1 2\n").is_err());
        assert!(parse("2 1\na b\n").is_err());
    }

    #[test]
    fn empty_graph() {
        let g = parse("0 0\n").unwrap();
        assert!(g.is_empty());
    }

    #[test]
    fn write_parse_roundtrip() {
        let g = relgraph::GraphBuilder::from_edge_indices([(0, 1), (1, 2), (2, 0), (0, 2)]);
        let back = parse(&write(&g)).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        for (u, v) in g.edges() {
            assert!(back.has_edge(u, v));
        }
    }
}
