//! Pajek NET format.
//!
//! The subset of Pajek the demo supports (and Gephi emits):
//!
//! ```text
//! *Vertices 3
//! 1 "Freddie Mercury"
//! 2 "Queen (band)"
//! 3 "Brian May"
//! *Arcs
//! 1 2
//! 2 1 2.0
//! *Edges
//! 2 3
//! ```
//!
//! `*Vertices n` declares `n` nodes (1-indexed); vertex lines may carry an
//! optional quoted (or bare) label. `*Arcs` lists directed edges with an
//! optional weight; `*Edges` lists undirected edges, loaded as one arc in
//! each direction. Section keywords are case-insensitive. Lines starting
//! with `%` are comments.

use crate::error::FormatError;
use relgraph::{DirectedGraph, GraphBuilder, NodeId};

#[derive(PartialEq, Clone, Copy)]
enum Section {
    Preamble,
    Vertices,
    Arcs,
    Edges,
}

/// Parses Pajek NET content.
pub fn parse(content: &str) -> Result<DirectedGraph, FormatError> {
    let mut b = GraphBuilder::new();
    let mut section = Section::Preamble;
    let mut declared: Option<u64> = None;
    let mut weighted = false;
    let mut labels: Vec<(NodeId, String)> = Vec::new();

    for (lineno, raw) in content.lines().enumerate() {
        let line = raw.trim();
        let ln = lineno + 1;
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        let lower = line.to_ascii_lowercase();
        if let Some(rest) = lower.strip_prefix("*vertices") {
            let n: u64 = rest
                .split_whitespace()
                .next()
                .ok_or_else(|| FormatError::parse(ln, "*Vertices missing count"))?
                .parse()
                .map_err(|_| FormatError::parse(ln, "bad *Vertices count"))?;
            declared = Some(n);
            if n > 0 {
                b.ensure_node(n as u32 - 1);
            }
            section = Section::Vertices;
            continue;
        }
        if lower.starts_with("*arcs") {
            section = Section::Arcs;
            continue;
        }
        if lower.starts_with("*edges") {
            section = Section::Edges;
            continue;
        }
        if lower.starts_with('*') {
            // Unknown section (e.g. *Matrix): unsupported.
            return Err(FormatError::parse(ln, format!("unsupported section {line:?}")));
        }

        match section {
            Section::Preamble => {
                return Err(FormatError::parse(ln, "data before *Vertices section"));
            }
            Section::Vertices => {
                // "<id> [label]" — label possibly quoted, possibly absent.
                let mut it = line.splitn(2, char::is_whitespace);
                let id: u64 = it
                    .next()
                    .unwrap()
                    .parse()
                    .map_err(|_| FormatError::parse(ln, "bad vertex id"))?;
                let n = declared.unwrap_or(0);
                if id == 0 || id > n {
                    return Err(FormatError::parse(ln, format!("vertex id {id} outside 1..={n}")));
                }
                if let Some(rest) = it.next() {
                    let rest = rest.trim();
                    let label = if let Some(stripped) = rest.strip_prefix('"') {
                        match stripped.find('"') {
                            Some(end) => stripped[..end].to_string(),
                            None => return Err(FormatError::parse(ln, "unterminated quote")),
                        }
                    } else {
                        // Bare label: first token only (the rest are coords).
                        rest.split_whitespace().next().unwrap_or("").to_string()
                    };
                    if !label.is_empty() {
                        labels.push((NodeId::new(id as u32 - 1), label));
                    }
                }
            }
            Section::Arcs | Section::Edges => {
                let fields: Vec<&str> = line.split_whitespace().collect();
                if fields.len() < 2 {
                    return Err(FormatError::parse(ln, format!("expected edge, got {line:?}")));
                }
                let parse_id = |s: &str| -> Result<u32, FormatError> {
                    let id: u64 =
                        s.parse().map_err(|_| FormatError::parse(ln, "bad node id in edge"))?;
                    let n = declared.unwrap_or(0);
                    if id == 0 || id > n {
                        return Err(FormatError::parse(
                            ln,
                            format!("edge endpoint {id} outside 1..={n}"),
                        ));
                    }
                    Ok(id as u32 - 1)
                };
                let u = parse_id(fields[0])?;
                let v = parse_id(fields[1])?;
                let w: Option<f64> = if fields.len() >= 3 {
                    Some(fields[2].parse().map_err(|_| FormatError::parse(ln, "bad edge weight"))?)
                } else {
                    None
                };
                let mut add = |a: u32, c: u32| {
                    if let Some(w) = w {
                        weighted = true;
                        b.add_weighted_edge(NodeId::new(a), NodeId::new(c), w);
                    } else if weighted {
                        b.add_weighted_edge(NodeId::new(a), NodeId::new(c), 1.0);
                    } else {
                        b.add_edge_indices(a, c);
                    }
                };
                add(u, v);
                if section == Section::Edges {
                    add(v, u);
                }
            }
        }
    }

    if declared.is_none() {
        return Err(FormatError::Inconsistent("no *Vertices section".into()));
    }

    let mut g = b.try_build().map_err(|e| FormatError::Inconsistent(e.to_string()))?;
    for (n, l) in labels {
        g.labels_mut().set(n, l);
    }
    Ok(g)
}

/// Serializes a graph as Pajek NET (labels quoted, directed edges as
/// `*Arcs`).
pub fn write(g: &DirectedGraph) -> String {
    let mut out = String::new();
    out.push_str(&format!("*Vertices {}\n", g.node_count()));
    for u in g.nodes() {
        match g.labels().get(u) {
            Some(l) => out.push_str(&format!("{} \"{}\"\n", u.raw() + 1, l.replace('"', "'"))),
            None => out.push_str(&format!("{}\n", u.raw() + 1)),
        }
    }
    out.push_str("*Arcs\n");
    if g.is_weighted() {
        for (u, v, w) in g.weighted_edges() {
            out.push_str(&format!("{} {} {}\n", u.raw() + 1, v.raw() + 1, w));
        }
    } else {
        for (u, v) in g.edges() {
            out.push_str(&format!("{} {}\n", u.raw() + 1, v.raw() + 1));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arcs() {
        let g = parse("*Vertices 3\n1\n2\n3\n*Arcs\n1 2\n2 3\n3 1\n").unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn labels_quoted_and_bare() {
        let g = parse("*Vertices 2\n1 \"Freddie Mercury\"\n2 Queen\n*Arcs\n1 2\n").unwrap();
        assert_eq!(g.node_by_label("Freddie Mercury"), Some(NodeId::new(0)));
        assert_eq!(g.node_by_label("Queen"), Some(NodeId::new(1)));
    }

    #[test]
    fn edges_are_bidirectional() {
        let g = parse("*Vertices 2\n*Edges\n1 2\n").unwrap();
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(g.has_edge(NodeId::new(1), NodeId::new(0)));
    }

    #[test]
    fn weighted_arcs() {
        let g = parse("*Vertices 2\n*Arcs\n1 2 2.5\n").unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.edge_weight(NodeId::new(0), NodeId::new(1)), Some(2.5));
    }

    #[test]
    fn vertices_without_list_lines() {
        // Pajek allows omitting vertex lines entirely.
        let g = parse("*Vertices 4\n*Arcs\n1 4\n").unwrap();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn comments_ignored() {
        let g = parse("% header comment\n*Vertices 2\n% mid\n*Arcs\n1 2\n").unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn case_insensitive_sections() {
        let g = parse("*VERTICES 2\n*arcs\n1 2\n").unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn errors() {
        assert!(parse("1 2\n").is_err()); // data before *Vertices
        assert!(parse("*Vertices x\n").is_err());
        assert!(parse("*Vertices 2\n*Arcs\n1 5\n").is_err()); // out of range
        assert!(parse("*Vertices 2\n*Arcs\n0 1\n").is_err()); // 0 not valid (1-indexed)
        assert!(parse("*Vertices 2\n*Matrix\n").is_err()); // unsupported section
        assert!(parse("*Vertices 2\n3 \"x\"\n").is_err()); // vertex id out of range
        assert!(parse("*Vertices 1\n1 \"unterminated\n").is_err());
        assert!(parse("").is_err()); // no vertices section at all
    }

    #[test]
    fn write_parse_roundtrip_with_labels() {
        let mut b = GraphBuilder::new();
        b.add_labeled_edge("Pasta", "Italian cuisine");
        b.add_labeled_edge("Italian cuisine", "Pasta");
        let g = b.build();
        let s = write(&g);
        let back = parse(&s).unwrap();
        assert_eq!(back.node_count(), 2);
        assert_eq!(back.edge_count(), 2);
        let p = back.node_by_label("Pasta").unwrap();
        let i = back.node_by_label("Italian cuisine").unwrap();
        assert!(back.has_edge(p, i));
    }

    #[test]
    fn quote_in_label_sanitized() {
        let mut b = GraphBuilder::new();
        let n = b.add_labeled_node("say \"hi\"");
        let m = b.add_labeled_node("other");
        b.add_edge(n, m);
        let g = b.build();
        let back = parse(&write(&g)).unwrap();
        assert_eq!(back.node_by_label("say 'hi'"), Some(NodeId::new(0)));
    }
}
