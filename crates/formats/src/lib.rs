//! # relformats — graph file formats of the CycleRank demo platform
//!
//! The demo's Instructions page documents three supported upload formats,
//! all implemented here with both readers and writers:
//!
//! * **edgelist CSV** ([`edgelist`]) — one `source,target[,weight]` pair per
//!   line, as in Gephi's CSV edge list;
//! * **Pajek NET** ([`pajek`]) — `*Vertices` section with optional quoted
//!   labels, then `*Arcs` (directed) and/or `*Edges` (undirected) sections,
//!   1-indexed;
//! * **ASD** ([`asd`]) — the platform's own minimal format: a header line
//!   `<nodes> <edges>` followed by one `source target` pair per line,
//!   0-indexed (reconstructed from the CycleRank reference implementation's
//!   input format).
//!
//! [`detect::sniff_format`] guesses the format from a filename and content,
//! and [`load_graph`] / [`load_graph_from_str`] put it all together:
//!
//! ```
//! use relformats::{load_graph_from_str, Format};
//!
//! let g = load_graph_from_str("0,1\n1,0\n", Some(Format::EdgeListCsv)).unwrap();
//! assert_eq!(g.node_count(), 2);
//! assert_eq!(g.edge_count(), 2);
//! ```

pub mod asd;
pub mod detect;
pub mod dot;
pub mod edgelist;
pub mod error;
pub mod graphml;
pub mod jsongraph;
pub mod pajek;

pub use detect::{sniff_format, Format};
pub use error::FormatError;

use relgraph::DirectedGraph;
use std::path::Path;

/// Parses a graph from a string, sniffing the format when `format` is
/// `None`.
pub fn load_graph_from_str(
    content: &str,
    format: Option<Format>,
) -> Result<DirectedGraph, FormatError> {
    let format = match format {
        Some(f) => f,
        None => sniff_format(None, content)?,
    };
    match format {
        Format::EdgeListCsv => edgelist::parse(content, &edgelist::EdgeListOptions::default()),
        Format::Pajek => pajek::parse(content),
        Format::Asd => asd::parse(content),
        Format::GraphMl => graphml::parse(content),
        Format::JsonGraph => jsongraph::parse(content),
    }
}

/// Reads a graph from a file, using the extension and content to pick the
/// format.
pub fn load_graph(path: impl AsRef<Path>) -> Result<DirectedGraph, FormatError> {
    let path = path.as_ref();
    let content = std::fs::read_to_string(path)
        .map_err(|e| FormatError::Io(format!("{}: {e}", path.display())))?;
    let format = sniff_format(path.file_name().and_then(|n| n.to_str()), &content)?;
    load_graph_from_str(&content, Some(format))
}

/// Serializes a graph in the given format.
pub fn write_graph_to_string(g: &DirectedGraph, format: Format) -> String {
    match format {
        Format::EdgeListCsv => edgelist::write(g),
        Format::Pajek => pajek::write(g),
        Format::Asd => asd::write(g),
        Format::GraphMl => graphml::write(g),
        Format::JsonGraph => jsongraph::write(g),
    }
}

/// Writes a graph to a file in the given format.
pub fn save_graph(
    g: &DirectedGraph,
    path: impl AsRef<Path>,
    format: Format,
) -> Result<(), FormatError> {
    let s = write_graph_to_string(g, format);
    std::fs::write(path.as_ref(), s)
        .map_err(|e| FormatError::Io(format!("{}: {e}", path.as_ref().display())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_formats_via_facade() {
        let g = relgraph::GraphBuilder::from_edge_indices([(0, 1), (1, 2), (2, 0)]);
        for f in
            [Format::EdgeListCsv, Format::Pajek, Format::Asd, Format::GraphMl, Format::JsonGraph]
        {
            let s = write_graph_to_string(&g, f);
            let back = load_graph_from_str(&s, Some(f)).unwrap();
            assert_eq!(back.node_count(), 3, "{f:?}");
            assert_eq!(back.edge_count(), 3, "{f:?}");
        }
    }

    #[test]
    fn file_roundtrip() {
        let g = relgraph::GraphBuilder::from_edge_indices([(0, 1), (1, 0)]);
        let dir = std::env::temp_dir().join("relformats_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("tiny.csv");
        save_graph(&g, &p, Format::EdgeListCsv).unwrap();
        let back = load_graph(&p).unwrap();
        assert_eq!(back.edge_count(), 2);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(load_graph("/nonexistent/path/graph.csv"), Err(FormatError::Io(_))));
    }
}
