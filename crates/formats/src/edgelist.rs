//! Edge-list CSV format.
//!
//! One edge per line: `source,target` or `source,target,weight`, with
//! integer node ids. Matching the Gephi CSV convention the demo references,
//! the parser also accepts:
//!
//! * an optional header line (`source,target[,weight]`, case-insensitive),
//! * `#`- and `%`-prefixed comment lines and blank lines,
//! * semicolon, tab or whitespace separators (auto-detected per line),
//!
//! so SNAP-style `\t`-separated files load unchanged.

use crate::error::FormatError;
use relgraph::{DirectedGraph, GraphBuilder, NodeId};

/// Parsing options for edge lists.
#[derive(Debug, Clone, Default)]
pub struct EdgeListOptions {
    /// Drop self-loops while loading (default: false).
    pub drop_self_loops: bool,
}

/// Splits a data line into fields on the first separator that matches.
fn split_line(line: &str) -> Vec<&str> {
    for sep in [',', ';', '\t'] {
        if line.contains(sep) {
            return line.split(sep).map(str::trim).filter(|s| !s.is_empty()).collect();
        }
    }
    line.split_whitespace().collect()
}

fn is_header(fields: &[&str]) -> bool {
    if fields.len() < 2 {
        return false;
    }
    let a = fields[0].to_ascii_lowercase();
    let b = fields[1].to_ascii_lowercase();
    matches!(a.as_str(), "source" | "src" | "from") && matches!(b.as_str(), "target" | "dst" | "to")
}

/// Parses an edge-list CSV into a graph.
pub fn parse(content: &str, opts: &EdgeListOptions) -> Result<DirectedGraph, FormatError> {
    let mut b = GraphBuilder::new();
    b.drop_self_loops(opts.drop_self_loops);
    let mut weighted_seen = false;
    let mut first_data_line = true;

    for (lineno, raw) in content.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let fields = split_line(line);
        if first_data_line && is_header(&fields) {
            first_data_line = false;
            continue;
        }
        first_data_line = false;

        if fields.len() < 2 {
            return Err(FormatError::parse(
                lineno + 1,
                format!("expected 2+ fields, got {line:?}"),
            ));
        }
        let u: u32 = fields[0].parse().map_err(|_| {
            FormatError::parse(lineno + 1, format!("bad source id {:?}", fields[0]))
        })?;
        let v: u32 = fields[1].parse().map_err(|_| {
            FormatError::parse(lineno + 1, format!("bad target id {:?}", fields[1]))
        })?;
        if fields.len() >= 3 {
            let w: f64 = fields[2].parse().map_err(|_| {
                FormatError::parse(lineno + 1, format!("bad weight {:?}", fields[2]))
            })?;
            weighted_seen = true;
            b.add_weighted_edge(NodeId::new(u), NodeId::new(v), w);
        } else if weighted_seen {
            // Mixed weighted/unweighted: treat missing weight as 1.0.
            b.add_weighted_edge(NodeId::new(u), NodeId::new(v), 1.0);
        } else {
            b.add_edge_indices(u, v);
        }
    }

    b.try_build().map_err(|e| FormatError::Inconsistent(e.to_string()))
}

/// Serializes a graph as `source,target[,weight]` lines (comma-separated,
/// with weights only when the graph is weighted).
pub fn write(g: &DirectedGraph) -> String {
    let mut out = String::with_capacity(g.edge_count() * 8);
    if g.is_weighted() {
        for (u, v, w) in g.weighted_edges() {
            out.push_str(&format!("{},{},{}\n", u.raw(), v.raw(), w));
        }
    } else {
        for (u, v) in g.edges() {
            out.push_str(&format!("{},{}\n", u.raw(), v.raw()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> DirectedGraph {
        parse(s, &EdgeListOptions::default()).unwrap()
    }

    #[test]
    fn basic_csv() {
        let g = p("0,1\n1,2\n2,0\n");
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(NodeId::new(2), NodeId::new(0)));
    }

    #[test]
    fn header_skipped() {
        let g = p("source,target\n0,1\n");
        assert_eq!(g.edge_count(), 1);
        let g = p("Src,Dst\n0,1\n");
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn comments_and_blanks() {
        let g = p("# a comment\n\n% another\n0,1\n\n1,0\n");
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn tab_and_space_separated() {
        let g = p("0\t1\n1\t2\n");
        assert_eq!(g.edge_count(), 2);
        let g = p("0 1\n1 2\n");
        assert_eq!(g.edge_count(), 2);
        let g = p("0;1\n");
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn weighted_third_column() {
        let g = p("0,1,2.5\n1,0,0.5\n");
        assert!(g.is_weighted());
        assert_eq!(g.edge_weight(NodeId::new(0), NodeId::new(1)), Some(2.5));
    }

    #[test]
    fn mixed_weights_default_one() {
        let g = p("0,1,2.0\n1,2\n");
        assert_eq!(g.edge_weight(NodeId::new(1), NodeId::new(2)), Some(1.0));
    }

    #[test]
    fn bad_lines_error_with_lineno() {
        let err = parse("0,1\nxx,2\n", &EdgeListOptions::default()).unwrap_err();
        match err {
            FormatError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse("0\n", &EdgeListOptions::default()).is_err());
        assert!(parse("0,1,notaweight\n", &EdgeListOptions::default()).is_err());
    }

    #[test]
    fn drop_self_loops_option() {
        let opts = EdgeListOptions { drop_self_loops: true };
        let g = parse("0,0\n0,1\n", &opts).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn write_parse_roundtrip_unweighted() {
        let g = relgraph::GraphBuilder::from_edge_indices([(0, 3), (3, 1), (1, 0)]);
        let s = write(&g);
        let back = p(&s);
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        for (u, v) in g.edges() {
            assert!(back.has_edge(u, v));
        }
    }

    #[test]
    fn write_parse_roundtrip_weighted() {
        let mut b = GraphBuilder::new();
        b.add_weighted_edge(NodeId::new(0), NodeId::new(1), 1.5);
        b.add_weighted_edge(NodeId::new(1), NodeId::new(2), 3.25);
        let g = b.build();
        let back = p(&write(&g));
        assert!(back.is_weighted());
        assert_eq!(back.edge_weight(NodeId::new(1), NodeId::new(2)), Some(3.25));
    }

    #[test]
    fn empty_content_gives_empty_graph() {
        let g = p("# nothing here\n");
        assert!(g.is_empty());
    }
}
