//! Parse/IO errors for the graph formats.

use std::fmt;

/// Errors from reading or writing graph files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// Underlying IO failure (message includes the path).
    Io(String),
    /// A line failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The content matched no known format.
    UnknownFormat,
    /// A structural inconsistency (e.g. ASD header count mismatch).
    Inconsistent(String),
}

impl FormatError {
    /// Convenience constructor for parse errors.
    pub fn parse(line: usize, message: impl Into<String>) -> Self {
        FormatError::Parse { line, message: message.into() }
    }
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::Io(m) => write!(f, "io error: {m}"),
            FormatError::Parse { line, message } => write!(f, "line {line}: {message}"),
            FormatError::UnknownFormat => write!(f, "could not detect graph format"),
            FormatError::Inconsistent(m) => write!(f, "inconsistent file: {m}"),
        }
    }
}

impl std::error::Error for FormatError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(FormatError::parse(3, "bad token").to_string().contains("line 3"));
        assert!(FormatError::UnknownFormat.to_string().contains("detect"));
        assert!(FormatError::Io("x".into()).to_string().contains("io"));
        assert!(FormatError::Inconsistent("y".into()).to_string().contains("y"));
    }
}
