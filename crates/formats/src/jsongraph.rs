//! JSON graph format.
//!
//! The second "future" format of the demo: a pragmatic JSON shape matching
//! what the platform's own API emits and what d3/visjs-style front-ends
//! consume:
//!
//! ```json
//! {
//!   "directed": true,
//!   "nodes": [ {"id": 0, "label": "Pasta"}, {"id": 1} ],
//!   "edges": [ {"source": 0, "target": 1, "weight": 2.0} ]
//! }
//! ```
//!
//! `nodes` is optional (ids may be declared implicitly by edges); `label`
//! and `weight` are optional; `directed` defaults to true and `false` is
//! rejected (the platform handles directed graphs only).

use crate::error::FormatError;
use relgraph::{DirectedGraph, GraphBuilder, NodeId};
use serde_json::Value;

fn bad(msg: impl Into<String>) -> FormatError {
    FormatError::Inconsistent(msg.into())
}

fn node_index(v: &Value, what: &str) -> Result<u32, FormatError> {
    v.as_u64()
        .and_then(|x| u32::try_from(x).ok())
        .ok_or_else(|| bad(format!("{what} must be an unsigned 32-bit integer, got {v}")))
}

/// Parses JSON graph content.
pub fn parse(content: &str) -> Result<DirectedGraph, FormatError> {
    let root: Value =
        serde_json::from_str(content).map_err(|e| bad(format!("invalid JSON: {e}")))?;
    let obj = root.as_object().ok_or_else(|| bad("top level must be an object"))?;

    if let Some(directed) = obj.get("directed") {
        if directed != &Value::Bool(true) {
            return Err(bad("only directed graphs are supported (\"directed\": true)"));
        }
    }

    let mut b = GraphBuilder::new();

    if let Some(nodes) = obj.get("nodes") {
        let nodes = nodes.as_array().ok_or_else(|| bad("\"nodes\" must be an array"))?;
        for n in nodes {
            match n {
                n if n.is_number() => {
                    b.ensure_node(node_index(n, "node id")?);
                }
                Value::Object(fields) => {
                    let id = fields.get("id").ok_or_else(|| bad("node without \"id\""))?;
                    let id = node_index(id, "node id")?;
                    b.ensure_node(id);
                    if let Some(label) = fields.get("label") {
                        let label =
                            label.as_str().ok_or_else(|| bad("node label must be a string"))?;
                        b.set_label(NodeId::new(id), label);
                    }
                }
                other => return Err(bad(format!("node entry must be object or int, got {other}"))),
            }
        }
    }

    let edges = obj
        .get("edges")
        .or_else(|| obj.get("links"))
        .ok_or_else(|| bad("missing \"edges\" array"))?
        .as_array()
        .ok_or_else(|| bad("\"edges\" must be an array"))?;

    let mut weighted = false;
    for (i, e) in edges.iter().enumerate() {
        let fields = e.as_object().ok_or_else(|| bad(format!("edge {i} must be an object")))?;
        let u = node_index(
            fields.get("source").ok_or_else(|| bad(format!("edge {i} missing source")))?,
            "source",
        )?;
        let v = node_index(
            fields.get("target").ok_or_else(|| bad(format!("edge {i} missing target")))?,
            "target",
        )?;
        match fields.get("weight") {
            Some(w) => {
                let w = w.as_f64().ok_or_else(|| bad(format!("edge {i} weight not a number")))?;
                weighted = true;
                b.add_weighted_edge(NodeId::new(u), NodeId::new(v), w);
            }
            None if weighted => {
                b.add_weighted_edge(NodeId::new(u), NodeId::new(v), 1.0);
            }
            None => {
                b.add_edge_indices(u, v);
            }
        }
    }

    b.try_build().map_err(|e| bad(e.to_string()))
}

/// Serializes a graph as JSON.
pub fn write(g: &DirectedGraph) -> String {
    let nodes: Vec<Value> = g
        .nodes()
        .map(|u| match g.labels().get(u) {
            Some(l) => serde_json::json!({"id": u.raw(), "label": l}),
            None => serde_json::json!({"id": u.raw()}),
        })
        .collect();
    let edges: Vec<Value> = if g.is_weighted() {
        g.weighted_edges()
            .map(|(u, v, w)| serde_json::json!({"source": u.raw(), "target": v.raw(), "weight": w}))
            .collect()
    } else {
        g.edges().map(|(u, v)| serde_json::json!({"source": u.raw(), "target": v.raw()})).collect()
    };
    let doc = serde_json::json!({"directed": true, "nodes": nodes, "edges": edges});
    serde_json::to_string_pretty(&doc).expect("JSON serialization cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal() {
        let g = parse(r#"{"edges": [{"source": 0, "target": 1}]}"#).unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn nodes_with_labels_and_weights() {
        let g = parse(
            r#"{
              "directed": true,
              "nodes": [{"id": 0, "label": "Pasta"}, {"id": 1, "label": "Italy"}, 2],
              "edges": [{"source": 0, "target": 1, "weight": 2.5},
                        {"source": 1, "target": 2}]
            }"#,
        )
        .unwrap();
        assert_eq!(g.node_count(), 3);
        let p = g.node_by_label("Pasta").unwrap();
        let i = g.node_by_label("Italy").unwrap();
        assert_eq!(g.edge_weight(p, i), Some(2.5));
        assert_eq!(g.edge_weight(i, NodeId::new(2)), Some(1.0)); // default
    }

    #[test]
    fn links_alias_accepted() {
        let g = parse(r#"{"links": [{"source": 0, "target": 1}]}"#).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn rejects_bad_documents() {
        assert!(parse("[]").is_err());
        assert!(parse("{").is_err());
        assert!(parse(r#"{"directed": false, "edges": []}"#).is_err());
        assert!(parse(r#"{"nodes": [], "edges": [{"source": 0}]}"#).is_err());
        assert!(parse(r#"{"edges": [{"source": -1, "target": 0}]}"#).is_err());
        assert!(parse(r#"{"edges": [{"source": "a", "target": 0}]}"#).is_err());
        assert!(parse(r#"{"edges": "no"}"#).is_err());
        assert!(parse(r#"{"nodes": ["x"], "edges": []}"#).is_err());
        assert!(parse(r#"{"nodes": [{"id": 0, "label": 5}], "edges": []}"#).is_err());
        assert!(parse(r#"{"nodes": [{}], "edges": []}"#).is_err());
    }

    #[test]
    fn write_parse_roundtrip() {
        let mut b = GraphBuilder::new();
        let p = b.add_labeled_node("A");
        let q = b.add_labeled_node("B");
        b.add_weighted_edge(p, q, 3.0);
        b.add_weighted_edge(q, p, 1.0);
        let g = b.build();
        let back = parse(&write(&g)).unwrap();
        assert_eq!(back.node_count(), 2);
        let bp = back.node_by_label("A").unwrap();
        let bq = back.node_by_label("B").unwrap();
        assert_eq!(back.edge_weight(bp, bq), Some(3.0));
    }

    #[test]
    fn roundtrip_unweighted() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 2), (2, 0)]);
        let back = parse(&write(&g)).unwrap();
        assert_eq!(back.edge_count(), 3);
        assert!(!back.is_weighted());
    }
}
