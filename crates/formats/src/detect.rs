//! Format detection from filename and content.

use crate::error::FormatError;

/// The three upload formats of the demo platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// `source,target[,weight]` per line.
    EdgeListCsv,
    /// Pajek `.net`: `*Vertices` / `*Arcs` / `*Edges` sections.
    Pajek,
    /// ASD: `<nodes> <edges>` header, then `src dst` lines.
    Asd,
    /// GraphML XML (subset).
    GraphMl,
    /// JSON graph (`{"nodes": [...], "edges": [...]}`).
    JsonGraph,
}

impl Format {
    /// Canonical file extension.
    pub fn extension(self) -> &'static str {
        match self {
            Format::EdgeListCsv => "csv",
            Format::Pajek => "net",
            Format::Asd => "asd",
            Format::GraphMl => "graphml",
            Format::JsonGraph => "json",
        }
    }
}

impl std::fmt::Display for Format {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Format::EdgeListCsv => "edgelist-csv",
            Format::Pajek => "pajek",
            Format::Asd => "asd",
            Format::GraphMl => "graphml",
            Format::JsonGraph => "json-graph",
        };
        f.write_str(name)
    }
}

impl std::str::FromStr for Format {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "csv" | "edgelist" | "edgelist-csv" | "edges" => Ok(Format::EdgeListCsv),
            "net" | "pajek" => Ok(Format::Pajek),
            "asd" => Ok(Format::Asd),
            "graphml" | "xml" => Ok(Format::GraphMl),
            "json" | "json-graph" | "jsongraph" => Ok(Format::JsonGraph),
            other => Err(format!("unknown format {other:?} (expected csv|pajek|asd|graphml|json)")),
        }
    }
}

/// Guesses the format of `content`, optionally using `filename`'s
/// extension as a strong hint.
///
/// Heuristics, in order:
/// 1. extension `.net` → Pajek; `.asd` → ASD; `.csv`/`.edges` → edge list;
/// 2. content starting with `*` (after comments) → Pajek;
/// 3. a first data line of exactly two integers, where the remaining line
///    count matches the second integer → ASD;
/// 4. otherwise → edge-list CSV (the most permissive format).
pub fn sniff_format(filename: Option<&str>, content: &str) -> Result<Format, FormatError> {
    if let Some(name) = filename {
        let lower = name.to_ascii_lowercase();
        if lower.ends_with(".net") || lower.ends_with(".paj") {
            return Ok(Format::Pajek);
        }
        if lower.ends_with(".asd") {
            return Ok(Format::Asd);
        }
        if lower.ends_with(".csv") || lower.ends_with(".edges") || lower.ends_with(".edgelist") {
            return Ok(Format::EdgeListCsv);
        }
        if lower.ends_with(".graphml") || lower.ends_with(".xml") {
            return Ok(Format::GraphMl);
        }
        if lower.ends_with(".json") {
            return Ok(Format::JsonGraph);
        }
    }

    let mut data_lines = content
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#') && !l.starts_with('%'));

    let first = match data_lines.next() {
        Some(l) => l,
        None => return Err(FormatError::UnknownFormat),
    };
    if first.starts_with('*') {
        return Ok(Format::Pajek);
    }
    if first.starts_with('<') {
        return Ok(Format::GraphMl);
    }
    if first.starts_with('{') || first.starts_with('[') {
        return Ok(Format::JsonGraph);
    }

    // ASD heuristic: "n m" header whose m matches the number of remaining
    // data lines.
    let fields: Vec<&str> = first.split_whitespace().collect();
    if fields.len() == 2 && !first.contains(',') && !first.contains(';') {
        if let (Ok(_n), Ok(m)) = (fields[0].parse::<u64>(), fields[1].parse::<u64>()) {
            let remaining = data_lines.count() as u64;
            if remaining == m {
                return Ok(Format::Asd);
            }
        }
    }

    Ok(Format::EdgeListCsv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extension_wins() {
        assert_eq!(sniff_format(Some("g.net"), "0,1").unwrap(), Format::Pajek);
        assert_eq!(sniff_format(Some("g.asd"), "0,1").unwrap(), Format::Asd);
        assert_eq!(sniff_format(Some("g.csv"), "*Vertices 2").unwrap(), Format::EdgeListCsv);
        assert_eq!(sniff_format(Some("G.EDGES"), "0 1").unwrap(), Format::EdgeListCsv);
    }

    #[test]
    fn pajek_star_detected() {
        assert_eq!(sniff_format(None, "% c\n*Vertices 2\n*Arcs\n1 2\n").unwrap(), Format::Pajek);
    }

    #[test]
    fn asd_header_detected() {
        assert_eq!(sniff_format(None, "2 1\n0 1\n").unwrap(), Format::Asd);
    }

    #[test]
    fn asd_like_but_count_mismatch_is_edgelist() {
        // "0 1\n1 2\n2 0" — first line could be a header "0 1" but then 2
        // lines remain, not 1, so it's a plain edge list.
        assert_eq!(sniff_format(None, "0 1\n1 2\n2 0\n").unwrap(), Format::EdgeListCsv);
    }

    #[test]
    fn csv_fallback() {
        assert_eq!(sniff_format(None, "0,1\n1,2\n").unwrap(), Format::EdgeListCsv);
        assert_eq!(sniff_format(None, "source,target\n0,1\n").unwrap(), Format::EdgeListCsv);
    }

    #[test]
    fn empty_unknown() {
        assert!(matches!(
            sniff_format(None, "\n# only comments\n"),
            Err(FormatError::UnknownFormat)
        ));
    }

    #[test]
    fn format_parse_and_display() {
        for f in
            [Format::EdgeListCsv, Format::Pajek, Format::Asd, Format::GraphMl, Format::JsonGraph]
        {
            let s = f.to_string();
            assert_eq!(s.parse::<Format>().unwrap(), f);
            assert!(!f.extension().is_empty());
        }
        assert!("doc".parse::<Format>().is_err());
    }
}
