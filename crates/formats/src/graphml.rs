//! GraphML format (subset).
//!
//! The demo's Instructions page promises more formats "in the future";
//! GraphML is the most-requested one (Gephi's native exchange format).
//! This module implements the subset Gephi and NetworkX emit for plain
//! directed graphs:
//!
//! * one `<graph edgedefault="directed">` element;
//! * `<node id="…">` with an optional `<data key="label">` child;
//! * `<edge source="…" target="…">` with an optional `<data key="weight">`
//!   child;
//! * node ids may be arbitrary strings (`n0`, `42`, `article-7`); they are
//!   mapped to dense indices in document order.
//!
//! The parser is a small hand-rolled tag scanner — not a general XML
//! parser: processing instructions, comments and unknown elements are
//! skipped, entity decoding covers the five XML built-ins, and anything
//! structurally surprising is a [`FormatError::Parse`].

use crate::error::FormatError;
use relgraph::{DirectedGraph, GraphBuilder, NodeId};
use std::collections::HashMap;

/// Decodes the five XML built-in entities.
fn unescape(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

/// Encodes text for XML output.
fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

/// A scanned tag: name, attributes, self-closing flag, closing flag.
struct Tag<'a> {
    name: &'a str,
    attrs: Vec<(&'a str, String)>,
    closing: bool,
    self_closing: bool,
    /// Byte offset just past the `>`.
    end: usize,
}

fn scan_tag(s: &str, from: usize) -> Option<Result<Tag<'_>, FormatError>> {
    let open = s[from..].find('<')? + from;
    let close = match s[open..].find('>') {
        Some(c) => open + c,
        None => return Some(Err(FormatError::Inconsistent("unterminated tag".into()))),
    };
    let inner = &s[open + 1..close];
    // Skip declarations and comments.
    if inner.starts_with('?') || inner.starts_with('!') {
        return Some(Ok(Tag {
            name: "",
            attrs: Vec::new(),
            closing: false,
            self_closing: true,
            end: close + 1,
        }));
    }
    let closing = inner.starts_with('/');
    let body = inner.trim_start_matches('/').trim_end_matches('/');
    let self_closing = inner.ends_with('/');
    let mut parts = body.splitn(2, char::is_whitespace);
    let name = parts.next().unwrap_or("").trim();
    let mut attrs = Vec::new();
    if let Some(rest) = parts.next() {
        let mut rest = rest.trim();
        while !rest.is_empty() {
            let eq = match rest.find('=') {
                Some(e) => e,
                None => break,
            };
            let key = rest[..eq].trim();
            let after = rest[eq + 1..].trim_start();
            if !after.starts_with('"') {
                return Some(Err(FormatError::Inconsistent(format!("attribute {key} not quoted"))));
            }
            let vend = match after[1..].find('"') {
                Some(v) => v,
                None => {
                    return Some(Err(FormatError::Inconsistent(format!(
                        "attribute {key} unterminated"
                    ))))
                }
            };
            attrs.push((key, unescape(&after[1..1 + vend])));
            rest = after[vend + 2..].trim_start();
        }
    }
    Some(Ok(Tag { name, attrs, closing, self_closing, end: close + 1 }))
}

/// Parses GraphML content.
pub fn parse(content: &str) -> Result<DirectedGraph, FormatError> {
    let mut b = GraphBuilder::new();
    let mut ids: HashMap<String, NodeId> = HashMap::new();
    let mut pos = 0usize;
    let mut weighted = false;
    let mut saw_graph = false;

    // Pending element state: inside a <node> or <edge>, collecting <data>.
    enum Pending {
        None,
        Node(NodeId),
        Edge { u: NodeId, v: NodeId, weight: Option<f64> },
    }
    let mut pending = Pending::None;

    let resolve = |b: &mut GraphBuilder, ids: &mut HashMap<String, NodeId>, raw: &str| {
        *ids.entry(raw.to_string()).or_insert_with(|| b.add_node())
    };

    while let Some(tag) = scan_tag(content, pos) {
        let tag = tag?;
        let content_start = tag.end;
        pos = tag.end;
        match (tag.name, tag.closing) {
            ("graph", false) => {
                saw_graph = true;
                if let Some((_, v)) = tag.attrs.iter().find(|(k, _)| *k == "edgedefault") {
                    if v != "directed" {
                        return Err(FormatError::Inconsistent(format!(
                            "only directed graphs supported, got edgedefault={v:?}"
                        )));
                    }
                }
            }
            ("node", false) => {
                let id = tag
                    .attrs
                    .iter()
                    .find(|(k, _)| *k == "id")
                    .map(|(_, v)| v.clone())
                    .ok_or_else(|| FormatError::Inconsistent("node without id".into()))?;
                let n = resolve(&mut b, &mut ids, &id);
                if tag.self_closing {
                    pending = Pending::None;
                } else {
                    pending = Pending::Node(n);
                }
            }
            ("edge", false) => {
                let get = |key: &str| {
                    tag.attrs
                        .iter()
                        .find(|(k, _)| *k == key)
                        .map(|(_, v)| v.clone())
                        .ok_or_else(|| FormatError::Inconsistent(format!("edge without {key}")))
                };
                let u = resolve(&mut b, &mut ids, &get("source")?);
                let v = resolve(&mut b, &mut ids, &get("target")?);
                if tag.self_closing {
                    b.add_edge(u, v);
                    pending = Pending::None;
                } else {
                    pending = Pending::Edge { u, v, weight: None };
                }
            }
            ("data", false) if !tag.self_closing => {
                let key = tag
                    .attrs
                    .iter()
                    .find(|(k, _)| *k == "key")
                    .map(|(_, v)| v.clone())
                    .unwrap_or_default();
                // Text up to the closing </data>.
                let rest = &content[content_start..];
                let close = rest
                    .find("</data>")
                    .ok_or_else(|| FormatError::Inconsistent("unterminated <data>".into()))?;
                let text = unescape(rest[..close].trim());
                pos = content_start + close + "</data>".len();
                match &mut pending {
                    Pending::Node(n) if key == "label" || key == "name" => {
                        b.set_label(*n, &text);
                    }
                    Pending::Edge { weight, .. } if key == "weight" => {
                        let w: f64 = text.parse().map_err(|_| {
                            FormatError::Inconsistent(format!("bad edge weight {text:?}"))
                        })?;
                        *weight = Some(w);
                    }
                    _ => {} // unknown data keys are ignored
                }
            }
            ("node", true) => pending = Pending::None,
            ("edge", true) => {
                if let Pending::Edge { u, v, weight } = pending {
                    match weight {
                        Some(w) => {
                            weighted = true;
                            b.add_weighted_edge(u, v, w);
                        }
                        None if weighted => {
                            b.add_weighted_edge(u, v, 1.0);
                        }
                        None => {
                            b.add_edge(u, v);
                        }
                    }
                }
                pending = Pending::None;
            }
            _ => {}
        }
    }

    if !saw_graph {
        return Err(FormatError::Inconsistent("no <graph> element".into()));
    }
    b.try_build().map_err(|e| FormatError::Inconsistent(e.to_string()))
}

/// Serializes a graph as GraphML.
pub fn write(g: &DirectedGraph) -> String {
    let mut out = String::from(
        "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n\
         <graphml xmlns=\"http://graphml.graphdrawing.org/xmlns\">\n\
         <key id=\"label\" for=\"node\" attr.name=\"label\" attr.type=\"string\"/>\n\
         <key id=\"weight\" for=\"edge\" attr.name=\"weight\" attr.type=\"double\"/>\n\
         <graph edgedefault=\"directed\">\n",
    );
    for u in g.nodes() {
        match g.labels().get(u) {
            Some(l) => out.push_str(&format!(
                "  <node id=\"n{}\"><data key=\"label\">{}</data></node>\n",
                u.raw(),
                escape(l)
            )),
            None => out.push_str(&format!("  <node id=\"n{}\"/>\n", u.raw())),
        }
    }
    if g.is_weighted() {
        for (u, v, w) in g.weighted_edges() {
            out.push_str(&format!(
                "  <edge source=\"n{}\" target=\"n{}\"><data key=\"weight\">{w}</data></edge>\n",
                u.raw(),
                v.raw()
            ));
        }
    } else {
        for (u, v) in g.edges() {
            out.push_str(&format!("  <edge source=\"n{}\" target=\"n{}\"/>\n", u.raw(), v.raw()));
        }
    }
    out.push_str("</graph>\n</graphml>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_directed_graph() {
        let g = parse(
            r#"<graphml><graph edgedefault="directed">
                 <node id="a"/><node id="b"/>
                 <edge source="a" target="b"/>
               </graph></graphml>"#,
        )
        .unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn labels_and_weights() {
        let g = parse(
            r#"<?xml version="1.0"?>
               <graphml><graph edgedefault="directed">
                 <node id="n0"><data key="label">Pasta &amp; more</data></node>
                 <node id="n1"><data key="label">Italy</data></node>
                 <edge source="n0" target="n1"><data key="weight">2.5</data></edge>
               </graph></graphml>"#,
        )
        .unwrap();
        let p = g.node_by_label("Pasta & more").unwrap();
        let i = g.node_by_label("Italy").unwrap();
        assert_eq!(g.edge_weight(p, i), Some(2.5));
    }

    #[test]
    fn implicit_nodes_from_edges() {
        let g = parse(
            r#"<graphml><graph edgedefault="directed">
                 <edge source="x" target="y"/><edge source="y" target="x"/>
               </graph></graphml>"#,
        )
        .unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn unknown_data_keys_ignored() {
        let g = parse(
            r#"<graphml><graph edgedefault="directed">
                 <node id="a"><data key="color">red</data></node>
                 <node id="b"/>
                 <edge source="a" target="b"><data key="note">hi</data></edge>
               </graph></graphml>"#,
        )
        .unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn rejects_undirected_and_malformed() {
        assert!(parse(r#"<graphml><graph edgedefault="undirected"></graph></graphml>"#).is_err());
        assert!(parse("just text").is_err());
        assert!(
            parse(r#"<graphml><graph edgedefault="directed"><node/></graph></graphml>"#).is_err()
        ); // node without id
        assert!(parse(
            r#"<graphml><graph edgedefault="directed"><edge source="a"/></graph></graphml>"#
        )
        .is_err()); // edge without target
        assert!(parse(
            r#"<graphml><graph edgedefault="directed"><node id="a"><data key="label">x</node></graph></graphml>"#
        )
        .is_err()); // unterminated data
        assert!(parse(r#"<graphml><graph edgedefault="directed"><node id=a/></graph></graphml>"#)
            .is_err()); // unquoted attribute
    }

    #[test]
    fn write_parse_roundtrip_with_labels_and_weights() {
        let mut b = GraphBuilder::new();
        let p = b.add_labeled_node("Pasta \"al dente\" <fresh>");
        let i = b.add_labeled_node("Italy");
        b.add_weighted_edge(p, i, 1.5);
        b.add_weighted_edge(i, p, 2.5);
        let g = b.build();
        let xml = write(&g);
        let back = parse(&xml).unwrap();
        assert_eq!(back.node_count(), 2);
        let bp = back.node_by_label("Pasta \"al dente\" <fresh>").unwrap();
        let bi = back.node_by_label("Italy").unwrap();
        assert_eq!(back.edge_weight(bp, bi), Some(1.5));
        assert_eq!(back.edge_weight(bi, bp), Some(2.5));
    }

    #[test]
    fn roundtrip_unweighted_unlabeled() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 2), (2, 0)]);
        let back = parse(&write(&g)).unwrap();
        assert_eq!(back.node_count(), 3);
        assert_eq!(back.edge_count(), 3);
        for (u, v) in g.edges() {
            assert!(back.has_edge(u, v));
        }
    }
}
