//! Command implementations.
//!
//! Each command returns its human-readable output as a `String` (the
//! binary prints it), which keeps everything unit-testable without
//! capturing stdout.

use crate::args::{BatchSpecArgs, CompareDatasetsSpec, CompareSpec, MutateSpec, RunSpec};
use relcore::{AlgorithmRegistry, Query};
use relengine::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(600);

/// `list-datasets`: the catalog, optionally filtered by kind.
pub fn list_datasets(kind: Option<&str>) -> Result<String, String> {
    let want = match kind {
        None => None,
        Some(k) => Some(match k.to_ascii_lowercase().as_str() {
            "wikipedia" | "wiki" => reldata::DatasetKind::Wikipedia,
            "amazon" => reldata::DatasetKind::Amazon,
            "twitter" => reldata::DatasetKind::Twitter,
            "fixture" => reldata::DatasetKind::Fixture,
            "synthetic" => reldata::DatasetKind::Synthetic,
            other => return Err(format!("unknown dataset kind {other:?}")),
        }),
    };
    let mut out = format!("{:<24} {:>12} {}\n", "ID", "~NODES", "NAME");
    let mut count = 0;
    for spec in reldata::catalog() {
        if want.map(|w| w == spec.kind).unwrap_or(true) {
            out.push_str(&format!("{:<24} {:>12} {}\n", spec.id, spec.approx_nodes, spec.name));
            count += 1;
        }
    }
    out.push_str(&format!("{count} datasets\n"));
    Ok(out)
}

/// `algorithms`: every algorithm in the registry with its metadata.
pub fn algorithms() -> String {
    let mut out = format!("{:<12} {:<18} {:<14} {}\n", "ID", "NAME", "PERSONALIZED", "OUTPUT");
    for d in AlgorithmRegistry::global().descriptors() {
        out.push_str(&format!(
            "{:<12} {:<18} {:<14} {}\n",
            d.id,
            d.name,
            if d.personalized { "yes" } else { "no" },
            if d.produces_scores { "scores" } else { "ranking only" }
        ));
    }
    out
}

/// `stats`: structural summary of one dataset, including the memory and
/// locality footprint the reordering work targets and the per-tier
/// bytes/edge figures (standard CSR vs. the compact delta-varint
/// representation the `compact` serving tier uses).
pub fn stats(dataset: &str) -> Result<String, String> {
    let g = reldata::load_dataset(dataset).ok_or_else(|| format!("unknown dataset {dataset:?}"))?;
    let s = relgraph::GraphStats::compute(&g);
    let ordering = reldata::registry::spec(dataset)
        .and_then(|s| s.reorder)
        .map(|o| o.to_string())
        .unwrap_or_else(|| "original".into());
    let compact = relgraph::CompactGraph::from_csr(&g);
    let per_edge = |bytes: usize| {
        if s.edges == 0 {
            0.0
        } else {
            bytes as f64 / s.edges as f64
        }
    };
    let lanes: Vec<&str> = relcore::Precision::ALL.iter().map(|p| p.id()).collect();
    Ok(format!(
        "dataset      {dataset}\n\
         nodes        {}\n\
         edges        {}\n\
         density      {:.6}\n\
         mean degree  {:.2}\n\
         max out/in   {}/{}\n\
         reciprocity  {:.3}\n\
         self-loops   {}\n\
         dangling     {}\n\
         memory       {} bytes ({:.2} MiB adjacency)\n\
         tier csr     {:.1} bytes/edge\n\
         tier compact {:.1} bytes/edge ({:.0}% of csr)\n\
         precision    {}\n\
         ordering     {ordering} (mean edge span {:.1})\n",
        s.nodes,
        s.edges,
        s.density,
        s.mean_degree,
        s.max_out_degree,
        s.max_in_degree,
        s.reciprocity,
        s.self_loops,
        s.dangling,
        g.memory_bytes(),
        g.memory_bytes() as f64 / (1024.0 * 1024.0),
        per_edge(g.memory_bytes()),
        per_edge(compact.memory_bytes()),
        100.0 * per_edge(compact.memory_bytes())
            / per_edge(g.memory_bytes()).max(f64::MIN_POSITIVE),
        lanes.join(", "),
        g.mean_edge_span(),
    ))
}

/// Solver-related CLI flags, bundled so `build_query` stays readable.
#[derive(Debug, Clone, Default)]
struct SolverFlags<'a> {
    /// `--solver`: full solver set, including approximate push/mc.
    solver: Option<&'a str>,
    /// `--scheme`: exact kernel scheme; wins over `--solver`.
    scheme: Option<&'a str>,
    /// `--threads`: worker threads for the parallel scheme.
    threads: Option<usize>,
    /// `--precision`: score-lane precision (f64|f32).
    precision: Option<&'a str>,
    /// `--trace`: record per-iteration residuals.
    trace: bool,
    /// `--top-k`: top-k-only serving mode.
    top_k: Option<usize>,
}

/// Builds a registry-backed [`Query`] from CLI flags. The algorithm name
/// resolves through the [`AlgorithmRegistry`], so any registered id or
/// alias works — not just the seven paper algorithms.
#[allow(clippy::too_many_arguments)]
fn build_query(
    target: impl Into<relcore::QueryTarget>,
    algorithm: &str,
    source: Option<&str>,
    alpha: Option<f64>,
    k: Option<u32>,
    sigma: Option<&str>,
    solver: SolverFlags<'_>,
    top: usize,
) -> Result<Query, String> {
    // Fail fast on unknown names, with the registry as source of truth.
    AlgorithmRegistry::global()
        .get(algorithm)
        .ok_or_else(|| format!("unknown algorithm {algorithm:?} (see `relrank algorithms`)"))?;
    let mut q = Query::on(target).algorithm(algorithm).top(top);
    if let Some(s) = solver.solver {
        q = q.solver(s.parse()?);
    }
    if let Some(s) = solver.scheme {
        q = q.scheme(s.parse::<relcore::Scheme>()?);
    }
    if let Some(n) = solver.threads {
        q = q.threads(n);
    }
    if let Some(p) = solver.precision {
        q = q.precision(p.parse()?);
    }
    if let Some(k) = solver.top_k {
        q = q.top_k(k);
    }
    q = q.trace(solver.trace);
    if let Some(a) = alpha {
        q = q.alpha(a);
    }
    if let Some(k) = k {
        q = q.k(k);
    }
    if let Some(s) = sigma {
        q = q.scoring(s.parse()?);
    }
    if let Some(s) = source {
        q = q.reference(s);
    }
    Ok(q)
}

/// `run`: execute one query and print its top-k. With `--file`, the graph
/// is loaded from disk and queried directly.
pub fn run_task(spec: RunSpec) -> Result<String, String> {
    let target: relcore::QueryTarget = match &spec.file {
        Some(path) => {
            let graph = relformats::load_graph(path).map_err(|e| e.to_string())?;
            Arc::new(graph).into()
        }
        None => {
            reldata::connect_query_api();
            spec.dataset.as_str().into()
        }
    };
    let query = build_query(
        target,
        &spec.algorithm,
        spec.source.as_deref(),
        spec.alpha,
        spec.k,
        spec.sigma.as_deref(),
        SolverFlags {
            solver: spec.solver.as_deref(),
            scheme: spec.scheme.as_deref(),
            threads: spec.threads,
            precision: spec.precision.as_deref(),
            trace: spec.trace,
            top_k: spec.top_k,
        },
        spec.top,
    )?;
    let r = query.run().map_err(|e| e.to_string())?;
    let id = TaskId::fresh();
    let result = TaskResult {
        task_id: id.clone(),
        dataset: spec.dataset.clone(),
        algorithm: r.algorithm.clone(),
        parameters: r.parameters.clone(),
        source: spec.source.clone(),
        top: r.top_entries(),
        runtime_ms: r.runtime.as_millis() as u64,
        nodes: r.graph.node_count(),
        edges: r.graph.edge_count(),
        iterations: r.output.convergence.map(|c| c.iterations),
        residual: r.output.convergence.map(|c| c.residual),
        converged: r.output.convergence.map(|c| c.converged),
        residuals: r.output.trace.as_ref().map(|t| t.residuals.clone()),
        cycles_found: r.output.cycles_found,
    };

    if spec.json {
        return serde_json::to_string_pretty(&result).map_err(|e| e.to_string());
    }
    let mut out = format!(
        "task {id}\ndataset {} ({} nodes, {} edges)\nalgorithm {} [{}]  runtime {}ms\n",
        result.dataset,
        result.nodes,
        result.edges,
        result.algorithm,
        result.parameters,
        result.runtime_ms
    );
    if let Some(c) = result.cycles_found {
        out.push_str(&format!("cycles found: {c}\n"));
    }
    if let Some(i) = result.iterations {
        out.push_str(&format!("iterations: {i}\n"));
    }
    if let (Some(residual), Some(converged)) = (result.residual, result.converged) {
        out.push_str(&format!(
            "residual: {residual:.3e} ({})\n",
            if converged { "converged" } else { "iteration cap reached" }
        ));
    }
    if let Some(residuals) = &result.residuals {
        out.push_str("residual trace:");
        for (i, r) in residuals.iter().enumerate() {
            out.push_str(&format!("{}{r:.3e}", if i % 8 == 0 { "\n  " } else { "  " }));
        }
        out.push('\n');
    } else if spec.trace {
        out.push_str(
            "note: --trace has no effect here (approximate solvers and \
             non-iterative algorithms produce no residual trace)\n",
        );
    }
    out.push('\n');
    for (rank, (label, score)) in result.top.iter().enumerate() {
        out.push_str(&format!("{:>3}  {:<40} {:.6}\n", rank + 1, label, score));
    }
    Ok(out)
}

/// Expands the `--seeds` flag: `@path` reads one seed label per line
/// (blank lines and `#` comments skipped); anything else splits on
/// commas. Labels that themselves contain a comma (e.g. "Paris, France")
/// cannot be written in list form — use the `@file` form for those.
fn expand_seeds(arg: &str) -> Result<Vec<String>, String> {
    let seeds: Vec<String> = match arg.strip_prefix('@') {
        Some(path) => std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read seed file {path:?}: {e}"))?
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(str::to_string)
            .collect(),
        None => {
            arg.split(',').map(str::trim).filter(|s| !s.is_empty()).map(str::to_string).collect()
        }
    };
    if seeds.is_empty() {
        return Err("no seeds given (use --seeds a,b,c or --seeds @file)".into());
    }
    Ok(seeds)
}

/// `batch`: one personalized algorithm over many seeds, solved in a single
/// multi-vector sweep — the request-serving path for high-QPS
/// personalization, on the command line.
pub fn batch(spec: BatchSpecArgs) -> Result<String, String> {
    let seeds = expand_seeds(&spec.seeds)?;
    reldata::connect_query_api();
    let mut q = Query::on(spec.dataset.as_str())
        .algorithm(spec.algorithm.as_str())
        .seeds(seeds.iter().map(String::as_str))
        .top(spec.top);
    if let Some(a) = spec.alpha {
        q = q.alpha(a);
    }
    if let Some(s) = &spec.scheme {
        q = q.scheme(s.parse::<relcore::Scheme>()?);
    }
    if let Some(n) = spec.threads {
        q = q.threads(n);
    }
    if let Some(k) = spec.top_k {
        q = q.top_k(k);
    }
    let batch = q.run_batch().map_err(|e| e.to_string())?;

    if spec.json {
        let entries: Vec<serde_json::Value> = seeds
            .iter()
            .enumerate()
            .map(|(i, seed)| {
                serde_json::json!({
                    "seed": seed,
                    "top": batch.top_entries(i),
                })
            })
            .collect();
        return serde_json::to_string_pretty(&serde_json::json!({
            "dataset": spec.dataset,
            "algorithm": batch.algorithm,
            "parameters": batch.parameters,
            "seeds": seeds.len(),
            "runtime_ms": batch.runtime.as_millis() as u64,
            "amortized_ms_per_seed": batch.runtime_per_seed().as_millis() as u64,
            "results": entries,
        }))
        .map_err(|e| e.to_string());
    }

    let mut out = format!(
        "dataset {} ({} nodes, {} edges)\nalgorithm {} [{}]\n{} seeds in {}ms ({:.2}ms/seed amortized)\n",
        spec.dataset,
        batch.graph.node_count(),
        batch.graph.edge_count(),
        batch.algorithm,
        batch.parameters,
        seeds.len(),
        batch.runtime.as_millis(),
        batch.runtime.as_secs_f64() * 1e3 / seeds.len() as f64,
    );
    for (i, seed) in seeds.iter().enumerate() {
        out.push_str(&format!("\nseed {seed}\n"));
        for (rank, (label, score)) in batch.top_entries(i).iter().enumerate() {
            out.push_str(&format!("{:>3}  {:<40} {:.6}\n", rank + 1, label, score));
        }
    }
    Ok(out)
}

/// Parses one `SRC->DST` / `SRC->DST:WEIGHT` edge spec. The weight suffix
/// is recognized only when the text after the last `:` parses as a
/// number, so labels containing colons still work un-weighted.
fn parse_edge(text: &str, weighted: bool) -> Result<relengine::EdgeSpec, String> {
    let (source, rest) = text
        .split_once("->")
        .ok_or_else(|| format!("bad edge {text:?} (expected SRC->DST or SRC->DST:WEIGHT)"))?;
    let (target, weight) = match rest.rsplit_once(':') {
        Some((t, w)) if weighted => match w.trim().parse::<f64>() {
            Ok(w) => (t, Some(w)),
            Err(_) => (rest, None),
        },
        _ => (rest, None),
    };
    let (source, target) = (source.trim(), target.trim());
    if source.is_empty() || target.is_empty() {
        return Err(format!("bad edge {text:?}: empty endpoint"));
    }
    Ok(relengine::EdgeSpec { source: source.to_string(), target: target.to_string(), weight })
}

/// `mutate`: apply dynamic edge updates to a dataset, optionally running
/// one query before and after to show the ranking impact. Mutations go
/// through the engine executor, so they exercise exactly the versioning
/// and cache-invalidation path the server uses.
pub fn mutate(spec: MutateSpec) -> Result<String, String> {
    let mut ops = Vec::new();
    for e in &spec.add {
        ops.push(relengine::EdgeOp::Add(parse_edge(e, true)?));
    }
    for e in &spec.remove {
        ops.push(relengine::EdgeOp::Remove(parse_edge(e, false)?));
    }

    // --top-k routes the before/after query through the certified top-k
    // serving path (and caps the printout at k rows).
    let top = spec.top_k.unwrap_or(spec.top);
    let ex = Executor::new();
    let task = match (&spec.algorithm, &spec.source) {
        (Some(algo), source) => {
            let algo: Algorithm = algo.parse()?;
            let mut b = TaskBuilder::new(spec.dataset.as_str()).algorithm(algo).top_k(top);
            if let Some(s) = source {
                b = b.source(s.as_str());
            }
            let mut task = b.build().map_err(|e| e.to_string())?;
            if let Some(k) = spec.top_k {
                task.params.top_k = Some(k);
            }
            Some(task)
        }
        (None, _) => None,
    };
    let before = match &task {
        Some(t) => Some(ex.execute(&TaskId::fresh(), t).map_err(|e| e.to_string())?),
        None => None,
    };
    let outcome = ex.mutate_dataset(&spec.dataset, &ops).map_err(|e| e.to_string())?;
    let after = match &task {
        Some(t) => Some(ex.execute(&TaskId::fresh(), t).map_err(|e| e.to_string())?),
        None => None,
    };

    if spec.json {
        let mut v = serde_json::json!({
            "dataset": outcome.dataset,
            "version": outcome.version,
            "applied": outcome.applied,
            "nodes": outcome.nodes,
            "edges": outcome.edges,
        });
        if let (Some(b), Some(a)) = (&before, &after) {
            if let serde_json::Value::Object(map) = &mut v {
                map.insert("top_before".into(), serde_json::to_value(&b.top));
                map.insert("top_after".into(), serde_json::to_value(&a.top));
            }
        }
        return serde_json::to_string_pretty(&v).map_err(|e| e.to_string());
    }

    let mut out = format!(
        "dataset {}\napplied {} of {} operation(s); graph version {} \
         ({} nodes, {} edges)\nresult caches for this dataset are invalidated; \
         identical queries will recompute\n",
        outcome.dataset,
        outcome.applied,
        ops.len(),
        outcome.version,
        outcome.nodes,
        outcome.edges,
    );
    if let (Some(b), Some(a)) = (&before, &after) {
        out.push_str(&format!("\n{} [{}] — before | after\n", a.algorithm, a.parameters));
        for rank in 0..top {
            let cell = |r: &TaskResult| {
                r.top
                    .get(rank)
                    .map(|(l, s)| format!("{l} ({s:.6})"))
                    .unwrap_or_else(|| "-".to_string())
            };
            out.push_str(&format!("{:>3}  {:<40} {}\n", rank + 1, cell(b), cell(a)));
        }
    }
    Ok(out)
}

/// `compare`: the paper's *algorithm comparison* use case — side-by-side
/// top-k columns per algorithm over one dataset and reference (Tables
/// I–II).
pub fn compare(spec: CompareSpec) -> Result<String, String> {
    let engine = Scheduler::builder().workers(spec.algorithms.len().max(1)).build();
    let mut qs = QuerySet::new();
    for name in &spec.algorithms {
        let algo = AlgorithmRegistry::global()
            .get(name)
            .ok_or_else(|| format!("unknown algorithm {name:?} (see `relrank algorithms`)"))?;
        let source = algo.is_personalized().then_some(spec.source.as_str());
        let query = build_query(
            spec.dataset.as_str(),
            name,
            source,
            None,
            None,
            None,
            SolverFlags::default(),
            spec.top,
        )?;
        qs.add(TaskSpec::from_query(&query).map_err(|e| e.to_string())?);
    }
    let ids = engine.submit_query_set(&qs);
    let results = engine.wait_all(&ids, WAIT).map_err(|e| e.to_string())?;

    let width = 28;
    let mut out = format!(
        "Comparison id: {}\ndataset {} | reference {:?}\n\n",
        qs.id, spec.dataset, spec.source
    );
    out.push_str("#   ");
    for r in &results {
        out.push_str(&format!("{:<width$}", r.algorithm));
    }
    out.push('\n');
    for rank in 0..spec.top {
        out.push_str(&format!("{:<4}", rank + 1));
        for r in &results {
            let cell = r.top.get(rank).map(|(l, _)| l.as_str()).unwrap_or("-");
            out.push_str(&format!("{:<width$}", truncate(cell, width - 2)));
        }
        out.push('\n');
    }
    Ok(out)
}

/// `compare-datasets`: the paper's *dataset comparison* use case — the same
/// CycleRank query across several datasets (Table III).
pub fn compare_datasets(spec: CompareDatasetsSpec) -> Result<String, String> {
    let engine = Scheduler::builder().workers(spec.datasets.len().max(1)).build();
    let mut qs = QuerySet::new();
    for ds in &spec.datasets {
        let query = build_query(
            ds.as_str(),
            "cyclerank",
            Some(&spec.source),
            None,
            Some(spec.k),
            None,
            SolverFlags::default(),
            spec.top,
        )?;
        qs.add(TaskSpec::from_query(&query).map_err(|e| e.to_string())?);
    }
    let ids = engine.submit_query_set(&qs);
    let results = engine.wait_all(&ids, WAIT).map_err(|e| e.to_string())?;

    let width = 28;
    let mut out = format!(
        "Comparison id: {}\nCyclerank (K = {}, σ = exp) | reference {:?}\n\n",
        qs.id, spec.k, spec.source
    );
    out.push_str("#   ");
    for ds in &spec.datasets {
        out.push_str(&format!("{:<width$}", truncate(ds, width - 2)));
    }
    out.push('\n');
    for rank in 0..spec.top {
        out.push_str(&format!("{:<4}", rank + 1));
        for r in &results {
            let cell = r.top.get(rank).map(|(l, _)| l.as_str()).unwrap_or("-");
            out.push_str(&format!("{:<width$}", truncate(cell, width - 2)));
        }
        out.push('\n');
    }
    Ok(out)
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let cut: String = s.chars().take(max.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

/// `convert`: read any supported graph format, write another.
pub fn convert(input: &str, output: &str, format: Option<&str>) -> Result<String, String> {
    let g = relformats::load_graph(input).map_err(|e| e.to_string())?;
    let fmt = match format {
        Some(f) => f.parse::<relformats::Format>()?,
        None => {
            // Infer from the output extension.
            let ext =
                std::path::Path::new(output).extension().and_then(|e| e.to_str()).unwrap_or("csv");
            ext.parse::<relformats::Format>()?
        }
    };
    relformats::save_graph(&g, output, fmt).map_err(|e| e.to_string())?;
    Ok(format!(
        "converted {input} -> {output} ({fmt}): {} nodes, {} edges\n",
        g.node_count(),
        g.edge_count()
    ))
}

/// `visualize`: run CycleRank, extract the induced subgraph of the top-k
/// nodes, and write it as Graphviz DOT with score-colored nodes.
pub fn visualize(
    dataset: &str,
    source: &str,
    k: u32,
    top: usize,
    output: &str,
) -> Result<String, String> {
    let g = reldata::load_dataset(dataset).ok_or_else(|| format!("unknown dataset {dataset:?}"))?;
    g.node_by_label(source).ok_or_else(|| format!("no node labeled {source:?} in {dataset}"))?;
    let result = Query::on(Arc::new(g))
        .algorithm("cyclerank")
        .reference(source)
        .k(k)
        .run()
        .map_err(|e| e.to_string())?;
    let g = &result.graph;
    let scores = result.scores().expect("cyclerank produces scores");
    let keep: Vec<relgraph::NodeId> = scores.top_k(top).into_iter().map(|(n, _)| n).collect();
    let (sub, map) = relgraph::induced_subgraph(g, keep.iter().copied());
    // Scatter scores into the subgraph's index space.
    let sub_scores: Vec<f64> = (0..sub.node_count())
        .map(|i| scores.get(map.to_orig(relgraph::NodeId::new(i as u32))))
        .collect();
    let dot = relformats::dot::write_scored(&sub, Some(&sub_scores));
    std::fs::write(output, &dot).map_err(|e| e.to_string())?;
    Ok(format!(
        "wrote {output}: {} nodes, {} edges (CycleRank K={k} around {source:?}); render with `dot -Tsvg {output}`
",
        sub.node_count(),
        sub.edge_count()
    ))
}

/// Admission-control overrides for `serve` (`--queue-depth`,
/// `--max-expensive`); `None` keeps the auto-sized default.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeLimits {
    /// Admission-queue depth.
    pub queue_depth: Option<usize>,
    /// Expensive-lane concurrency.
    pub max_expensive: Option<usize>,
}

/// `serve`: run the API gateway until killed. Serving uses a bounded
/// worker pool sized from the host; `limits` overrides the admission
/// queue depth and expensive-lane concurrency. With `--data-dir` the
/// engine recovers persisted datasets on boot and journals every edge
/// mutation while serving.
pub fn serve(
    addr: &str,
    workers: usize,
    limits: ServeLimits,
    data_dir: Option<&str>,
) -> Result<String, String> {
    let mut builder = Scheduler::builder().workers(workers);
    if let Some(dir) = data_dir {
        builder = builder.data_dir(dir);
    }
    let engine = Arc::new(builder.try_build().map_err(|e| e.to_string())?);
    if let Some(dir) = data_dir {
        let recovered = engine
            .executor()
            .persistence()
            .and_then(|p| p.dataset_ids().ok())
            .map(|ids| ids.len())
            .unwrap_or(0);
        eprintln!("durable store at {dir}: {recovered} dataset(s) recovered");
    }
    let mut config = relserver::ServingConfig::auto(engine.worker_count());
    if let Some(depth) = limits.queue_depth {
        config.queue_depth = depth.max(1);
    }
    if let Some(max) = limits.max_expensive {
        config.max_expensive = max.max(1);
    }
    let server =
        relserver::ApiServer::bind_with(addr, engine, config.clone()).map_err(|e| e.to_string())?;
    let bound = server.local_addr();
    eprintln!(
        "relrank API gateway listening on http://{bound} \
         ({} http workers, queue {}, {} expensive, {workers} solver workers)",
        config.workers, config.queue_depth, config.max_expensive
    );
    server.run();
    Ok(format!("server on {bound} stopped\n"))
}

/// `replay <dir>`: rebuild every dataset in a durable data directory from
/// its snapshot + journal (the exact boot-recovery path) and print each
/// dataset's recovered version, node/edge counts, replay depth, and an
/// FNV-1a state digest — two directories holding the same logical state
/// print the same digests.
pub fn replay(dir: &str, json: bool) -> Result<String, String> {
    let persist = relengine::GraphPersistence::open(dir).map_err(|e| e.to_string())?;
    let mut rows = Vec::new();
    for id in persist.dataset_ids().map_err(|e| e.to_string())? {
        let mut r = persist
            .recover(&id)
            .map_err(|e| e.to_string())?
            .ok_or_else(|| format!("dataset {id:?} listed but not recoverable"))?;
        let graph = r.graph.snapshot();
        let version = r.graph.version();
        rows.push((
            id,
            version,
            graph.node_count(),
            graph.edge_count(),
            r.snapshot_version,
            r.replayed,
            relstore::graph_digest(&graph, version),
        ));
    }
    if json {
        let rows: Vec<serde_json::Value> = rows
            .iter()
            .map(|(id, version, nodes, edges, snapshot_version, replayed, digest)| {
                serde_json::json!({
                    "dataset": id,
                    "version": version,
                    "nodes": nodes,
                    "edges": edges,
                    "snapshot_version": snapshot_version,
                    "replayed_records": replayed,
                    "digest": format!("{digest:016x}"),
                })
            })
            .collect();
        return serde_json::to_string_pretty(&rows).map_err(|e| e.to_string());
    }
    let mut out = format!(
        "{:<24} {:>8} {:>8} {:>8} {:>8} {:>8}  {}\n",
        "DATASET", "VERSION", "NODES", "EDGES", "SNAP@", "REPLAY", "DIGEST"
    );
    for (id, version, nodes, edges, snapshot_version, replayed, digest) in &rows {
        out.push_str(&format!(
            "{:<24} {:>8} {:>8} {:>8} {:>8} {:>8}  {:016x}\n",
            id, version, nodes, edges, snapshot_version, replayed, digest
        ));
    }
    out.push_str(&format!("{} dataset(s) replayed from {dir}\n", rows.len()));
    Ok(out)
}

/// `journal verify <dir>`: integrity check (frame CRCs, snapshot
/// decodability, version monotonicity, torn tails) over every dataset in
/// a durable data directory. Returns `Err` — a non-zero exit — when any
/// dataset fails, so it works as a CI / cron guard.
///
/// Exit codes distinguish the boring cases: a missing data directory is
/// exit 3 (checked before the store opens, since opening would silently
/// create it), while an empty (zero-length) journal is a clean exit 0
/// with an explicit "empty journal" note — nothing was damaged, there
/// was just nothing to verify.
pub fn journal_verify(dir: &str, json: bool) -> Result<String, crate::CliError> {
    if !std::path::Path::new(dir).is_dir() {
        return Err(crate::CliError::with_code(3, format!("data directory {dir} does not exist")));
    }
    let store = relstore::DatasetStore::open(dir).map_err(|e| e.to_string())?;
    let reports = store.verify().map_err(|e| e.to_string())?;
    let bad: Vec<&str> =
        reports.iter().filter(|r| !r.is_ok()).map(|r| r.dataset.as_str()).collect();
    let empty_journal = |r: &relstore::DatasetVerify| {
        r.journal_records == 0
            && std::fs::metadata(std::path::Path::new(dir).join(&r.dataset).join("journal.log"))
                .map(|m| m.len() == 0)
                .unwrap_or(false)
    };
    let out = if json {
        let rows: Vec<serde_json::Value> = reports
            .iter()
            .map(|r| {
                serde_json::json!({
                    "dataset": r.dataset,
                    "snapshot_ok": r.snapshot_ok,
                    "journal_records": r.journal_records,
                    "empty_journal": empty_journal(r),
                    "monotonic": r.monotonic,
                    "tail": format!("{:?}", r.tail),
                    "ok": r.is_ok(),
                })
            })
            .collect();
        serde_json::to_string_pretty(&rows).map_err(|e| e.to_string())?
    } else {
        let mut out = format!(
            "{:<24} {:>8} {:>8} {:>9} {:>10}  {}\n",
            "DATASET", "SNAP", "RECORDS", "MONOTONE", "TAIL", "VERDICT"
        );
        for r in &reports {
            out.push_str(&format!(
                "{:<24} {:>8} {:>8} {:>9} {:>10}  {}\n",
                r.dataset,
                if r.snapshot_ok { "ok" } else { "BAD" },
                r.journal_records,
                if r.monotonic { "ok" } else { "BAD" },
                format!("{:?}", r.tail),
                if !r.is_ok() {
                    "DAMAGED"
                } else if empty_journal(r) {
                    "ok (empty journal)"
                } else {
                    "ok"
                },
            ));
        }
        out.push_str(&format!("{} dataset(s) checked in {dir}\n", reports.len()));
        out
    };
    if bad.is_empty() {
        Ok(out)
    } else {
        Err(crate::CliError::from(format!("{out}journal verify failed for: {}", bad.join(", "))))
    }
}

/// Knobs for `scenario run`, mirroring [`relscenario::RunOptions`] plus
/// output format.
pub struct ScenarioRunOptions {
    /// Expansion seed (`--seed`).
    pub seed: u64,
    /// Fault variants per expanded base scenario (`--variants`).
    pub variants: usize,
    /// Cap on expanded scenarios run (`--max`).
    pub max: Option<usize>,
    /// Where to dump shrunk repros (`--dump-dir`).
    pub dump_dir: Option<String>,
    /// Skip shrinking failures (`--no-shrink`).
    pub no_shrink: bool,
    /// Emit JSON instead of a table.
    pub json: bool,
}

/// `scenario run <file|dir>`: expand scenario documents and execute each
/// expansion against a real engine + persistence stack in a temp dir,
/// checking every step against the model oracle. Failures exit 1 with
/// per-scenario diagnostics (and shrunk repro dumps when `--dump-dir` is
/// set); a missing path exits 3.
pub fn scenario_run(path: &str, opts: ScenarioRunOptions) -> Result<String, crate::CliError> {
    let p = std::path::Path::new(path);
    if !p.exists() {
        return Err(crate::CliError::with_code(3, format!("scenario path {path} does not exist")));
    }
    let run_opts = relscenario::RunOptions {
        seed: opts.seed,
        variants: opts.variants,
        max: opts.max,
        dump_dir: opts.dump_dir.map(std::path::PathBuf::from),
        shrink_failures: !opts.no_shrink,
    };
    let report = relscenario::run_suite(p, &run_opts).map_err(|e| e.to_string())?;
    let out = if opts.json {
        let failures: Vec<serde_json::Value> = report
            .failures
            .iter()
            .map(|f| {
                serde_json::json!({
                    "scenario": f.scenario,
                    "step": f.step,
                    "message": f.message,
                    "shrunk_ops": f.shrunk_ops,
                    "dump": f.dump.as_ref().map(|p| p.display().to_string()),
                })
            })
            .collect();
        let doc = serde_json::json!({
            "seed": opts.seed,
            "total": report.total,
            "passed": report.passed,
            "failed": report.failures.len(),
            "failures": failures,
        });
        format!("{}\n", serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?)
    } else {
        let mut out = format!("seed {}: {}\n", opts.seed, report.summary());
        for f in &report.failures {
            out.push_str(&format!("FAIL {} at step {}: {}\n", f.scenario, f.step, f.message));
            if let Some(n) = f.shrunk_ops {
                out.push_str(&format!("     shrunk to {n} op(s)"));
                if let Some(d) = &f.dump {
                    out.push_str(&format!(", repro dumped to {}", d.display()));
                }
                out.push('\n');
            }
        }
        out
    };
    if report.ok() {
        Ok(out)
    } else {
        Err(crate::CliError::from(format!(
            "{out}{} scenario(s) failed; reproduce with --seed {}",
            report.failures.len(),
            opts.seed
        )))
    }
}

/// `lint [root]`: run the project's static-analysis rules over the
/// workspace's first-party crates. A finding outside the baseline exits
/// 1; a root without a `crates/` directory exits 3; everything clean
/// exits 0. With `--json` the full report (findings, suppression and
/// baseline counters) is printed for CI artifacts.
pub fn lint(root: &str, baseline: Option<&str>, json: bool) -> Result<String, crate::CliError> {
    let root_path = std::path::Path::new(root);
    if !root_path.join("crates").is_dir() {
        return Err(crate::CliError::with_code(
            3,
            format!("{root} has no crates/ directory to lint"),
        ));
    }
    // Default baseline: <root>/rellint.baseline, when present.
    let default_baseline = root_path.join("rellint.baseline");
    let baseline_path = match baseline {
        Some(p) => Some(std::path::PathBuf::from(p)),
        None => default_baseline.exists().then_some(default_baseline),
    };
    let baseline = match &baseline_path {
        Some(p) => {
            let text = std::fs::read_to_string(p).map_err(|e| {
                crate::CliError::with_code(3, format!("cannot read baseline {}: {e}", p.display()))
            })?;
            rellint::parse_baseline(&text).map_err(|e| crate::CliError::with_code(2, e))?
        }
        None => Vec::new(),
    };
    let ws = rellint::Workspace::load(root_path).map_err(|e| e.to_string())?;
    let report = ws.run(&baseline);
    let out = if json { report.render_json() } else { report.render_text() };
    if report.is_clean() {
        Ok(out)
    } else if json {
        // The JSON report goes to stdout even on failure so CI can
        // redirect it into an artifact; the exit code carries the verdict.
        println!("{out}");
        Err(crate::CliError::from(format!("lint failed: {} finding(s)", report.findings.len())))
    } else {
        Err(crate::CliError::from(format!(
            "{out}lint failed; fix the findings, add a reasoned \
             `// rellint: allow(<rule>) -- <reason>` pragma, or freeze existing debt as \
             `rule<TAB>path<TAB>source text` lines in rellint.baseline"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_datasets_all_and_filtered() {
        let all = list_datasets(None).unwrap();
        assert!(all.contains("50 datasets"));
        let wiki = list_datasets(Some("wikipedia")).unwrap();
        assert!(wiki.contains("36 datasets"));
        let fx = list_datasets(Some("fixture")).unwrap();
        assert!(fx.contains("8 datasets"));
        assert!(list_datasets(Some("bogus")).is_err());
    }

    #[test]
    fn algorithms_lists_seven() {
        let out = algorithms();
        assert_eq!(out.lines().count(), 8); // header + 7
        assert!(out.contains("cyclerank"));
        assert!(out.contains("ranking only"));
    }

    #[test]
    fn stats_of_fixture() {
        let out = stats("fixture-fakenews-pl").unwrap();
        assert!(out.contains("nodes"));
        assert!(out.contains("reciprocity"));
        assert!(out.contains("tier csr"), "{out}");
        assert!(out.contains("tier compact"), "{out}");
        assert!(out.contains("precision    f64, f32"), "{out}");
        assert!(stats("nope").is_err());
    }

    #[test]
    fn run_on_local_file() {
        let dir = std::env::temp_dir().join("relcli-run-file-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mine.net");
        std::fs::write(&path, "*Vertices 2\n1 \"me\"\n2 \"pal\"\n*Arcs\n1 2\n2 1\n").unwrap();
        let spec = RunSpec {
            dataset: "uploaded-file".into(),
            file: Some(path.to_str().unwrap().to_string()),
            algorithm: "cyclerank".into(),
            source: Some("me".into()),
            alpha: None,
            k: Some(3),
            sigma: None,
            solver: None,
            scheme: None,
            threads: None,
            precision: None,
            trace: false,
            top_k: None,
            top: 2,
            json: false,
        };
        let out = run_task(spec).unwrap();
        assert!(out.contains("pal"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_with_f32_precision_lane() {
        let spec = RunSpec {
            dataset: "fixture-fakenews-it".into(),
            file: None,
            algorithm: "pagerank".into(),
            source: None,
            alpha: None,
            k: None,
            sigma: None,
            solver: None,
            scheme: None,
            threads: None,
            precision: Some("f32".into()),
            trace: false,
            top_k: None,
            top: 3,
            json: false,
        };
        let out = run_task(spec).unwrap();
        assert!(out.contains("converged"), "{out}");
        // Unknown lanes fail fast with the parse error.
        let mut bad = RunSpec {
            dataset: "fixture-fakenews-it".into(),
            file: None,
            algorithm: "pagerank".into(),
            source: None,
            alpha: None,
            k: None,
            sigma: None,
            solver: None,
            scheme: None,
            threads: None,
            precision: Some("f16".into()),
            trace: false,
            top_k: None,
            top: 3,
            json: false,
        };
        assert!(run_task(bad.clone()).is_err());
        bad.precision = None;
        assert!(run_task(bad).is_ok());
    }

    #[test]
    fn run_cyclerank_table_output() {
        let spec = RunSpec {
            dataset: "fixture-fakenews-it".into(),
            file: None,
            algorithm: "cyclerank".into(),
            source: Some("Fake news".into()),
            alpha: None,
            k: Some(3),
            sigma: Some("exp".into()),
            solver: None,
            scheme: None,
            threads: None,
            precision: None,
            trace: false,
            top_k: None,
            top: 5,
            json: false,
        };
        let out = run_task(spec).unwrap();
        assert!(out.contains("cycles found"));
        assert!(out.contains("Fake news"));
        assert!(out.contains("Disinformazione"));
    }

    #[test]
    fn run_json_output() {
        let spec = RunSpec {
            dataset: "fixture-fakenews-pl".into(),
            file: None,
            algorithm: "pagerank".into(),
            source: None,
            alpha: Some(0.85),
            k: None,
            sigma: None,
            solver: None,
            scheme: None,
            threads: None,
            precision: None,
            trace: false,
            top_k: None,
            top: 3,
            json: true,
        };
        let out = run_task(spec).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["algorithm"], "pagerank");
        assert_eq!(v["top"].as_array().unwrap().len(), 3);
    }

    #[test]
    fn run_any_scheme_for_every_stationary_algorithm() {
        // The acceptance scenario: --scheme gauss-seidel --threads N works
        // for the whole PageRank family, global and personalized.
        for algorithm in ["pagerank", "ppr", "cheirank", "pcheirank", "2drank", "p2drank"] {
            for scheme in ["power", "gauss-seidel", "parallel"] {
                let personalized =
                    AlgorithmRegistry::global().get(algorithm).unwrap().is_personalized();
                let spec = RunSpec {
                    dataset: "fixture-fakenews-it".into(),
                    file: None,
                    algorithm: algorithm.into(),
                    source: personalized.then(|| "Fake news".into()),
                    alpha: None,
                    k: None,
                    sigma: None,
                    solver: None,
                    scheme: Some(scheme.into()),
                    threads: Some(2),
                    precision: None,
                    trace: false,
                    top_k: None,
                    top: 3,
                    json: false,
                };
                let out = run_task(spec).unwrap_or_else(|e| panic!("{algorithm}/{scheme}: {e}"));
                assert!(out.contains("\n  1  "), "{algorithm}/{scheme}: {out}");
                if personalized {
                    assert!(out.contains("Fake news"), "{algorithm}/{scheme}: {out}");
                }
            }
        }
    }

    #[test]
    fn run_trace_prints_residuals() {
        let spec = RunSpec {
            dataset: "fixture-fakenews-pl".into(),
            file: None,
            algorithm: "pagerank".into(),
            source: None,
            alpha: None,
            k: None,
            sigma: None,
            solver: None,
            scheme: None,
            threads: None,
            precision: None,
            trace: true,
            top_k: None,
            top: 3,
            json: false,
        };
        let out = run_task(spec).unwrap();
        assert!(out.contains("residual trace:"), "{out}");
        assert!(out.contains("converged"), "{out}");
        assert!(out.contains("e-"), "trace prints scientific notation: {out}");
    }

    #[test]
    fn run_trace_with_approximate_solver_warns() {
        let spec = RunSpec {
            dataset: "fixture-fakenews-pl".into(),
            file: None,
            algorithm: "ppr".into(),
            source: Some("Fake news".into()),
            alpha: None,
            k: None,
            sigma: None,
            solver: Some("push".into()),
            scheme: None,
            threads: None,
            precision: None,
            trace: true,
            top_k: None,
            top: 3,
            json: false,
        };
        let out = run_task(spec).unwrap();
        assert!(!out.contains("residual trace:"), "{out}");
        assert!(out.contains("--trace has no effect"), "{out}");
    }

    #[test]
    fn run_rejects_bad_algorithm() {
        let spec = RunSpec {
            dataset: "fixture-fakenews-pl".into(),
            file: None,
            algorithm: "zerank".into(),
            source: None,
            alpha: None,
            k: None,
            sigma: None,
            solver: None,
            scheme: None,
            threads: None,
            precision: None,
            trace: false,
            top_k: None,
            top: 3,
            json: false,
        };
        assert!(run_task(spec).is_err());
    }

    #[test]
    fn batch_over_seed_list() {
        let out = batch(BatchSpecArgs {
            dataset: "fixture-enwiki-2018".into(),
            algorithm: "ppr".into(),
            seeds: "Freddie Mercury, Queen (band)".into(),
            alpha: None,
            scheme: None,
            threads: None,
            top: 3,
            top_k: None,
            json: false,
        })
        .unwrap();
        assert!(out.contains("2 seeds"), "{out}");
        assert!(out.contains("seed Freddie Mercury"), "{out}");
        assert!(out.contains("seed Queen (band)"), "{out}");
        assert!(out.contains("ms/seed amortized"), "{out}");
    }

    #[test]
    fn batch_over_seed_file_json() {
        let dir = std::env::temp_dir().join("relcli-batch-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seeds.txt");
        std::fs::write(&path, "# seed labels\nFreddie Mercury\n\nBrian May\n").unwrap();
        let out = batch(BatchSpecArgs {
            dataset: "fixture-enwiki-2018".into(),
            algorithm: "ppr".into(),
            seeds: format!("@{}", path.display()),
            alpha: None,
            scheme: None,
            threads: None,
            top: 3,
            top_k: None,
            json: true,
        })
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["seeds"], 2, "comments and blanks skipped");
        assert_eq!(v["results"].as_array().unwrap().len(), 2);
        assert_eq!(v["results"][1]["seed"], "Brian May");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_rejections() {
        let base = BatchSpecArgs {
            dataset: "fixture-enwiki-2018".into(),
            algorithm: "ppr".into(),
            seeds: ",".into(),
            alpha: None,
            scheme: None,
            threads: None,
            top: 3,
            top_k: None,
            json: false,
        };
        // Empty seed expansion.
        assert!(batch(base.clone()).is_err());
        // Missing seed file.
        assert!(batch(BatchSpecArgs { seeds: "@/no/such/file".into(), ..base.clone() }).is_err());
        // Global algorithm.
        let err = batch(BatchSpecArgs {
            algorithm: "pagerank".into(),
            seeds: "Freddie Mercury".into(),
            ..base.clone()
        })
        .unwrap_err();
        assert!(err.contains("global"), "{err}");
        // Unknown seed.
        assert!(batch(BatchSpecArgs { seeds: "No Such Page".into(), ..base }).is_err());
    }

    #[test]
    fn parse_edge_specs() {
        let e = parse_edge("A->B", true).unwrap();
        assert_eq!((e.source.as_str(), e.target.as_str(), e.weight), ("A", "B", None));
        let e = parse_edge("A->B:2.5", true).unwrap();
        assert_eq!(e.weight, Some(2.5));
        // Colons that are not weights stay part of the label.
        let e = parse_edge("A->re:invent", true).unwrap();
        assert_eq!(e.target, "re:invent");
        assert_eq!(e.weight, None);
        // Removals never parse weights.
        let e = parse_edge("A->B:2.5", false).unwrap();
        assert_eq!(e.target, "B:2.5");
        assert!(parse_edge("no-arrow", true).is_err());
        assert!(parse_edge("->B", true).is_err());
    }

    #[test]
    fn mutate_applies_and_reports_json() {
        // Bidirectional ring: unlabeled nodes, so numeric endpoints
        // resolve by index. +1 edge, -1 edge => edge count unchanged.
        let out = mutate(MutateSpec {
            dataset: "synthetic-ring".into(),
            add: vec!["5->500".into()],
            remove: vec!["0->1".into()],
            algorithm: None,
            source: None,
            top: 5,
            top_k: None,
            json: true,
        })
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["applied"], 2u64);
        assert_eq!(v["version"], 2u64);
        assert_eq!(v["nodes"], 1000u64);
        assert_eq!(v["edges"], 2000u64);
        assert!(v["top_before"].is_null(), "no query requested");
    }

    #[test]
    fn mutate_shows_before_and_after_ranking() {
        let out = mutate(MutateSpec {
            dataset: "fixture-fakenews-it".into(),
            add: vec!["Fake news->Brand New Page".into()],
            remove: vec![],
            algorithm: Some("ppr".into()),
            source: Some("Fake news".into()),
            top: 3,
            top_k: Some(3),
            json: false,
        })
        .unwrap();
        assert!(out.contains("graph version 2"), "{out}"); // node creation + insert
        assert!(out.contains("before | after"), "{out}");
        assert!(out.contains("invalidated"), "{out}");
        assert!(out.contains("Fake news"), "{out}");
    }

    #[test]
    fn mutate_rejections() {
        let base = MutateSpec {
            dataset: "fixture-fakenews-it".into(),
            add: vec![],
            remove: vec!["No Such Node->Fake news".into()],
            algorithm: None,
            source: None,
            top: 5,
            top_k: None,
            json: false,
        };
        let err = mutate(base.clone()).unwrap_err();
        assert!(err.contains("No Such Node"), "{err}");
        assert!(mutate(MutateSpec { dataset: "ghost".into(), ..base.clone() }).is_err());
        assert!(mutate(MutateSpec { add: vec!["broken".into()], ..base }).is_err());
    }

    /// Builds a durable data directory holding one mutated upload, via
    /// the same engine path the server uses.
    fn durable_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "relcli-store-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        let mut ex = Executor::new();
        ex.attach_persistence(std::sync::Arc::new(
            relengine::GraphPersistence::open(&dir).unwrap(),
        ));
        let mut b = relgraph::GraphBuilder::new();
        b.add_labeled_edge("a", "b");
        b.add_labeled_edge("b", "a");
        ex.register_graph("cli-net", b.build()).unwrap();
        ex.mutate_dataset(
            "cli-net",
            &[relengine::EdgeOp::Add(relengine::EdgeSpec {
                source: "b".into(),
                target: "c".into(),
                weight: Some(2.0),
            })],
        )
        .unwrap();
        dir
    }

    #[test]
    fn replay_prints_versions_and_digests() {
        let dir = durable_dir("replay");
        let out = replay(dir.to_str().unwrap(), false).unwrap();
        assert!(out.contains("cli-net"), "{out}");
        assert!(out.contains("DIGEST"), "{out}");
        assert!(out.contains("1 dataset(s) replayed"), "{out}");
        // Deterministic: a second replay prints the identical table.
        assert_eq!(out, replay(dir.to_str().unwrap(), false).unwrap());
        let json = replay(dir.to_str().unwrap(), true).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v[0]["dataset"], "cli-net");
        assert_eq!(v[0]["version"].as_u64(), Some(2)); // node "c" + edge b->c
        assert!(v[0]["digest"].as_str().unwrap().len() == 16);
        // An empty store replays to an empty table, not an error.
        std::fs::remove_dir_all(&dir).unwrap();
        let out = replay(dir.to_str().unwrap(), false).unwrap();
        assert!(out.contains("0 dataset(s) replayed"), "{out}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_verify_detects_corruption() {
        let dir = durable_dir("verify");
        let out = journal_verify(dir.to_str().unwrap(), false).unwrap();
        assert!(out.contains("cli-net"), "{out}");
        assert!(out.contains(" ok"), "{out}");
        // Flip one payload byte: the CRC check must flag the dataset and
        // the command must fail (non-zero exit in the binary).
        let journal = dir.join("cli-net").join("journal.log");
        let mut bytes = std::fs::read(&journal).unwrap();
        let mid = bytes.len() - 3;
        bytes[mid] ^= 0x40;
        std::fs::write(&journal, &bytes).unwrap();
        let err = journal_verify(dir.to_str().unwrap(), false).unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("journal verify failed for: cli-net"), "{err}");
        assert!(err.message.contains("DAMAGED"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_verify_distinguishes_missing_dir_and_empty_journal() {
        // Missing data directory: exit 3, and the directory is NOT
        // created as a side effect of the check.
        let dir = durable_dir("verify-missing");
        std::fs::remove_dir_all(&dir).unwrap();
        let err = journal_verify(dir.to_str().unwrap(), false).unwrap_err();
        assert_eq!(err.code, 3);
        assert!(err.message.contains("does not exist"), "{err}");
        assert!(!dir.exists(), "verify must not create the directory");
        // Empty (zero-length) journal next to a valid snapshot: clean
        // exit with an explicit note, distinct from damage.
        let dir = durable_dir("verify-empty");
        std::fs::write(dir.join("cli-net").join("journal.log"), b"").unwrap();
        let out = journal_verify(dir.to_str().unwrap(), false).unwrap();
        assert!(out.contains("ok (empty journal)"), "{out}");
        let json = journal_verify(dir.to_str().unwrap(), true).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v[0]["empty_journal"], true, "{json}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mutate_top_k_uses_certified_serving_path() {
        let out = mutate(MutateSpec {
            dataset: "fixture-fakenews-it".into(),
            add: vec!["Fake news->Another Page".into()],
            remove: vec![],
            algorithm: Some("cyclerank".into()),
            source: Some("Fake news".into()),
            top: 5,
            top_k: Some(2),
            json: true,
        })
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        // --top-k 2 caps both printouts at the two certified entries.
        assert_eq!(v["top_before"].as_array().unwrap().len(), 2, "{out}");
        assert_eq!(v["top_after"].as_array().unwrap().len(), 2, "{out}");
        assert_eq!(v["top_before"][0][0], "Fake news");
    }

    #[test]
    fn compare_produces_side_by_side_columns() {
        let out = compare(CompareSpec {
            dataset: "fixture-enwiki-2018".into(),
            source: "Freddie Mercury".into(),
            algorithms: vec!["pagerank".into(), "cyclerank".into(), "ppr".into()],
            top: 5,
        })
        .unwrap();
        // Table I shape: PR column has the hub, CR column has the band.
        assert!(out.contains("United States"));
        assert!(out.contains("Queen (band)"));
        assert!(out.contains("Comparison id"));
        assert_eq!(out.lines().filter(|l| l.starts_with(char::is_numeric)).count(), 5);
    }

    #[test]
    fn compare_datasets_table3_style() {
        let out = compare_datasets(CompareDatasetsSpec {
            datasets: vec!["fixture-fakenews-it".into(), "fixture-fakenews-pl".into()],
            source: "Fake news".into(),
            k: 3,
            top: 4,
        })
        .unwrap();
        assert!(out.contains("Disinformazione"));
        assert!(out.contains("Dezinformacja"));
        assert!(out.contains("K = 3"));
    }

    #[test]
    fn visualize_writes_dot() {
        let dir = std::env::temp_dir().join("relcli-viz-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("viz.dot");
        let msg =
            visualize("fixture-fakenews-it", "Fake news", 3, 6, out.to_str().unwrap()).unwrap();
        assert!(msg.contains("6 nodes"), "{msg}");
        let dot = std::fs::read_to_string(&out).unwrap();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("Disinformazione"));
        std::fs::remove_dir_all(&dir).ok();
        assert!(visualize("nope", "x", 3, 5, "/tmp/x.dot").is_err());
        assert!(visualize("fixture-fakenews-it", "Nope", 3, 5, "/tmp/x.dot").is_err());
    }

    #[test]
    fn convert_roundtrip() {
        let dir = std::env::temp_dir().join("relcli-convert-test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.csv");
        let output = dir.join("out.net");
        std::fs::write(&input, "0,1\n1,0\n").unwrap();
        let msg = convert(input.to_str().unwrap(), output.to_str().unwrap(), None).unwrap();
        assert!(msg.contains("2 nodes"));
        let back = relformats::load_graph(&output).unwrap();
        assert_eq!(back.edge_count(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
