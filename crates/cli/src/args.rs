//! Hand-rolled argument parsing (no external CLI dependency).

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The subcommand.
    pub command: Command,
}

/// Parameters of a single `run`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Dataset id (or a placeholder when `file` is given).
    pub dataset: String,
    /// Local graph file to upload-and-run instead of a registry dataset.
    pub file: Option<String>,
    /// Algorithm id (parsed by `relcore`).
    pub algorithm: String,
    /// Source label for personalized algorithms.
    pub source: Option<String>,
    /// Damping factor α.
    pub alpha: Option<f64>,
    /// Max cycle length K.
    pub k: Option<u32>,
    /// Scoring function name.
    pub sigma: Option<String>,
    /// PageRank-family solver name
    /// (power|gauss-seidel|parallel|push|monte-carlo).
    pub solver: Option<String>,
    /// Kernel update scheme (power|gauss-seidel|parallel); wins over
    /// `--solver` when both are given.
    pub scheme: Option<String>,
    /// Worker threads for the parallel scheme (0 = all cores).
    pub threads: Option<usize>,
    /// Score-lane precision for the exact kernel schemes (f64|f32).
    pub precision: Option<String>,
    /// Print the per-iteration residual trace.
    pub trace: bool,
    /// Top-k to print.
    pub top: usize,
    /// Top-k-only serving mode (`--top-k k`): compute only the k best
    /// entries (certified adaptive push / pruned heap-select) instead of
    /// the full ranking. Implies `top = k`.
    pub top_k: Option<usize>,
    /// Emit JSON instead of a table.
    pub json: bool,
}

/// Parameters of a `batch` run (one algorithm, many seeds).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSpecArgs {
    /// Dataset id.
    pub dataset: String,
    /// Algorithm id (must be personalized); default `ppr`.
    pub algorithm: String,
    /// Seeds: a comma-separated list, or `@path` to a file with one seed
    /// label per line. Labels containing commas require the `@path` form
    /// (the list form splits on every comma).
    pub seeds: String,
    /// Damping factor α.
    pub alpha: Option<f64>,
    /// Kernel update scheme (power|gauss-seidel|parallel).
    pub scheme: Option<String>,
    /// Worker threads (0 = all cores).
    pub threads: Option<usize>,
    /// Top-k per seed.
    pub top: usize,
    /// Top-k-only serving mode (`--top-k k`); implies `top = k`.
    pub top_k: Option<usize>,
    /// Emit JSON instead of tables.
    pub json: bool,
}

/// Parameters of `compare` (algorithm comparison use case).
#[derive(Debug, Clone, PartialEq)]
pub struct CompareSpec {
    /// Dataset id.
    pub dataset: String,
    /// Reference node label.
    pub source: String,
    /// Algorithms (comma-separated ids); default: pagerank,cyclerank,ppr
    /// as in Table I.
    pub algorithms: Vec<String>,
    /// Top-k rows.
    pub top: usize,
}

/// Parameters of `compare-datasets` (dataset comparison use case).
#[derive(Debug, Clone, PartialEq)]
pub struct CompareDatasetsSpec {
    /// Dataset ids.
    pub datasets: Vec<String>,
    /// Reference node label (same on each dataset, as in Table III).
    pub source: String,
    /// Max cycle length K.
    pub k: u32,
    /// Top-k rows.
    pub top: usize,
}

/// Parameters of `mutate` (dynamic edge updates).
#[derive(Debug, Clone, PartialEq)]
pub struct MutateSpec {
    /// Dataset id.
    pub dataset: String,
    /// Edges to insert/update: `SRC->DST` or `SRC->DST:WEIGHT`,
    /// comma-separated (labels containing commas are unsupported here,
    /// as in `batch --seeds`).
    pub add: Vec<String>,
    /// Edges to remove: `SRC->DST`, comma-separated.
    pub remove: Vec<String>,
    /// Optional algorithm to run before and after the mutation (shows the
    /// ranking impact of the edit).
    pub algorithm: Option<String>,
    /// Source label for the optional before/after query.
    pub source: Option<String>,
    /// Top-k rows of the before/after query.
    pub top: usize,
    /// Top-k-only serving mode for the before/after query (`--top-k k`):
    /// compute only the k best entries through the certified top-k path
    /// instead of the full ranking. Implies `top = k`.
    pub top_k: Option<usize>,
    /// Emit JSON instead of a table.
    pub json: bool,
}

/// All subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `list-datasets`.
    ListDatasets {
        /// Optional kind filter.
        kind: Option<String>,
    },
    /// `algorithms`.
    Algorithms,
    /// `stats`.
    Stats {
        /// Dataset id.
        dataset: String,
    },
    /// `run`.
    Run(RunSpec),
    /// `batch`.
    Batch(BatchSpecArgs),
    /// `mutate`.
    Mutate(MutateSpec),
    /// `compare`.
    Compare(CompareSpec),
    /// `compare-datasets`.
    CompareDatasets(CompareDatasetsSpec),
    /// `convert`.
    Convert {
        /// Input path.
        input: String,
        /// Output path.
        output: String,
        /// Output format name.
        format: Option<String>,
    },
    /// `visualize`.
    Visualize {
        /// Dataset id.
        dataset: String,
        /// Reference node label.
        source: String,
        /// Max cycle length K.
        k: u32,
        /// How many top nodes to include.
        top: usize,
        /// Output DOT path.
        output: String,
    },
    /// `serve`.
    Serve {
        /// Bind address.
        addr: String,
        /// Engine solver worker count (also sizes the serving pool's
        /// expensive-lane default).
        workers: usize,
        /// Admission-queue depth override (`--queue-depth`): accepted
        /// connections waiting for an HTTP worker before the acceptor
        /// sheds with 429.
        queue_depth: Option<usize>,
        /// Expensive-lane concurrency override (`--max-expensive`):
        /// simultaneous cold synchronous solves / mutations / uploads
        /// before that lane sheds with 429.
        max_expensive: Option<usize>,
        /// Durable data directory (`--data-dir`): recover persisted
        /// datasets on boot and journal every mutation while serving.
        data_dir: Option<String>,
    },
    /// `replay <dir>`: rebuild every dataset from its snapshot + journal
    /// and print per-dataset version/node/edge counts and a state digest.
    Replay {
        /// Data directory to replay.
        dir: String,
        /// Emit JSON instead of a table.
        json: bool,
    },
    /// `journal verify <dir>`: CRC + version-monotonicity check over
    /// every dataset's durable files; exits non-zero on any damage.
    JournalVerify {
        /// Data directory to verify.
        dir: String,
        /// Emit JSON instead of a table.
        json: bool,
    },
    /// `scenario run <file|dir>`: expand and execute fault-injection
    /// scenario files against the real engine, checking every step
    /// against the model oracle; exits non-zero when any expanded
    /// scenario violates an invariant.
    ScenarioRun {
        /// Scenario file or directory of `*.json` scenario documents.
        path: String,
        /// Expansion seed (`--seed`): same seed, same fault variants,
        /// same outcome.
        seed: u64,
        /// Fault variants derived per expanded base scenario
        /// (`--variants`).
        variants: usize,
        /// Cap on expanded scenarios actually run (`--max`); absent runs
        /// the full expansion.
        max: Option<usize>,
        /// Directory to dump shrunk replayable repros of failures into
        /// (`--dump-dir`).
        dump_dir: Option<String>,
        /// Skip shrinking failures (`--no-shrink`): report faster,
        /// larger repros.
        no_shrink: bool,
        /// Emit JSON instead of a table.
        json: bool,
    },
    /// `lint [root]`: run the project's static-analysis rules
    /// (`rellint`) over the workspace; exits non-zero on any finding
    /// outside the committed baseline.
    Lint {
        /// Workspace root to lint (default: current directory).
        root: String,
        /// Baseline file of frozen findings (`--baseline`); default:
        /// `<root>/rellint.baseline` when that file exists.
        baseline: Option<String>,
        /// Emit the JSON report instead of text.
        json: bool,
    },
}

/// Collects `--key value` pairs and bare flags from an argument list.
struct Flags {
    pairs: std::collections::HashMap<String, String>,
    switches: Vec<String>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut pairs = std::collections::HashMap::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            let key = a
                .strip_prefix("--")
                .ok_or_else(|| format!("unexpected argument {a:?} (expected --flag)"))?;
            // Bare switches take no value.
            if key == "json" || key == "trace" || key == "no-shrink" {
                switches.push(key.to_string());
                i += 1;
                continue;
            }
            let value = args.get(i + 1).ok_or_else(|| format!("flag --{key} needs a value"))?;
            pairs.insert(key.to_string(), value.clone());
            i += 2;
        }
        Ok(Flags { pairs, switches })
    }

    fn take(&mut self, key: &str) -> Option<String> {
        self.pairs.remove(key)
    }

    fn require(&mut self, key: &str) -> Result<String, String> {
        self.take(key).ok_or_else(|| format!("missing required flag --{key}"))
    }

    fn has_switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    fn finish(self) -> Result<(), String> {
        if let Some(k) = self.pairs.keys().next() {
            return Err(format!("unknown flag --{k}"));
        }
        Ok(())
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad {what}: {s:?}"))
}

/// Parses a full argument vector (without the program name).
pub fn parse_args(args: &[String]) -> Result<Cli, String> {
    let (cmd, mut rest) = args.split_first().ok_or_else(usage)?;
    let mut cmd = cmd.as_str();
    // `journal` is a command group: fold `journal verify` into one name.
    if cmd == "journal" {
        match rest.split_first() {
            Some((sub, tail)) if sub == "verify" => {
                cmd = "journal-verify";
                rest = tail;
            }
            _ => return Err("journal needs a subcommand: journal verify <dir>".into()),
        }
    }
    // `scenario` is a command group: fold `scenario run` into one name.
    if cmd == "scenario" {
        match rest.split_first() {
            Some((sub, tail)) if sub == "run" => {
                cmd = "scenario-run";
                rest = tail;
            }
            _ => return Err("scenario needs a subcommand: scenario run <file|dir>".into()),
        }
    }
    // `replay <dir>` / `journal verify <dir>` / `scenario run <path>` take
    // a positional path; peel it off before flag parsing (which accepts
    // only `--flag` tokens).
    let mut positional = None;
    if matches!(cmd, "replay" | "journal-verify" | "scenario-run" | "lint") {
        if let Some((first, tail)) = rest.split_first() {
            if !first.starts_with("--") {
                positional = Some(first.clone());
                rest = tail;
            }
        }
    }
    let mut flags = Flags::parse(rest)?;
    let command = match cmd {
        "list-datasets" => {
            let kind = flags.take("kind");
            flags.finish()?;
            Command::ListDatasets { kind }
        }
        "algorithms" => {
            flags.finish()?;
            Command::Algorithms
        }
        "stats" => {
            let dataset = flags.require("dataset")?;
            flags.finish()?;
            Command::Stats { dataset }
        }
        "run" => {
            let file = flags.take("file");
            let dataset = match (&file, flags.take("dataset")) {
                (_, Some(d)) => d,
                (Some(_), None) => "uploaded-file".to_string(),
                (None, None) => return Err("missing required flag --dataset (or --file)".into()),
            };
            let spec = RunSpec {
                dataset,
                file,
                algorithm: flags.require("algorithm")?,
                source: flags.take("source"),
                alpha: flags.take("alpha").map(|v| parse_num(&v, "alpha")).transpose()?,
                k: flags.take("k").map(|v| parse_num(&v, "k")).transpose()?,
                sigma: flags.take("sigma"),
                solver: flags.take("solver"),
                scheme: flags.take("scheme"),
                threads: flags.take("threads").map(|v| parse_num(&v, "threads")).transpose()?,
                precision: flags.take("precision"),
                trace: flags.has_switch("trace"),
                top: flags.take("top").map(|v| parse_num(&v, "top")).transpose()?.unwrap_or(5),
                top_k: flags.take("top-k").map(|v| parse_num(&v, "top-k")).transpose()?,
                json: flags.has_switch("json"),
            };
            flags.finish()?;
            Command::Run(spec)
        }
        "batch" => {
            let spec = BatchSpecArgs {
                dataset: flags.require("dataset")?,
                algorithm: flags.take("algorithm").unwrap_or_else(|| "ppr".into()),
                seeds: flags.require("seeds")?,
                alpha: flags.take("alpha").map(|v| parse_num(&v, "alpha")).transpose()?,
                scheme: flags.take("scheme"),
                threads: flags.take("threads").map(|v| parse_num(&v, "threads")).transpose()?,
                top: flags.take("top").map(|v| parse_num(&v, "top")).transpose()?.unwrap_or(5),
                top_k: flags.take("top-k").map(|v| parse_num(&v, "top-k")).transpose()?,
                json: flags.has_switch("json"),
            };
            flags.finish()?;
            Command::Batch(spec)
        }
        "mutate" => {
            let split = |v: String| -> Vec<String> {
                v.split(',').map(str::trim).filter(|s| !s.is_empty()).map(str::to_string).collect()
            };
            let spec = MutateSpec {
                dataset: flags.require("dataset")?,
                add: flags.take("add").map(split).unwrap_or_default(),
                remove: flags.take("remove").map(split).unwrap_or_default(),
                algorithm: flags.take("algorithm"),
                source: flags.take("source"),
                top: flags.take("top").map(|v| parse_num(&v, "top")).transpose()?.unwrap_or(5),
                top_k: flags.take("top-k").map(|v| parse_num(&v, "top-k")).transpose()?,
                json: flags.has_switch("json"),
            };
            if spec.add.is_empty() && spec.remove.is_empty() {
                return Err("mutate needs --add and/or --remove (e.g. --add \"A->B,B->C\")".into());
            }
            // A source without an algorithm would be silently ignored —
            // reject instead so a forgotten --algorithm doesn't skip the
            // requested before/after ranking.
            if spec.algorithm.is_none() && spec.source.is_some() {
                return Err(
                    "mutate --source needs --algorithm (the before/after query to run)".into()
                );
            }
            // Same deal for --top-k: it shapes the before/after query.
            if spec.algorithm.is_none() && spec.top_k.is_some() {
                return Err(
                    "mutate --top-k needs --algorithm (the before/after query to run)".into()
                );
            }
            flags.finish()?;
            Command::Mutate(spec)
        }
        "compare" => {
            let spec = CompareSpec {
                dataset: flags.require("dataset")?,
                source: flags.require("source")?,
                algorithms: flags
                    .take("algorithms")
                    .map(|v| v.split(',').map(str::to_string).collect())
                    .unwrap_or_else(|| vec!["pagerank".into(), "cyclerank".into(), "ppr".into()]),
                top: flags.take("top").map(|v| parse_num(&v, "top")).transpose()?.unwrap_or(5),
            };
            flags.finish()?;
            Command::Compare(spec)
        }
        "compare-datasets" => {
            let spec = CompareDatasetsSpec {
                datasets: flags.require("datasets")?.split(',').map(str::to_string).collect(),
                source: flags.require("source")?,
                k: flags.take("k").map(|v| parse_num(&v, "k")).transpose()?.unwrap_or(3),
                top: flags.take("top").map(|v| parse_num(&v, "top")).transpose()?.unwrap_or(5),
            };
            flags.finish()?;
            Command::CompareDatasets(spec)
        }
        "convert" => {
            let input = flags.require("input")?;
            let output = flags.require("output")?;
            let format = flags.take("format");
            flags.finish()?;
            Command::Convert { input, output, format }
        }
        "visualize" => {
            let cmd = Command::Visualize {
                dataset: flags.require("dataset")?,
                source: flags.require("source")?,
                k: flags.take("k").map(|v| parse_num(&v, "k")).transpose()?.unwrap_or(3),
                top: flags.take("top").map(|v| parse_num(&v, "top")).transpose()?.unwrap_or(15),
                output: flags.take("output").unwrap_or_else(|| "relevance.dot".into()),
            };
            flags.finish()?;
            cmd
        }
        "serve" => {
            let addr = flags.take("addr").unwrap_or_else(|| "127.0.0.1:8080".into());
            let workers =
                flags.take("workers").map(|v| parse_num(&v, "workers")).transpose()?.unwrap_or(4);
            let queue_depth =
                flags.take("queue-depth").map(|v| parse_num(&v, "queue-depth")).transpose()?;
            let max_expensive =
                flags.take("max-expensive").map(|v| parse_num(&v, "max-expensive")).transpose()?;
            let data_dir = flags.take("data-dir");
            flags.finish()?;
            Command::Serve { addr, workers, queue_depth, max_expensive, data_dir }
        }
        "replay" => {
            let dir = match positional.or_else(|| flags.take("dir")) {
                Some(d) => d,
                None => return Err("replay needs a data directory: replay <dir>".into()),
            };
            let json = flags.has_switch("json");
            flags.finish()?;
            Command::Replay { dir, json }
        }
        "journal-verify" => {
            let dir = match positional.or_else(|| flags.take("dir")) {
                Some(d) => d,
                None => {
                    return Err("journal verify needs a data directory: journal verify <dir>".into())
                }
            };
            let json = flags.has_switch("json");
            flags.finish()?;
            Command::JournalVerify { dir, json }
        }
        "scenario-run" => {
            let path = match positional.or_else(|| flags.take("path")) {
                Some(p) => p,
                None => return Err("scenario run needs a path: scenario run <file|dir>".into()),
            };
            let seed = match flags.take("seed") {
                Some(s) => parse_num(&s, "seed")?,
                None => 0,
            };
            let variants = match flags.take("variants") {
                Some(s) => parse_num(&s, "variants")?,
                None => 4,
            };
            let max = match flags.take("max") {
                Some(s) => Some(parse_num(&s, "max")?),
                None => None,
            };
            let dump_dir = flags.take("dump-dir");
            let no_shrink = flags.has_switch("no-shrink");
            let json = flags.has_switch("json");
            flags.finish()?;
            Command::ScenarioRun { path, seed, variants, max, dump_dir, no_shrink, json }
        }
        "lint" => {
            let root = positional.or_else(|| flags.take("root")).unwrap_or_else(|| ".".into());
            let baseline = flags.take("baseline");
            let json = flags.has_switch("json");
            flags.finish()?;
            Command::Lint { root, baseline, json }
        }
        other => return Err(format!("unknown command {other:?}\n{}", usage())),
    };
    Ok(Cli { command })
}

/// Usage text.
pub fn usage() -> String {
    "usage: relrank <command> [flags]\n\
     commands: list-datasets, algorithms, stats, run, batch, mutate, compare, compare-datasets, convert, visualize, serve, replay, journal verify, scenario run, lint\n\
     see crate docs for per-command flags"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Cli, String> {
        let args: Vec<String> = s.split_whitespace().map(str::to_string).collect();
        parse_args(&args)
    }

    #[test]
    fn list_datasets_with_filter() {
        let cli = parse("list-datasets --kind wikipedia").unwrap();
        assert_eq!(cli.command, Command::ListDatasets { kind: Some("wikipedia".into()) });
        let cli = parse("list-datasets").unwrap();
        assert_eq!(cli.command, Command::ListDatasets { kind: None });
    }

    #[test]
    fn run_full_flags() {
        let cli =
            parse("run --dataset wiki-en-2018 --algorithm cyclerank --source Pasta --k 4 --sigma exp --top 10 --json")
                .unwrap();
        match cli.command {
            Command::Run(s) => {
                assert_eq!(s.dataset, "wiki-en-2018");
                assert_eq!(s.algorithm, "cyclerank");
                assert_eq!(s.source.as_deref(), Some("Pasta"));
                assert_eq!(s.k, Some(4));
                assert_eq!(s.sigma.as_deref(), Some("exp"));
                assert_eq!(s.top, 10);
                assert!(s.json);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn run_with_file() {
        let cli = parse("run --file g.csv --algorithm pagerank").unwrap();
        match cli.command {
            Command::Run(s) => {
                assert_eq!(s.file.as_deref(), Some("g.csv"));
                assert_eq!(s.dataset, "uploaded-file");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn run_defaults() {
        let cli = parse("run --dataset d --algorithm pagerank").unwrap();
        match cli.command {
            Command::Run(s) => {
                assert_eq!(s.top, 5);
                assert!(!s.json);
                assert!(s.alpha.is_none());
                assert!(s.scheme.is_none());
                assert!(s.threads.is_none());
                assert!(s.top_k.is_none());
                assert!(!s.trace);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn run_scheme_and_threads() {
        let cli =
            parse("run --dataset d --algorithm cheirank --scheme gauss-seidel --threads 4 --trace")
                .unwrap();
        match cli.command {
            Command::Run(s) => {
                assert_eq!(s.scheme.as_deref(), Some("gauss-seidel"));
                assert_eq!(s.threads, Some(4));
                assert!(s.trace);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse("run --dataset d --algorithm pr --threads many").is_err());
    }

    #[test]
    fn precision_flag() {
        let cli = parse("run --dataset d --algorithm pagerank --precision f32").unwrap();
        match cli.command {
            Command::Run(s) => assert_eq!(s.precision.as_deref(), Some("f32")),
            other => panic!("unexpected {other:?}"),
        }
        let cli = parse("run --dataset d --algorithm pagerank").unwrap();
        match cli.command {
            Command::Run(s) => assert!(s.precision.is_none()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn top_k_serving_flag() {
        let cli = parse("run --dataset d --algorithm ppr --source X --top-k 10").unwrap();
        match cli.command {
            Command::Run(s) => assert_eq!(s.top_k, Some(10)),
            other => panic!("unexpected {other:?}"),
        }
        let cli = parse("batch --dataset d --seeds A,B --top-k 3").unwrap();
        match cli.command {
            Command::Batch(b) => assert_eq!(b.top_k, Some(3)),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse("run --dataset d --algorithm ppr --top-k lots").is_err());
    }

    #[test]
    fn batch_parses_with_defaults() {
        let cli = parse("batch --dataset d --seeds A,B,C").unwrap();
        match cli.command {
            Command::Batch(b) => {
                assert_eq!(b.dataset, "d");
                assert_eq!(b.algorithm, "ppr");
                assert_eq!(b.seeds, "A,B,C");
                assert_eq!(b.top, 5);
                assert!(!b.json);
            }
            other => panic!("unexpected {other:?}"),
        }
        let cli = parse(
            "batch --dataset d --algorithm pcheirank --seeds @seeds.txt --alpha 0.5 \
             --scheme parallel --threads 4 --top 3 --json",
        )
        .unwrap();
        match cli.command {
            Command::Batch(b) => {
                assert_eq!(b.algorithm, "pcheirank");
                assert_eq!(b.seeds, "@seeds.txt");
                assert_eq!(b.alpha, Some(0.5));
                assert_eq!(b.threads, Some(4));
                assert!(b.json);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Seeds are required.
        assert!(parse("batch --dataset d").is_err());
    }

    #[test]
    fn mutate_parses_edge_lists() {
        let cli = parse(
            "mutate --dataset d --add A->B,B->C:2.5 --remove C->A --algorithm ppr --source A",
        )
        .unwrap();
        match cli.command {
            Command::Mutate(m) => {
                assert_eq!(m.dataset, "d");
                assert_eq!(m.add, vec!["A->B", "B->C:2.5"]);
                assert_eq!(m.remove, vec!["C->A"]);
                assert_eq!(m.algorithm.as_deref(), Some("ppr"));
                assert_eq!(m.source.as_deref(), Some("A"));
                assert_eq!(m.top, 5);
                assert!(!m.json);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Add-only and remove-only both parse; neither is an error.
        assert!(parse("mutate --dataset d --add A->B").is_ok());
        assert!(parse("mutate --dataset d --remove A->B --json").is_ok());
        // No edges at all is rejected.
        assert!(parse("mutate --dataset d").is_err());
        assert!(parse("mutate --add A->B").is_err(), "dataset required");
        // A source without an algorithm would silently skip the requested
        // before/after ranking: rejected.
        assert!(parse("mutate --dataset d --add A->B --source A").is_err());
    }

    #[test]
    fn compare_default_algorithms_match_table1() {
        let cli = parse("compare --dataset d --source X").unwrap();
        match cli.command {
            Command::Compare(c) => {
                assert_eq!(c.algorithms, vec!["pagerank", "cyclerank", "ppr"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn compare_datasets_splits_ids() {
        let cli = parse("compare-datasets --datasets a,b,c --source Fake-news --k 3").unwrap();
        match cli.command {
            Command::CompareDatasets(c) => {
                assert_eq!(c.datasets, vec!["a", "b", "c"]);
                assert_eq!(c.k, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn visualize_parses() {
        let cli = parse("visualize --dataset d --source X --top 8 --output o.dot").unwrap();
        match cli.command {
            Command::Visualize { dataset, source, k, top, output } => {
                assert_eq!(dataset, "d");
                assert_eq!(source, "X");
                assert_eq!(k, 3);
                assert_eq!(top, 8);
                assert_eq!(output, "o.dot");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse("visualize --dataset d").is_err());
    }

    #[test]
    fn serve_defaults() {
        let cli = parse("serve").unwrap();
        assert_eq!(
            cli.command,
            Command::Serve {
                addr: "127.0.0.1:8080".into(),
                workers: 4,
                queue_depth: None,
                max_expensive: None,
                data_dir: None
            }
        );
        let cli = parse("serve --data-dir /tmp/relrank-data").unwrap();
        assert_eq!(
            cli.command,
            Command::Serve {
                addr: "127.0.0.1:8080".into(),
                workers: 4,
                queue_depth: None,
                max_expensive: None,
                data_dir: Some("/tmp/relrank-data".into())
            }
        );
    }

    #[test]
    fn serve_admission_flags() {
        let cli = parse("serve --workers 2 --queue-depth 16 --max-expensive 1").unwrap();
        assert_eq!(
            cli.command,
            Command::Serve {
                addr: "127.0.0.1:8080".into(),
                workers: 2,
                queue_depth: Some(16),
                max_expensive: Some(1),
                data_dir: None
            }
        );
        assert!(parse("serve --queue-depth deep").is_err());
        assert!(parse("serve --max-expensive all").is_err());
    }

    #[test]
    fn replay_takes_positional_dir() {
        let cli = parse("replay /tmp/data").unwrap();
        assert_eq!(cli.command, Command::Replay { dir: "/tmp/data".into(), json: false });
        let cli = parse("replay --dir /tmp/data --json").unwrap();
        assert_eq!(cli.command, Command::Replay { dir: "/tmp/data".into(), json: true });
        assert!(parse("replay").is_err());
        assert!(parse("replay /tmp/data --bogus v").is_err());
    }

    #[test]
    fn journal_verify_is_a_subcommand() {
        let cli = parse("journal verify /tmp/data").unwrap();
        assert_eq!(cli.command, Command::JournalVerify { dir: "/tmp/data".into(), json: false });
        let cli = parse("journal verify --dir /tmp/data --json").unwrap();
        assert_eq!(cli.command, Command::JournalVerify { dir: "/tmp/data".into(), json: true });
        assert!(parse("journal").is_err());
        assert!(parse("journal frobnicate /tmp/data").is_err());
        assert!(parse("journal verify").is_err());
    }

    #[test]
    fn scenario_run_is_a_subcommand() {
        let cli = parse("scenario run scenarios/robustness.json").unwrap();
        assert_eq!(
            cli.command,
            Command::ScenarioRun {
                path: "scenarios/robustness.json".into(),
                seed: 0,
                variants: 4,
                max: None,
                dump_dir: None,
                no_shrink: false,
                json: false,
            }
        );
        let cli = parse(
            "scenario run scenarios --seed 9 --variants 2 --max 240 \
             --dump-dir /tmp/repros --no-shrink --json",
        )
        .unwrap();
        assert_eq!(
            cli.command,
            Command::ScenarioRun {
                path: "scenarios".into(),
                seed: 9,
                variants: 2,
                max: Some(240),
                dump_dir: Some("/tmp/repros".into()),
                no_shrink: true,
                json: true,
            }
        );
        assert!(parse("scenario").is_err());
        assert!(parse("scenario walk x").is_err());
        assert!(parse("scenario run").is_err());
        assert!(parse("scenario run p --seed nope").is_err());
    }

    #[test]
    fn mutate_top_k_serving_flag() {
        let cli =
            parse("mutate --dataset d --add A->B --algorithm ppr --source A --top-k 3").unwrap();
        match cli.command {
            Command::Mutate(m) => assert_eq!(m.top_k, Some(3)),
            other => panic!("unexpected {other:?}"),
        }
        // --top-k without the before/after query would be dead weight.
        assert!(parse("mutate --dataset d --add A->B --top-k 3").is_err());
    }

    #[test]
    fn lint_parses_root_baseline_and_json() {
        let cli = parse("lint").unwrap();
        assert_eq!(cli.command, Command::Lint { root: ".".into(), baseline: None, json: false });
        let cli = parse("lint /work/repo --baseline debt.tsv --json").unwrap();
        assert_eq!(
            cli.command,
            Command::Lint {
                root: "/work/repo".into(),
                baseline: Some("debt.tsv".into()),
                json: true,
            }
        );
        assert!(parse("lint . --bogus v").is_err());
    }

    #[test]
    fn errors() {
        assert!(parse("").is_err());
        assert!(parse("frobnicate").is_err());
        assert!(parse("run --algorithm x").is_err()); // missing dataset
        assert!(parse("run --dataset d --algorithm a --top nope").is_err());
        assert!(parse("stats").is_err());
        assert!(parse("stats --dataset d --bogus v").is_err());
        assert!(parse("run --dataset").is_err()); // dangling value
        assert!(parse("convert --input a").is_err());
    }
}
