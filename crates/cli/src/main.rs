//! `relrank` — the command-line front-end of the CycleRank demo platform.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match relcli::parse_args(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    match relcli::run(cli) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.code);
        }
    }
}
