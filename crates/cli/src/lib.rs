//! # relcli — command-line front-end for the CycleRank demo platform
//!
//! Stands in for the paper's Web UI: every interaction the browser
//! performs (pick a dataset, pick an algorithm and parameters, submit,
//! compare results side by side) has a subcommand here.
//!
//! ```text
//! relrank list-datasets [--kind wikipedia|amazon|twitter|fixture|synthetic]
//! relrank algorithms
//! relrank stats --dataset <id>
//! relrank run --dataset <id> --algorithm <algo> [--source <label>]
//!             [--alpha <f>] [--k <n>] [--sigma exp|lin|quad|const]
//!             [--top <n>] [--json]
//! relrank batch --dataset <id> --seeds <a,b,c | @file>
//!               [--algorithm ppr] [--alpha <f>] [--scheme <s>]
//!               [--threads <n>] [--top <n>] [--json]
//! relrank mutate --dataset <id> [--add "A->B,B->C:2.5"] [--remove "C->A"]
//!                [--algorithm ppr --source <label> --top <n> --top-k <k>]
//!                [--json]
//! relrank compare --dataset <id> --source <label>
//!                 [--algorithms pagerank,cyclerank,ppr] [--top <n>]
//! relrank compare-datasets --datasets <id,id,...> --source <label>
//!                          [--k <n>] [--top <n>]
//! relrank convert --input <file> --output <file> --format csv|pajek|asd
//! relrank serve [--addr 127.0.0.1:8080] [--workers <n>] [--queue-depth <n>]
//!               [--max-expensive <n>] [--data-dir <dir>]
//! relrank replay <dir> [--json]
//! relrank journal verify <dir> [--json]
//! ```

pub mod args;
pub mod commands;

pub use args::{parse_args, Cli, Command};

/// Runs a parsed command, writing human output to the returned string.
pub fn run(cli: Cli) -> Result<String, String> {
    match cli.command {
        Command::ListDatasets { kind } => commands::list_datasets(kind.as_deref()),
        Command::Algorithms => Ok(commands::algorithms()),
        Command::Stats { dataset } => commands::stats(&dataset),
        Command::Run(spec) => commands::run_task(spec),
        Command::Batch(spec) => commands::batch(spec),
        Command::Mutate(spec) => commands::mutate(spec),
        Command::Compare(c) => commands::compare(c),
        Command::CompareDatasets(c) => commands::compare_datasets(c),
        Command::Convert { input, output, format } => {
            commands::convert(&input, &output, format.as_deref())
        }
        Command::Visualize { dataset, source, k, top, output } => {
            commands::visualize(&dataset, &source, k, top, &output)
        }
        Command::Serve { addr, workers, queue_depth, max_expensive, data_dir } => commands::serve(
            &addr,
            workers,
            commands::ServeLimits { queue_depth, max_expensive },
            data_dir.as_deref(),
        ),
        Command::Replay { dir, json } => commands::replay(&dir, json),
        Command::JournalVerify { dir, json } => commands::journal_verify(&dir, json),
    }
}
