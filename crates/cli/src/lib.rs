//! # relcli — command-line front-end for the CycleRank demo platform
//!
//! Stands in for the paper's Web UI: every interaction the browser
//! performs (pick a dataset, pick an algorithm and parameters, submit,
//! compare results side by side) has a subcommand here.
//!
//! ```text
//! relrank list-datasets [--kind wikipedia|amazon|twitter|fixture|synthetic]
//! relrank algorithms
//! relrank stats --dataset <id>
//! relrank run --dataset <id> --algorithm <algo> [--source <label>]
//!             [--alpha <f>] [--k <n>] [--sigma exp|lin|quad|const]
//!             [--top <n>] [--json]
//! relrank batch --dataset <id> --seeds <a,b,c | @file>
//!               [--algorithm ppr] [--alpha <f>] [--scheme <s>]
//!               [--threads <n>] [--top <n>] [--json]
//! relrank mutate --dataset <id> [--add "A->B,B->C:2.5"] [--remove "C->A"]
//!                [--algorithm ppr --source <label> --top <n> --top-k <k>]
//!                [--json]
//! relrank compare --dataset <id> --source <label>
//!                 [--algorithms pagerank,cyclerank,ppr] [--top <n>]
//! relrank compare-datasets --datasets <id,id,...> --source <label>
//!                          [--k <n>] [--top <n>]
//! relrank convert --input <file> --output <file> --format csv|pajek|asd
//! relrank serve [--addr 127.0.0.1:8080] [--workers <n>] [--queue-depth <n>]
//!               [--max-expensive <n>] [--data-dir <dir>]
//! relrank replay <dir> [--json]
//! relrank journal verify <dir> [--json]
//! relrank scenario run <file|dir> [--seed <n>] [--variants <n>] [--max <n>]
//!                      [--dump-dir <dir>] [--no-shrink] [--json]
//! relrank lint [root] [--baseline <file>] [--json]
//! ```
//!
//! ## Exit codes
//!
//! `0` success (including a clean data directory with empty journals),
//! `1` command failure (damaged journal, failed scenario, engine error),
//! `2` bad arguments, `3` a path the command needs does not exist
//! (e.g. `journal verify` on a missing data directory).

pub mod args;
pub mod commands;

pub use args::{parse_args, Cli, Command};

/// A command failure with its process exit code.
#[derive(Debug, Clone, PartialEq)]
pub struct CliError {
    /// Process exit code (`1` generic failure, `3` missing path).
    pub code: i32,
    /// Message printed to stderr.
    pub message: String,
}

impl CliError {
    /// A failure exiting with `code`.
    pub fn with_code(code: i32, message: impl Into<String>) -> CliError {
        CliError { code, message: message.into() }
    }
}

impl From<String> for CliError {
    fn from(message: String) -> CliError {
        CliError { code: 1, message }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runs a parsed command, writing human output to the returned string.
pub fn run(cli: Cli) -> Result<String, CliError> {
    match cli.command {
        Command::ListDatasets { kind } => commands::list_datasets(kind.as_deref()).map_err(into),
        Command::Algorithms => Ok(commands::algorithms()),
        Command::Stats { dataset } => commands::stats(&dataset).map_err(into),
        Command::Run(spec) => commands::run_task(spec).map_err(into),
        Command::Batch(spec) => commands::batch(spec).map_err(into),
        Command::Mutate(spec) => commands::mutate(spec).map_err(into),
        Command::Compare(c) => commands::compare(c).map_err(into),
        Command::CompareDatasets(c) => commands::compare_datasets(c).map_err(into),
        Command::Convert { input, output, format } => {
            commands::convert(&input, &output, format.as_deref()).map_err(into)
        }
        Command::Visualize { dataset, source, k, top, output } => {
            commands::visualize(&dataset, &source, k, top, &output).map_err(into)
        }
        Command::Serve { addr, workers, queue_depth, max_expensive, data_dir } => commands::serve(
            &addr,
            workers,
            commands::ServeLimits { queue_depth, max_expensive },
            data_dir.as_deref(),
        )
        .map_err(into),
        Command::Replay { dir, json } => commands::replay(&dir, json).map_err(into),
        Command::JournalVerify { dir, json } => commands::journal_verify(&dir, json),
        Command::ScenarioRun { path, seed, variants, max, dump_dir, no_shrink, json } => {
            commands::scenario_run(
                &path,
                commands::ScenarioRunOptions { seed, variants, max, dump_dir, no_shrink, json },
            )
        }
        Command::Lint { root, baseline, json } => commands::lint(&root, baseline.as_deref(), json),
    }
}

fn into(message: String) -> CliError {
    CliError::from(message)
}
