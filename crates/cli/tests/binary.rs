//! End-to-end tests of the `relrank` binary itself (spawned as a process,
//! exactly as a user would run it).

use std::process::Command;

fn relrank(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_relrank")).args(args).output().expect("binary runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn no_args_prints_usage_and_exits_2() {
    let (code, _, stderr) = relrank(&[]);
    assert_eq!(code, 2);
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn unknown_command_exits_2() {
    let (code, _, stderr) = relrank(&["frobnicate"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn list_datasets_prints_catalog() {
    let (code, stdout, _) = relrank(&["list-datasets"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("50 datasets"));
    assert!(stdout.contains("wiki-en-2018"));
}

#[test]
fn algorithms_lists_cyclerank() {
    let (code, stdout, _) = relrank(&["algorithms"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("cyclerank"));
    assert!(stdout.contains("ranking only"));
}

#[test]
fn run_cyclerank_on_fixture() {
    let (code, stdout, _) = relrank(&[
        "run",
        "--dataset",
        "fixture-fakenews-pl",
        "--algorithm",
        "cyclerank",
        "--source",
        "Fake news",
        "--top",
        "4",
    ]);
    assert_eq!(code, 0);
    assert!(stdout.contains("Dezinformacja"), "{stdout}");
    assert!(stdout.contains("cycles found"));
}

#[test]
fn run_json_output_parses() {
    let (code, stdout, _) = relrank(&[
        "run",
        "--dataset",
        "fixture-fakenews-pl",
        "--algorithm",
        "pagerank",
        "--top",
        "3",
        "--json",
    ]);
    assert_eq!(code, 0);
    let v: serde_json::Value = serde_json::from_str(&stdout).expect("valid JSON");
    assert_eq!(v["algorithm"], "pagerank");
}

#[test]
fn run_scheme_threads_and_trace_flags() {
    // The solver-layer surface: pick a kernel scheme and thread count from
    // the command line, and ask for the residual trace.
    let (code, stdout, stderr) = relrank(&[
        "run",
        "--dataset",
        "fixture-fakenews-pl",
        "--algorithm",
        "cheirank",
        "--scheme",
        "gauss-seidel",
        "--threads",
        "2",
        "--trace",
        "--top",
        "3",
    ]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains("residual trace:"), "{stdout}");
    assert!(stdout.contains("converged"), "{stdout}");

    // The JSON shape carries the convergence fields.
    let (code, stdout, _) = relrank(&[
        "run",
        "--dataset",
        "fixture-fakenews-pl",
        "--algorithm",
        "2drank",
        "--scheme",
        "parallel",
        "--threads",
        "2",
        "--json",
    ]);
    assert_eq!(code, 0);
    let v: serde_json::Value = serde_json::from_str(&stdout).expect("valid JSON");
    assert_eq!(v["algorithm"], "2drank");

    // Unknown schemes fail cleanly.
    let (code, _, stderr) =
        relrank(&["run", "--dataset", "d", "--algorithm", "pr", "--scheme", "quantum"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("unknown scheme"), "{stderr}");
}

#[test]
fn runtime_error_exits_1() {
    let (code, _, stderr) =
        relrank(&["run", "--dataset", "no-such-dataset", "--algorithm", "pagerank"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("error"), "{stderr}");
}

#[test]
fn mutate_replay_and_journal_verify_round_trip() {
    let dir = std::env::temp_dir().join(format!("relrank-bin-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_str().unwrap();

    // Seed durable state through the library (the binary has no offline
    // command that journals a registry dataset — mutate is in-process).
    {
        let mut ex = relengine::Executor::new();
        ex.attach_persistence(std::sync::Arc::new(
            relengine::GraphPersistence::open(&dir).unwrap(),
        ));
        ex.mutate_dataset(
            "fixture-fakenews-it",
            &[relengine::EdgeOp::Add(relengine::EdgeSpec {
                source: "Fake news".into(),
                target: "Fresh Page".into(),
                weight: Some(1.5),
            })],
        )
        .unwrap();
    }

    // `relrank replay <dir>` prints the recovered state, deterministically.
    let (code, first, stderr) = relrank(&["replay", dir_s]);
    assert_eq!(code, 0, "{stderr}");
    assert!(first.contains("fixture-fakenews-it"), "{first}");
    let (code, second, _) = relrank(&["replay", dir_s]);
    assert_eq!(code, 0);
    assert_eq!(first, second, "replay must be deterministic");

    // `relrank journal verify <dir>` passes on intact files...
    let (code, stdout, _) = relrank(&["journal", "verify", dir_s]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("ok"), "{stdout}");

    // ...and exits non-zero once a journal byte is flipped.
    let journal = dir.join("fixture-fakenews-it").join("journal.log");
    let mut bytes = std::fs::read(&journal).unwrap();
    let last = bytes.len() - 2;
    bytes[last] ^= 0x01;
    std::fs::write(&journal, &bytes).unwrap();
    let (code, _, stderr) = relrank(&["journal", "verify", dir_s]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("journal verify failed"), "{stderr}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn journal_verify_missing_dir_exits_3() {
    let dir = std::env::temp_dir().join(format!("relrank-bin-nodir-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (code, _, stderr) = relrank(&["journal", "verify", dir.to_str().unwrap()]);
    assert_eq!(code, 3, "{stderr}");
    assert!(stderr.contains("does not exist"), "{stderr}");
    assert!(!dir.exists(), "verify must not create the directory");
}

#[test]
fn journal_verify_empty_journal_exits_0_with_note() {
    let dir = std::env::temp_dir().join(format!("relrank-bin-empty-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut ex = relengine::Executor::new();
        ex.attach_persistence(std::sync::Arc::new(
            relengine::GraphPersistence::open(&dir).unwrap(),
        ));
        let mut b = relgraph::GraphBuilder::new();
        b.add_labeled_edge("a", "b");
        ex.register_graph("empty-net", b.build()).unwrap();
    }
    std::fs::write(dir.join("empty-net").join("journal.log"), b"").unwrap();
    let (code, stdout, stderr) = relrank(&["journal", "verify", dir.to_str().unwrap()]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains("ok (empty journal)"), "{stdout}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn scenario_run_executes_a_suite_and_reports() {
    let dir = std::env::temp_dir().join(format!("relrank-bin-scn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let doc = r#"{
      "name": "bin-smoke",
      "ops": [
        {"op": "upload", "dataset": "d", "edges": [
          {"source": "x", "target": "y"}, {"source": "y", "target": "x"}
        ]},
        {"op": "inject_fault", "at_op": 2, "kind": "fail_sync"},
        {"op": "mutate", "dataset": "d",
         "add": [{"source": "x", "target": "z"}]},
        {"op": "query", "dataset": "d", "algorithm": "pagerank"},
        {"op": "recover"}
      ]
    }"#;
    let file = dir.join("bin-smoke.json");
    std::fs::write(&file, doc).unwrap();

    let (code, stdout, stderr) = relrank(&[
        "scenario",
        "run",
        file.to_str().unwrap(),
        "--seed",
        "7",
        "--variants",
        "3",
        "--json",
    ]);
    assert_eq!(code, 0, "{stderr}");
    let v: serde_json::Value = serde_json::from_str(&stdout).expect("valid JSON");
    // 1 base scenario + 3 seeded fault variants.
    assert_eq!(v["total"].as_u64(), Some(4), "{stdout}");
    assert_eq!(v["failed"].as_u64(), Some(0), "{stdout}");

    // A missing scenario path exits 3, like a missing data directory.
    let (code, _, stderr) = relrank(&["scenario", "run", "/no/such/scenarios"]);
    assert_eq!(code, 3, "{stderr}");
    assert!(stderr.contains("does not exist"), "{stderr}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn compare_datasets_table3_columns() {
    let (code, stdout, _) = relrank(&[
        "compare-datasets",
        "--datasets",
        "fixture-fakenews-de,fixture-fakenews-nl",
        "--source",
        "__per_dataset_title_unsupported__",
    ]);
    // The de edition titles the article "Fake News" while nl uses
    // "Nepnieuws" — a single shared source label cannot resolve on both, so
    // this invocation must fail cleanly...
    assert_eq!(code, 1);
    let _ = stdout;

    // ...whereas language editions sharing the title work:
    let (code, stdout, _) = relrank(&[
        "compare-datasets",
        "--datasets",
        "fixture-fakenews-it,fixture-fakenews-pl",
        "--source",
        "Fake news",
        "--top",
        "4",
    ]);
    assert_eq!(code, 0);
    assert!(stdout.contains("Disinformazione"));
    assert!(stdout.contains("Dezinformacja"));
}

#[test]
fn lint_fails_on_a_seeded_violation_and_passes_when_fixed() {
    // A miniature workspace with one serving-path unwrap: the lint must
    // exit 1 and name the rule. This is the CI-blocking contract, proven
    // on a fixture instead of by breaking HEAD.
    let dir = std::env::temp_dir().join(format!("relrank-bin-lint-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let src_dir = dir.join("crates").join("server").join("src");
    std::fs::create_dir_all(&src_dir).unwrap();
    std::fs::write(
        src_dir.join("routes.rs"),
        "pub fn handle(req: Request) -> Response { req.body().unwrap() }\n",
    )
    .unwrap();
    let dir_s = dir.to_str().unwrap();
    let (code, _, stderr) = relrank(&["lint", dir_s]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("panic-hygiene"), "{stderr}");

    // JSON mode: the full report lands on stdout (the CI artifact) even
    // though the process still fails.
    let (code, stdout, stderr) = relrank(&["lint", dir_s, "--json"]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stdout.contains("\"rule\": \"panic-hygiene\""), "{stdout}");
    let parsed: Result<serde_json::Value, _> = serde_json::from_str(stdout.trim());
    assert!(parsed.is_ok(), "artifact must be pure JSON: {stdout}");

    // Fixing the violation turns the exit green.
    std::fs::write(
        src_dir.join("routes.rs"),
        "pub fn handle(req: Request) -> Result<Response, Error> { Ok(respond(req.body()?)) }\n",
    )
    .unwrap();
    let (code, stdout, stderr) = relrank(&["lint", dir_s]);
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains("0 finding(s)"), "{stdout}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn lint_missing_root_exits_3_and_bad_baseline_exits_2() {
    let dir = std::env::temp_dir().join(format!("relrank-bin-lint-nodir-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (code, _, stderr) = relrank(&["lint", dir.to_str().unwrap()]);
    assert_eq!(code, 3, "{stderr}");
    assert!(stderr.contains("no crates/ directory"), "{stderr}");

    // A malformed baseline is a usage error, not a silent un-freeze.
    std::fs::create_dir_all(dir.join("crates").join("x").join("src")).unwrap();
    std::fs::write(dir.join("crates").join("x").join("src").join("lib.rs"), "pub fn f() {}\n")
        .unwrap();
    let bad = dir.join("bad.baseline");
    std::fs::write(&bad, "not a baseline line\n").unwrap();
    let (code, _, stderr) =
        relrank(&["lint", dir.to_str().unwrap(), "--baseline", bad.to_str().unwrap()]);
    assert_eq!(code, 2, "{stderr}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn lint_on_this_workspace_is_clean() {
    // HEAD must lint clean: zero findings outside the committed baseline.
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let (code, stdout, stderr) = relrank(&["lint", root]);
    assert_eq!(code, 0, "lint must be clean at HEAD\n{stdout}{stderr}");
    assert!(stdout.contains("0 finding(s)"), "{stdout}");
}
