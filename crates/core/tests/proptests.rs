//! Property-based tests for the relevance algorithms.

use proptest::prelude::*;
use relcore::cyclerank::{cyclerank, CycleRankConfig};
use relcore::pagerank::{pagerank, PageRankConfig};
use relcore::ppr::{personalized_pagerank, TeleportVector};
use relcore::push::{ppr_push, PushConfig};
use relcore::runner::{Algorithm, AlgorithmParams};
use relcore::solver::{Precision, Scheme, SolverConfig, SweepKernel, F32_TOLERANCE_FLOOR};
use relcore::{AlgorithmRegistry, Query, ScoringFunction};
use relgraph::{GraphBuilder, NodeId};
use std::str::FromStr;
use std::sync::Arc;

fn edge_list(max_nodes: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..max_nodes, 0..max_nodes), 1..max_edges)
}

fn weighted_edge_list(
    max_nodes: u32,
    max_edges: usize,
) -> impl Strategy<Value = Vec<(u32, u32, f64)>> {
    prop::collection::vec((0..max_nodes, 0..max_nodes, 0.1f64..10.0), 1..max_edges)
}

proptest! {
    /// PageRank is a probability distribution: non-negative and sums to 1.
    #[test]
    fn pagerank_is_distribution(edges in edge_list(30, 150), alpha in 0.05f64..0.95) {
        let g = GraphBuilder::from_edge_indices(edges);
        let (s, _) = pagerank(g.view(), &PageRankConfig::with_damping(alpha)).unwrap();
        prop_assert!((s.sum() - 1.0).abs() < 1e-6);
        prop_assert!(s.as_slice().iter().all(|&v| v >= 0.0));
    }

    /// Every node's PageRank is at least the bare teleport mass (1−α)/n.
    #[test]
    fn pagerank_teleport_floor(edges in edge_list(25, 100), alpha in 0.1f64..0.9) {
        let g = GraphBuilder::from_edge_indices(edges);
        let (s, _) = pagerank(g.view(), &PageRankConfig::with_damping(alpha)).unwrap();
        let floor = (1.0 - alpha) / g.node_count() as f64;
        prop_assert!(s.as_slice().iter().all(|&v| v >= floor - 1e-9));
    }

    /// PPR: distribution, zero outside the seed's reachable set, and the
    /// seed always has positive mass.
    #[test]
    fn ppr_support_is_reachable_set(edges in edge_list(25, 100), seed in 0u32..25) {
        let g = GraphBuilder::from_edge_indices(edges);
        let seed = NodeId::new(seed % g.node_count() as u32);
        let (s, _) = personalized_pagerank(g.view(), &PageRankConfig::default(), seed).unwrap();
        prop_assert!((s.sum() - 1.0).abs() < 1e-6);
        prop_assert!(s.get(seed) > 0.0);
        let dist = relgraph::bfs_distances(&g, seed);
        for u in g.nodes() {
            if dist[u.index()] == u32::MAX {
                prop_assert_eq!(s.get(u), 0.0, "unreachable {:?} has mass", u);
            }
        }
    }

    /// Forward push approximates exact PPR within the ACL residual bound:
    /// at termination every residual satisfies r[u] ≤ ε·deg(u), and the
    /// error vector is Σ_u r[u]·ppr_u, so its **L1 norm** is at most
    /// Σ_u ε·deg(u) ≤ ε·(|E| + |V|). (A pointwise per-node bound does NOT
    /// hold on directed graphs — mass can funnel into one node.)
    #[test]
    fn push_error_bound_l1(edges in edge_list(20, 80), seed in 0u32..20) {
        let g = GraphBuilder::from_edge_indices(edges);
        let seed = NodeId::new(seed % g.node_count() as u32);
        let eps = 1e-6;
        let (approx, _) = ppr_push(
            g.view(),
            &PushConfig { damping: 0.85, epsilon: eps, max_pushes: usize::MAX },
            seed,
        ).unwrap();
        let (exact, _) = personalized_pagerank(
            g.view(),
            &PageRankConfig { damping: 0.85, tolerance: 1e-13, max_iterations: 5000 },
            seed,
        ).unwrap();
        let l1: f64 = g.nodes().map(|u| (approx.get(u) - exact.get(u)).abs()).sum();
        let bound = eps * (g.edge_count() + g.node_count()) as f64 + 1e-8;
        prop_assert!(l1 <= bound, "L1 error {l1} > bound {bound}");
        // Push never overestimates total mass.
        prop_assert!(approx.sum() <= 1.0 + 1e-12);
    }

    /// CycleRank invariants: non-negative, reference attains the max,
    /// scores are zero iff the node lies on no qualifying cycle, and the
    /// total score is monotone in K.
    #[test]
    fn cyclerank_invariants(edges in edge_list(15, 70), r in 0u32..15) {
        let g = GraphBuilder::from_edge_indices(edges);
        let r = NodeId::new(r % g.node_count() as u32);
        let mut prev_total = -1.0;
        for k in 2..=5u32 {
            let out = cyclerank(&g, r, &CycleRankConfig::with_k(k)).unwrap();
            let max = out.scores.as_slice().iter().cloned().fold(f64::MIN, f64::max);
            prop_assert!(out.scores.as_slice().iter().all(|&v| v >= 0.0));
            prop_assert!(out.scores.get(r) >= max - 1e-12, "reference not maximal");
            let total = out.scores.sum();
            prop_assert!(total >= prev_total - 1e-12, "not monotone in K");
            prev_total = total;
            // cycles_found == 0 <=> all scores zero.
            prop_assert_eq!(out.cycles_found == 0, total == 0.0);
        }
    }

    /// CycleRank with the constant scoring function: the reference node's
    /// score equals the total number of cycles found.
    #[test]
    fn cyclerank_constant_scoring_counts_cycles(edges in edge_list(12, 50), r in 0u32..12) {
        let g = GraphBuilder::from_edge_indices(edges);
        let r = NodeId::new(r % g.node_count() as u32);
        let cfg = CycleRankConfig { max_cycle_len: 4, scoring: ScoringFunction::Constant, use_edge_weights: false };
        let out = cyclerank(&g, r, &cfg).unwrap();
        prop_assert!((out.scores.get(r) - out.cycles_found as f64).abs() < 1e-9);
    }

    /// CycleRank is insensitive to damping-style params and symmetric under
    /// graph relabeling: permuting node ids permutes scores.
    #[test]
    fn cyclerank_permutation_equivariance(edges in edge_list(10, 40), shift in 1u32..9) {
        let g = GraphBuilder::from_edge_indices(edges.clone());
        let n = g.node_count() as u32;
        if n < 2 { return Ok(()); }
        let perm = |u: u32| (u + shift) % n;
        let permuted: Vec<(u32, u32)> = edges.iter().map(|&(u, v)| (perm(u), perm(v))).collect();
        let mut b = GraphBuilder::new();
        for (u, v) in permuted { b.add_edge_indices(u, v); }
        b.ensure_node(n - 1);
        let g2 = b.build();
        let r = NodeId::new(0);
        let cfg = CycleRankConfig::with_k(4);
        let out1 = cyclerank(&g, r, &cfg).unwrap();
        let out2 = cyclerank(&g2, NodeId::new(perm(0)), &cfg).unwrap();
        prop_assert_eq!(out1.cycles_found, out2.cycles_found);
        for u in 0..n {
            let a = out1.scores.get(NodeId::new(u));
            let b = out2.scores.get(NodeId::new(perm(u)));
            prop_assert!((a - b).abs() < 1e-12, "node {}: {} vs {}", u, a, b);
        }
    }

    /// The Query front door produces a full permutation ranking for every
    /// algorithm.
    #[test]
    fn query_rankings_are_permutations(edges in edge_list(12, 60), r in 0u32..12) {
        let g = GraphBuilder::from_edge_indices(edges);
        let r = NodeId::new(r % g.node_count() as u32);
        let g = Arc::new(g);
        for algo in Algorithm::ALL {
            let out = Query::on(&g).algorithm(algo).reference(r).run().unwrap();
            let mut ids: Vec<u32> = out.output.ranking.as_slice().iter().map(|n| n.raw()).collect();
            ids.sort_unstable();
            let want: Vec<u32> = (0..g.node_count() as u32).collect();
            prop_assert_eq!(ids, want, "{} ranking not a permutation", algo);
        }
    }

    /// Registry/enum parity, part 3 of 3 (see the plain tests below for
    /// parts 1–2): `Query` with default parameters matches the legacy
    /// `run()` entry point **bit-for-bit** — identical rankings, identical
    /// score vectors down to the last f64 bit — for every algorithm.
    #[test]
    fn query_matches_legacy_run_bit_for_bit(edges in edge_list(15, 70), r in 0u32..15) {
        let g = GraphBuilder::from_edge_indices(edges);
        let r = NodeId::new(r % g.node_count() as u32);
        let g = Arc::new(g);
        for algo in Algorithm::ALL {
            let params = AlgorithmParams::new(algo);
            #[allow(deprecated)]
            let legacy = relcore::runner::run(&g, &params, Some(r)).unwrap();
            let query = Query::on(&g).algorithm(algo).reference(r).run().unwrap();
            prop_assert_eq!(&query.output.algorithm, &legacy.algorithm);
            prop_assert_eq!(&query.output.ranking, &legacy.ranking,
                "{} ranking differs", algo);
            match (&query.output.scores, &legacy.scores) {
                (None, None) => {}
                (Some(qs), Some(ls)) => {
                    for u in g.nodes() {
                        let (a, b) = (qs.get(u), ls.get(u));
                        prop_assert!(a.to_bits() == b.to_bits(),
                            "{} score at {:?} differs: {} vs {}", algo, u, a, b);
                    }
                }
                other => prop_assert!(false, "{} score presence differs: {:?}",
                    algo, (other.0.is_some(), other.1.is_some())),
            }
            prop_assert_eq!(query.output.cycles_found, legacy.cycles_found);
        }
    }

    /// Solver-layer contract: the three kernel update schemes — power
    /// iteration, hybrid Gauss–Seidel, and chunked parallel pull — agree
    /// within 10× the convergence tolerance on random *weighted* graphs,
    /// for PageRank (forward view, uniform teleport), PPR (forward view,
    /// reference teleport), and CheiRank (transposed view, uniform
    /// teleport). Damping stays ≤ 0.7 so the tolerance→fixed-point error
    /// bound `tol·α/(1−α)` keeps pairwise disagreement under the budget.
    #[test]
    fn kernel_schemes_agree_within_tolerance(
        edges in weighted_edge_list(25, 120),
        seed in 0u32..25,
        alpha in 0.05f64..0.7,
        threads in 1usize..5,
    ) {
        let mut b = GraphBuilder::new();
        for &(u, v, w) in &edges {
            if u != v {
                b.add_weighted_edge(NodeId::new(u), NodeId::new(v), w);
            }
        }
        b.ensure_node(24);
        let g = b.build();
        let seed = NodeId::new(seed % g.node_count() as u32);
        let tolerance = 1e-12;
        let budget = 10.0 * tolerance;

        let teleports = [
            ("pagerank", TeleportVector::uniform(g.node_count()).unwrap(), false),
            ("ppr", TeleportVector::single(g.node_count(), seed).unwrap(), false),
            ("cheirank", TeleportVector::uniform(g.node_count()).unwrap(), true),
            ("pcheirank", TeleportVector::single(g.node_count(), seed).unwrap(), true),
        ];
        for (name, teleport, transposed) in teleports {
            let view = if transposed { g.transposed() } else { g.view() };
            let kernel = SweepKernel::new(view).unwrap();
            let mut solved = Vec::new();
            for scheme in Scheme::ALL {
                let cfg = SolverConfig {
                    damping: alpha,
                    tolerance,
                    max_iterations: 3000,
                    scheme,
                    threads,
                    record_trace: false,
                    precision: Precision::default(),
                };
                let out = kernel.solve(&cfg, &teleport).unwrap();
                prop_assert!(out.convergence.converged, "{name}/{scheme} did not converge");
                prop_assert!((out.scores.sum() - 1.0).abs() < 1e-9, "{name}/{scheme} off simplex");
                solved.push((scheme, out.scores));
            }
            for i in 0..solved.len() {
                for j in i + 1..solved.len() {
                    for u in g.nodes() {
                        let (a, b) = (solved[i].1.get(u), solved[j].1.get(u));
                        prop_assert!(
                            (a - b).abs() < budget,
                            "{name}: {} vs {} differ at {:?}: {} vs {}",
                            solved[i].0, solved[j].0, u, a, b
                        );
                    }
                }
            }
        }
    }

    /// The f32 score lane tracks the f64 lane within its documented
    /// tolerance: for PageRank, PPR, and CheiRank (uniform/single teleport,
    /// forward/transposed view) under every update scheme on random
    /// weighted graphs, every per-node score differs by < 1e-5, the f32
    /// result stays on the probability simplex to 1e-4, and both lanes
    /// report convergence. The f32 lane clamps its effective tolerance to
    /// [`F32_TOLERANCE_FLOOR`], so requesting a tighter one is safe.
    #[test]
    fn f32_lane_tracks_f64_within_tolerance(
        edges in weighted_edge_list(25, 120),
        raw_seed in 0u32..25,
        alpha in 0.05f64..0.85,
        threads in 1usize..4,
    ) {
        let mut b = GraphBuilder::new();
        b.ensure_node(24);
        for (u, v, w) in edges {
            if u != v {
                b.add_weighted_edge(NodeId::new(u), NodeId::new(v), w);
            }
        }
        let g = b.build();
        let seed = NodeId::new(raw_seed % g.node_count() as u32);
        let cases = [
            ("pagerank", TeleportVector::uniform(g.node_count()).unwrap(), false),
            ("ppr", TeleportVector::single(g.node_count(), seed).unwrap(), false),
            ("cheirank", TeleportVector::uniform(g.node_count()).unwrap(), true),
        ];
        for (name, teleport, transposed) in cases {
            let view = if transposed { g.transposed() } else { g.view() };
            let kernel = SweepKernel::new(view).unwrap();
            for scheme in Scheme::ALL {
                let cfg = SolverConfig {
                    damping: alpha,
                    tolerance: F32_TOLERANCE_FLOOR,
                    max_iterations: 5000,
                    scheme,
                    threads,
                    record_trace: false,
                    precision: Precision::F64,
                };
                let wide = kernel.solve(&cfg, &teleport).unwrap();
                let narrow = kernel
                    .solve(&SolverConfig { precision: Precision::F32, ..cfg }, &teleport)
                    .unwrap();
                prop_assert!(wide.convergence.converged, "{name}/{scheme} f64");
                prop_assert!(narrow.convergence.converged, "{name}/{scheme} f32");
                prop_assert!(
                    (narrow.scores.sum() - 1.0).abs() < 1e-4,
                    "{name}/{scheme}: f32 scores off the simplex: {}",
                    narrow.scores.sum()
                );
                for u in g.nodes() {
                    let (a, b) = (wide.scores.get(u), narrow.scores.get(u));
                    prop_assert!(
                        (a - b).abs() < 1e-5,
                        "{name}/{scheme} node {:?}: f64 {} vs f32 {}", u, a, b
                    );
                }
            }
        }
    }

    /// Warm starting is bitwise-safe plumbing: seeding the kernel's warm
    /// path with the **dense teleport vector** must reproduce the cold
    /// solve bit for bit (identical scores and convergence) for every
    /// scheme — the warm path changes only the starting iterate, never
    /// the arithmetic. Seeding with the cold solve's own fixed point must
    /// converge to the same scores within solver tolerance, on the
    /// probability simplex, in no more sweeps than the cold run.
    #[test]
    fn warm_start_agrees_with_cold(
        edges in weighted_edge_list(25, 120),
        raw_seed in 0u32..25,
        threads in 1usize..4,
    ) {
        let mut b = GraphBuilder::new();
        b.ensure_node(24);
        for (u, v, w) in edges {
            if u != v {
                b.add_weighted_edge(NodeId::new(u), NodeId::new(v), w);
            }
        }
        let g = b.build();
        let seed = NodeId::new(raw_seed % g.node_count() as u32);
        let kernel = SweepKernel::new(g.view()).unwrap();
        let teleports = [
            TeleportVector::uniform(g.node_count()).unwrap(),
            TeleportVector::single(g.node_count(), seed).unwrap(),
        ];
        for teleport in teleports {
            let dense = teleport.dense();
            for scheme in Scheme::ALL {
                let cfg = SolverConfig {
                    tolerance: 1e-12,
                    max_iterations: 3000,
                    scheme,
                    threads,
                    ..Default::default()
                };
                let cold = kernel.solve(&cfg, &teleport).unwrap();
                // Bitwise: warm from the cold start point IS the cold run.
                let bitwise = kernel.solve_warm(&cfg, &teleport, &dense).unwrap();
                prop_assert_eq!(bitwise.scores.as_slice(), cold.scores.as_slice(),
                    "{} warm-from-teleport diverged", scheme);
                prop_assert_eq!(bitwise.convergence, cold.convergence);
                // Genuine warm start: same fixed point, on the simplex,
                // no slower than cold (all schemes, incl. Gauss–Seidel's
                // renormalized iterate).
                let warm = kernel.solve_warm(&cfg, &teleport, cold.scores.as_slice()).unwrap();
                prop_assert!(warm.convergence.converged, "{scheme}");
                prop_assert!((warm.scores.sum() - 1.0).abs() < 1e-9,
                    "{} warm scores off the simplex: {}", scheme, warm.scores.sum());
                prop_assert!((cold.scores.sum() - 1.0).abs() < 1e-9,
                    "{} cold scores off the simplex: {}", scheme, cold.scores.sum());
                prop_assert!(warm.convergence.iterations <= cold.convergence.iterations,
                    "{}: warm {} sweeps > cold {}", scheme,
                    warm.convergence.iterations, cold.convergence.iterations);
                for u in g.nodes() {
                    prop_assert!(
                        (warm.scores.get(u) - cold.scores.get(u)).abs() < 1e-10,
                        "{} node {:?}", scheme, u
                    );
                }
            }
        }
    }

    /// Ranking metrics: self-similarity axioms hold for arbitrary score
    /// vectors.
    #[test]
    fn compare_metric_axioms(scores in prop::collection::vec(0.0f64..1.0, 2..40)) {
        let s = relcore::ScoreVector::new(scores);
        let r = s.ranking();
        prop_assert_eq!(relcore::compare::kendall_tau(&r, &r), 1.0);
        prop_assert!((relcore::compare::rank_biased_overlap(&r, &r, 0.9) - 1.0).abs() < 1e-9);
        prop_assert_eq!(relcore::compare::spearman_footrule(&r, &r), 1.0);
        prop_assert_eq!(relcore::compare::jaccard_at_k(&r, &r, 5), 1.0);
    }

    /// Batched multi-seed queries are **bit-for-bit** equal to per-seed
    /// sequential runs: for PPR and Pers. CheiRank on random weighted
    /// graphs, `Query::seeds([...]).run_batch()` (one fused multi-vector
    /// sweep) reproduces every score, convergence diagnostic, and ranking
    /// of the independent `Query::run` calls exactly.
    #[test]
    fn batched_multi_seed_bitwise_equals_sequential(
        edges in weighted_edge_list(25, 120),
        raw_seeds in prop::collection::vec(0u32..25, 1..9),
        algo_idx in 0usize..2,
        threads in 0usize..4,
    ) {
        let algorithm = ["ppr", "pcheirank"][algo_idx];
        let mut b = GraphBuilder::new();
        b.ensure_node(24);
        for (u, v, w) in edges {
            if u != v {
                b.add_weighted_edge(NodeId::new(u), NodeId::new(v), w);
            }
        }
        let g = Arc::new(b.build());
        let seeds: Vec<NodeId> = raw_seeds.iter().map(|&s| NodeId::new(s)).collect();

        let batch = Query::on(&g)
            .algorithm(algorithm)
            .seeds(seeds.clone())
            .threads(threads)
            .top(5)
            .run_batch()
            .unwrap();
        prop_assert_eq!(batch.len(), seeds.len());

        for (i, &seed) in seeds.iter().enumerate() {
            let single = Query::on(&g)
                .algorithm(algorithm)
                .reference(seed)
                .threads(threads)
                .top(5)
                .run()
                .unwrap();
            let single_scores = single.scores().unwrap().as_slice();
            let batch_scores = batch.outputs[i].scores.as_ref().unwrap().as_slice();
            prop_assert_eq!(single_scores, batch_scores,
                "{} seed {:?}: batched scores diverge", algorithm, seed);
            let sum: f64 = batch_scores.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-8,
                "{} seed {:?}: batched scores off the simplex: {}", algorithm, seed, sum);
            let sc = single.output.convergence.unwrap();
            let bc = batch.outputs[i].convergence.unwrap();
            prop_assert_eq!(sc.iterations, bc.iterations);
            prop_assert_eq!(sc.residual.to_bits(), bc.residual.to_bits());
            prop_assert_eq!(sc.converged, bc.converged);
            prop_assert_eq!(&single.output.ranking, &batch.outputs[i].ranking);
            prop_assert_eq!(single.top_entries(), batch.top_entries(i));
        }
    }
}

/// Registry/enum parity, part 1 of 3: every `Algorithm::ALL` id resolves
/// in the global registry, to an entry whose metadata matches the enum's.
#[test]
fn every_enum_id_resolves_in_registry() {
    let registry = AlgorithmRegistry::global();
    for algo in Algorithm::ALL {
        let entry =
            registry.get(algo.id()).unwrap_or_else(|| panic!("{} not in registry", algo.id()));
        assert_eq!(entry.id(), algo.id());
        assert_eq!(entry.display_name(), algo.display_name());
        assert_eq!(entry.is_personalized(), algo.is_personalized());
        assert_eq!(entry.produces_scores(), algo.produces_scores());
    }
}

/// Registry/enum parity, part 2 of 3: every spelling `Algorithm::from_str`
/// accepts resolves in the registry to the same algorithm, and the
/// resolved id round-trips back through `FromStr`.
#[test]
fn fromstr_aliases_roundtrip_through_registry() {
    let registry = AlgorithmRegistry::global();
    let aliases = [
        "pagerank",
        "pr",
        "PageRank",
        "ppr",
        "personalizedpagerank",
        "personalized-page-rank",
        "Pers. PageRank",
        "cheirank",
        "CheiRank",
        "pcheirank",
        "personalizedcheirank",
        "2drank",
        "twodrank",
        "2DRank",
        "p2drank",
        "personalized2drank",
        "personalizedtwodrank",
        "cyclerank",
        "cr",
        "Cyclerank",
        "CYCLE_RANK",
    ];
    for alias in aliases {
        let from_enum =
            Algorithm::from_str(alias).unwrap_or_else(|e| panic!("enum rejects {alias:?}: {e}"));
        let from_registry =
            registry.get(alias).unwrap_or_else(|| panic!("registry rejects {alias:?}"));
        assert_eq!(from_registry.id(), from_enum.id(), "alias {alias:?} diverges");
        // Round trip: the registry id parses back to the same enum value.
        assert_eq!(Algorithm::from_str(from_registry.id()).unwrap(), from_enum);
    }
    // The registry additionally resolves dotted display names the enum's
    // FromStr never supported; the resolved ids still round-trip.
    for (display, id) in [("Pers. CheiRank", "pcheirank"), ("Pers. 2DRank", "p2drank")] {
        assert_eq!(registry.get(display).unwrap().id(), id);
        assert_eq!(Algorithm::from_str(id).unwrap().id(), id);
    }
    // Negative parity: names neither accepts.
    for bogus in ["zerank", "", "page rank x"] {
        assert!(Algorithm::from_str(bogus).is_err());
        assert!(registry.get(bogus).is_none(), "registry accepts bogus {bogus:?}");
    }
}

// ------------------------------------------------------------------
// Cache-locality layer: reordering invariance and top-k serving mode.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A reordered graph is computationally invisible: PageRank, PPR, and
    /// CheiRank scores on the reordered graph equal the original's up to
    /// the id permutation, for every update scheme, within solver
    /// tolerance.
    #[test]
    fn reordered_graph_scores_invariant(edges in edge_list(25, 100), raw_seed in 0u32..25) {
        let g = GraphBuilder::from_edge_indices(edges);
        let seed = NodeId::new(raw_seed % g.node_count() as u32);
        let g = Arc::new(g);
        for ordering in [relgraph::NodeOrdering::DegreeDescending, relgraph::NodeOrdering::Bfs] {
            let (rg, inverse) = g.reordered_by(ordering).unwrap();
            let forward = inverse.inverse();
            let rg = Arc::new(rg);
            for algorithm in ["pagerank", "ppr", "cheirank"] {
                for scheme in Scheme::ALL {
                    let mut q = Query::on(&g).algorithm(algorithm).scheme(scheme);
                    let mut rq = Query::on(&rg).algorithm(algorithm).scheme(scheme);
                    if algorithm == "ppr" {
                        q = q.reference(seed);
                        rq = rq.reference(forward.map(seed));
                    }
                    let s = q.run().unwrap();
                    let rs = rq.run().unwrap();
                    let (s, rs) = (s.scores().unwrap(), rs.scores().unwrap());
                    for u in g.nodes() {
                        let (a, b) = (s.get(u), rs.get(forward.map(u)));
                        prop_assert!(
                            (a - b).abs() < 1e-9,
                            "{ordering}/{algorithm}/{scheme} node {:?}: {} vs {}", u, a, b
                        );
                    }
                }
            }
        }
    }

    /// `Query::top_k(k)` returns exactly the top-k node set of the full
    /// run for the whole stationary family — on the exact kernel path
    /// (global algorithms) bitwise including order and scores, on the
    /// certified-push path (personalized) as a set with scores within the
    /// adaptive policy's worst-case residual mass.
    #[test]
    fn query_top_k_matches_full_run(
        edges in edge_list(25, 100),
        raw_seed in 0u32..25,
        k in 1usize..8,
    ) {
        let g = GraphBuilder::from_edge_indices(edges);
        let seed = NodeId::new(raw_seed % g.node_count() as u32);
        let g = Arc::new(g);
        for algorithm in ["pagerank", "cheirank", "ppr", "pcheirank"] {
            let personalized = matches!(algorithm, "ppr" | "pcheirank");
            let mut full = Query::on(&g).algorithm(algorithm).top(k);
            let mut topk = Query::on(&g).algorithm(algorithm).top_k(k);
            if personalized {
                full = full.reference(seed);
                topk = topk.reference(seed);
            }
            let full = full.run().unwrap();
            let topk = topk.run().unwrap();
            let want = full.scores().unwrap().top_k(k);
            let got = topk.output.top.as_ref().expect("top-k mode returns pairs");
            prop_assert_eq!(got.len(), want.len(), "{}", algorithm);
            prop_assert!(topk.scores().is_none(), "{}: no full vector in top-k mode", algorithm);
            prop_assert_eq!(topk.ranking().len(), k.min(g.node_count()), "{}", algorithm);

            let mut want_nodes: Vec<NodeId> = want.iter().map(|&(n, _)| n).collect();
            let mut got_nodes: Vec<NodeId> = got.iter().map(|&(n, _)| n).collect();
            if personalized {
                // Certified push guarantees the set; order within the set
                // follows the estimates. Scores under-approximate by at
                // most the certified residual mass (≤ first-round ε·(m+n)
                // ≤ 0.01/k by the adaptive policy).
                want_nodes.sort_unstable();
                got_nodes.sort_unstable();
                prop_assert_eq!(want_nodes, got_nodes, "{} top-k set diverges", algorithm);
                let exact: std::collections::HashMap<NodeId, f64> = want.iter().copied().collect();
                for &(n, s) in got {
                    let e = exact[&n];
                    prop_assert!(s <= e + 1e-9, "{}: over-estimate at {:?}", algorithm, n);
                    prop_assert!(e - s <= 0.011, "{}: error beyond policy bound at {:?}", algorithm, n);
                }
            } else {
                // Exact kernel path: bitwise identical pairs.
                prop_assert_eq!(got.clone(), want, "{} exact top-k diverges", algorithm);
            }
        }
    }
}

// ------------------------------------------------------------------
// Top-k serving edge cases and warm-started queries (plain tests).

/// `Query::top_k` degenerate shapes: k = 0 (empty result, nothing
/// solved into the payload), k ≥ n (full ranking, certified push
/// correctly declines), and an exactly-tied rank boundary (push cannot
/// certify; the exact-kernel fallback still returns the true set).
#[test]
fn query_top_k_degenerate_and_tied_ranks() {
    // Symmetric star: every leaf's PPR score ties exactly.
    let mut b = GraphBuilder::new();
    for i in 1..=6u32 {
        b.add_edge_indices(0, i);
        b.add_edge_indices(i, 0);
    }
    let g = Arc::new(b.build());
    let n = g.node_count();

    for algorithm in ["pagerank", "ppr"] {
        let q = |k: usize| {
            let mut q = Query::on(&g).algorithm(algorithm).top_k(k);
            if algorithm == "ppr" {
                q = q.reference(NodeId::new(0));
            }
            q.run().unwrap()
        };
        // k = 0: empty everything, still a well-formed result.
        let empty = q(0);
        assert_eq!(empty.output.top.as_deref(), Some(&[][..]), "{algorithm}");
        assert!(empty.ranking().is_empty(), "{algorithm}");
        assert!(empty.top_entries().is_empty(), "{algorithm}");
        assert!(empty.scores().is_none(), "{algorithm}: top-k mode has no full vector");

        // k >= n (also k far beyond n): the whole ranking comes back,
        // exactly matching the full run.
        for k in [n, n + 5, 10 * n] {
            let all = q(k);
            let full = {
                let mut f = Query::on(&g).algorithm(algorithm).top(n);
                if algorithm == "ppr" {
                    f = f.reference(NodeId::new(0));
                }
                f.run().unwrap()
            };
            let got = all.output.top.as_ref().unwrap();
            assert_eq!(got.len(), n, "{algorithm} k={k}");
            assert_eq!(got.clone(), full.scores().unwrap().top_k(n), "{algorithm} k={k}");
        }
    }

    // Tied boundary: k = 3 cuts through the six tied leaves. Certified
    // push must decline and the kernel fallback must return the exact
    // top-k (hub + lowest-id leaves, by the deterministic tie-break).
    let tied = Query::on(&g).algorithm("ppr").reference(NodeId::new(0)).top_k(3).run().unwrap();
    let full = Query::on(&g).algorithm("ppr").reference(NodeId::new(0)).top(n).run().unwrap();
    assert_eq!(tied.output.top.as_ref().unwrap().clone(), full.scores().unwrap().top_k(3));
}

/// `Query::warm_start` end to end: warm-started queries converge to the
/// cold query's scores (within solver tolerance) in fewer sweeps, across
/// the stationary family; non-iterative algorithms simply ignore the
/// warm vector.
#[test]
fn query_warm_start_matches_cold() {
    let g = Arc::new(GraphBuilder::from_edge_indices([
        (0, 1),
        (1, 0),
        (1, 2),
        (2, 1),
        (2, 3),
        (3, 0),
        (0, 4),
        (4, 2),
    ]));
    for algorithm in ["pagerank", "ppr", "cheirank", "pcheirank"] {
        let personalized = matches!(algorithm, "ppr" | "pcheirank");
        let run = |warm: Option<relcore::ScoreVector>| {
            let mut q = Query::on(&g).algorithm(algorithm).top(5);
            if personalized {
                q = q.reference(NodeId::new(0));
            }
            if let Some(prev) = warm {
                q = q.warm_start(prev);
            }
            q.run().unwrap()
        };
        let cold = run(None);
        let warm = run(Some(cold.scores().unwrap().clone()));
        for u in g.nodes() {
            let (a, b) = (cold.scores().unwrap().get(u), warm.scores().unwrap().get(u));
            assert!((a - b).abs() < 1e-8, "{algorithm} node {u:?}: {a} vs {b}");
        }
        assert!(
            warm.output.convergence.unwrap().iterations
                <= cold.output.convergence.unwrap().iterations,
            "{algorithm}: warm start must not be slower"
        );
    }
    // Mismatched warm vectors are rejected, not silently truncated.
    let bad = relcore::ScoreVector::new(vec![0.1; 3]);
    assert!(Query::on(&g).algorithm("pagerank").warm_start(bad).run().is_err());
    // CycleRank has no iterate to seed: the warm vector is ignored.
    let prev = relcore::ScoreVector::new(vec![0.2; 5]);
    let r = Query::on(&g)
        .algorithm("cyclerank")
        .reference(NodeId::new(0))
        .warm_start(prev)
        .run()
        .unwrap();
    assert!(r.output.cycles_found.unwrap() > 0);
}

/// Warm start composes with top-k serving mode: the warm top-k equals
/// the cold full run's top-k.
#[test]
fn query_warm_start_top_k_serving() {
    let g =
        Arc::new(GraphBuilder::from_edge_indices([(0, 1), (1, 0), (1, 2), (2, 0), (3, 2), (0, 3)]));
    let cold = Query::on(&g).algorithm("ppr").reference(NodeId::new(0)).top(4).run().unwrap();
    let warm = Query::on(&g)
        .algorithm("ppr")
        .reference(NodeId::new(0))
        .warm_start(cold.scores().unwrap().clone())
        .top_k(2)
        .run()
        .unwrap();
    let got: Vec<NodeId> = warm.output.top.as_ref().unwrap().iter().map(|&(n, _)| n).collect();
    let want: Vec<NodeId> = cold.scores().unwrap().top_k(2).into_iter().map(|(n, _)| n).collect();
    assert_eq!(got, want);
}
