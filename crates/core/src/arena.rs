//! Reusable solver buffers: allocation-free steady-state solves.
//!
//! Every kernel solve needs a handful of `O(n)` `f64` working vectors
//! (current scores, next scores, dense teleport — and `O(n·lanes)`
//! interleaves for batches). Before this module existed each solve
//! allocated them fresh, which under request-serving traffic means three
//! large allocations *per query* and a working set that hops around the
//! heap. A [`SolverArena`] is a bounded free list of such buffers:
//! [`SolverArena::take`] checks one out (reusing capacity when a returned
//! buffer is big enough), the [`ArenaBuf`] guard returns it on drop, and
//! [`ArenaBuf::detach`] lets a result vector escape permanently (the one
//! unavoidable allocation of a full-rank solve — the top-k serving path
//! never detaches, so it is allocation-free after warm-up).
//!
//! The arena to use is resolved per thread: [`with_arena`] scopes a
//! specific arena (the engine executor scopes its per-dataset pool around
//! every solve), and everything outside such a scope shares one global
//! arena. Checkout happens on the solving thread *before* the parallel
//! scheme fans out to its scoped workers, so the thread-local lookup never
//! races.
//!
//! [`SolverArena::allocations`] counts every fresh or growing allocation —
//! the counting hook the zero-allocation steady-state tests (and the
//! `topk_serving` bench) assert against.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Buffers kept in a free list beyond this are dropped instead of
/// pooled (per element type).
const MAX_POOLED: usize = 32;

/// Total pooled capacity cap in bytes per pool (128 MiB): enough to keep
/// one full batch solve's working set (three `n × MAX_FUSED_LANES`
/// interleaves) warm on graphs into the millions of nodes, while
/// guaranteeing an idle arena never retains more than this — without it,
/// a burst of wide batches would pin 32 jumbo buffers per dataset
/// forever. When over budget the *largest* buffers go first: that is
/// what actually frees memory (count-based eviction of small buffers
/// would leave the jumbos resident).
const MAX_POOLED_BYTES: usize = 128 * 1024 * 1024;

mod sealed {
    pub trait Sealed {}
    impl Sealed for f64 {}
    impl Sealed for f32 {}
}

/// Element types the arena pools buffers of: the solver's full-precision
/// `f64` lane and the narrow `f32` lane. Each type has its own free list,
/// so the two lanes never trade buffers.
pub trait PoolItem: sealed::Sealed + Copy + Send + Sync + 'static {
    /// The value buffers are filled with on checkout.
    const ZERO: Self;

    #[doc(hidden)]
    fn pool(arena: &SolverArena) -> &Mutex<Vec<Vec<Self>>>;
}

impl PoolItem for f64 {
    const ZERO: Self = 0.0;

    fn pool(arena: &SolverArena) -> &Mutex<Vec<Vec<f64>>> {
        &arena.free_f64
    }
}

impl PoolItem for f32 {
    const ZERO: Self = 0.0;

    fn pool(arena: &SolverArena) -> &Mutex<Vec<Vec<f32>>> {
        &arena.free_f32
    }
}

/// A bounded, thread-safe free list of solver buffers (one pool per
/// score-lane element type).
#[derive(Debug, Default)]
pub struct SolverArena {
    free_f64: Mutex<Vec<Vec<f64>>>,
    free_f32: Mutex<Vec<Vec<f32>>>,
    allocations: AtomicU64,
}

impl SolverArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        SolverArena::default()
    }

    /// The process-wide fallback arena used by solves outside any
    /// [`with_arena`] scope.
    pub fn global() -> &'static Arc<SolverArena> {
        static GLOBAL: OnceLock<Arc<SolverArena>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(SolverArena::new()))
    }

    /// Checks out a zero-filled `f64` buffer of length `n` (see
    /// [`SolverArena::take_buf`]).
    pub fn take(self: &Arc<Self>, n: usize) -> ArenaBuf {
        self.take_buf(n)
    }

    /// Checks out a zero-filled `f32` buffer of length `n` — the narrow
    /// score lane's working storage.
    pub fn take_f32(self: &Arc<Self>, n: usize) -> ArenaBuf<f32> {
        self.take_buf(n)
    }

    /// Checks out a zero-filled buffer of length `n`, reusing pooled
    /// capacity when possible (best fit: the smallest pooled buffer that
    /// holds `n`; too-small buffers stay pooled for smaller checkouts, so
    /// mixed-size traffic — single solves and wide batches sharing one
    /// per-dataset arena — reuses instead of churning). Counts an
    /// allocation only when nothing pooled fits.
    pub fn take_buf<T: PoolItem>(self: &Arc<Self>, n: usize) -> ArenaBuf<T> {
        let recycled = {
            let mut free = T::pool(self).lock().unwrap_or_else(|e| e.into_inner());
            // The list is kept sorted by capacity (see `give`), so the
            // best fit is the first buffer at or past `n`.
            let pos = free.partition_point(|b| b.capacity() < n);
            (pos < free.len()).then(|| free.remove(pos))
        };
        let mut buf = match recycled {
            Some(b) => b,
            None => {
                self.allocations.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(n)
            }
        };
        buf.clear();
        buf.resize(n, T::ZERO);
        ArenaBuf { arena: Arc::clone(self), buf }
    }

    /// Buffers currently pooled across both lanes (diagnostic).
    pub fn pooled(&self) -> usize {
        self.free_f64.lock().unwrap_or_else(|e| e.into_inner()).len()
            + self.free_f32.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Total fresh/growing buffer allocations since construction — the
    /// counting hook for zero-allocation steady-state assertions.
    pub fn allocations(&self) -> u64 {
        self.allocations.load(Ordering::Relaxed)
    }

    fn give<T: PoolItem>(&self, buf: Vec<T>) {
        if buf.capacity() == 0 {
            return; // detached guards drop an empty shell
        }
        let mut free = T::pool(self).lock().unwrap_or_else(|e| e.into_inner());
        // Keep the list sorted by capacity so `take` can best-fit search.
        let pos = free.partition_point(|b| b.capacity() <= buf.capacity());
        free.insert(pos, buf);
        if free.len() > MAX_POOLED {
            // Count bound: evict the smallest — large buffers are the
            // expensive ones to re-create and serve any smaller checkout.
            free.remove(0);
        }
        // Byte bound: evict the largest until under budget (always
        // keeping at least one buffer so a steady single-size workload
        // larger than the budget still reuses).
        let elem = std::mem::size_of::<T>();
        let mut total: usize = free.iter().map(|b| b.capacity() * elem).sum();
        while total > MAX_POOLED_BYTES && free.len() > 1 {
            total -= free.pop().map(|b| b.capacity() * elem).unwrap_or(0);
        }
    }
}

/// A checked-out arena buffer; dereferences to its `Vec<T>` and returns
/// the capacity to the pool on drop.
#[derive(Debug)]
pub struct ArenaBuf<T: PoolItem = f64> {
    arena: Arc<SolverArena>,
    buf: Vec<T>,
}

impl<T: PoolItem> ArenaBuf<T> {
    /// Takes the buffer out of arena management permanently — used when a
    /// solve's final score vector escapes to the caller. The pool replaces
    /// it with a fresh allocation on a later checkout (counted by
    /// [`SolverArena::allocations`]).
    pub fn detach(mut self) -> Vec<T> {
        std::mem::take(&mut self.buf)
    }

    /// The arena this buffer returns to on drop.
    pub(crate) fn arena(&self) -> &Arc<SolverArena> {
        &self.arena
    }
}

impl<T: PoolItem> Deref for ArenaBuf<T> {
    type Target = Vec<T>;

    fn deref(&self) -> &Vec<T> {
        &self.buf
    }
}

impl<T: PoolItem> DerefMut for ArenaBuf<T> {
    fn deref_mut(&mut self) -> &mut Vec<T> {
        &mut self.buf
    }
}

impl<T: PoolItem> Drop for ArenaBuf<T> {
    fn drop(&mut self) {
        self.arena.give(std::mem::take(&mut self.buf));
    }
}

thread_local! {
    static CURRENT: RefCell<Vec<Arc<SolverArena>>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with `arena` as the thread's current solver arena: every
/// kernel solve started by `f` on this thread checks its buffers out of
/// `arena` instead of the global one. Scopes nest; the engine executor
/// wraps each task in the owning dataset's arena.
pub fn with_arena<R>(arena: &Arc<SolverArena>, f: impl FnOnce() -> R) -> R {
    struct Pop;
    impl Drop for Pop {
        fn drop(&mut self) {
            CURRENT.with(|c| c.borrow_mut().pop());
        }
    }
    CURRENT.with(|c| c.borrow_mut().push(Arc::clone(arena)));
    let _pop = Pop;
    f()
}

/// The arena the current thread's solves draw from: the innermost
/// [`with_arena`] scope, or the global arena.
pub fn current_arena() -> Arc<SolverArena> {
    CURRENT
        .with(|c| c.borrow().last().cloned())
        .unwrap_or_else(|| Arc::clone(SolverArena::global()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_capacity() {
        let arena = Arc::new(SolverArena::new());
        {
            let _a = arena.take(100);
        }
        assert_eq!(arena.allocations(), 1);
        assert_eq!(arena.pooled(), 1);
        {
            let b = arena.take(80); // fits in the recycled buffer
            assert_eq!(b.len(), 80);
            assert!(b.iter().all(|&v| v == 0.0));
        }
        assert_eq!(arena.allocations(), 1, "reuse must not allocate");
    }

    #[test]
    fn growth_counts_as_allocation() {
        let arena = Arc::new(SolverArena::new());
        drop(arena.take(10));
        drop(arena.take(1000)); // pooled 10-cap buffer is too small
        assert_eq!(arena.allocations(), 2);
        drop(arena.take(500)); // the 1000-cap buffer serves this
        assert_eq!(arena.allocations(), 2);
    }

    #[test]
    fn mixed_size_workloads_reuse_best_fit() {
        let arena = Arc::new(SolverArena::new());
        drop(arena.take(100));
        drop(arena.take(1000)); // 100-cap doesn't fit and stays pooled
        assert_eq!(arena.allocations(), 2);
        {
            // Small checkout best-fits the small buffer, sparing the big.
            let b = arena.take(50);
            assert!(b.capacity() >= 50 && b.capacity() < 1000);
        }
        // Alternating solve/batch-shaped traffic never allocates again.
        for _ in 0..10 {
            drop(arena.take(100));
            drop(arena.take(1000));
        }
        assert_eq!(arena.allocations(), 2);
    }

    #[test]
    fn buffers_zeroed_on_checkout() {
        let arena = Arc::new(SolverArena::new());
        {
            let mut a = arena.take(8);
            a.iter_mut().for_each(|v| *v = 7.0);
        }
        let b = arena.take(8);
        assert!(b.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn detach_escapes_and_pool_refills() {
        let arena = Arc::new(SolverArena::new());
        let v = arena.take(16).detach();
        assert_eq!(v.len(), 16);
        assert_eq!(arena.pooled(), 0, "detached buffers don't return");
        drop(arena.take(16));
        assert_eq!(arena.allocations(), 2);
    }

    #[test]
    fn pool_is_bounded() {
        let arena = Arc::new(SolverArena::new());
        let bufs: Vec<_> = (0..MAX_POOLED + 10).map(|_| arena.take(4)).collect();
        drop(bufs);
        assert!(arena.pooled() <= MAX_POOLED);
    }

    #[test]
    fn f32_pool_is_independent() {
        let arena = Arc::new(SolverArena::new());
        drop(arena.take(64));
        assert_eq!(arena.allocations(), 1);
        {
            // The narrow lane cannot steal the pooled f64 capacity.
            let b = arena.take_f32(64);
            assert_eq!(b.len(), 64);
            assert!(b.iter().all(|&v| v == 0.0));
        }
        assert_eq!(arena.allocations(), 2);
        assert_eq!(arena.pooled(), 2);
        // Each lane now reuses its own buffer.
        drop(arena.take(32));
        drop(arena.take_f32(32));
        assert_eq!(arena.allocations(), 2);
    }

    #[test]
    fn pool_bytes_are_bounded() {
        let arena = Arc::new(SolverArena::new());
        // Four buffers of half the byte budget each can't all stay.
        let big = MAX_POOLED_BYTES / std::mem::size_of::<f64>() / 2;
        let bufs: Vec<_> = (0..4).map(|_| arena.take(big)).collect();
        drop(bufs);
        let total: usize = (0..arena.pooled()).count() * big;
        assert!(total * 8 <= MAX_POOLED_BYTES, "pooled {} buffers of {big}", arena.pooled());
        assert!(arena.pooled() >= 1, "at least one buffer stays for reuse");
    }

    #[test]
    fn scoped_arena_wins_over_global() {
        let mine = Arc::new(SolverArena::new());
        with_arena(&mine, || {
            let inner = current_arena();
            assert!(Arc::ptr_eq(&inner, &mine));
            let nested = Arc::new(SolverArena::new());
            with_arena(&nested, || {
                assert!(Arc::ptr_eq(&current_arena(), &nested));
            });
            assert!(Arc::ptr_eq(&current_arena(), &mine));
        });
        assert!(Arc::ptr_eq(&current_arena(), SolverArena::global()));
    }
}
