//! Reusable solver buffers: allocation-free steady-state solves.
//!
//! Every kernel solve needs a handful of `O(n)` `f64` working vectors
//! (current scores, next scores, dense teleport — and `O(n·lanes)`
//! interleaves for batches). Before this module existed each solve
//! allocated them fresh, which under request-serving traffic means three
//! large allocations *per query* and a working set that hops around the
//! heap. A [`SolverArena`] is a bounded free list of such buffers:
//! [`SolverArena::take`] checks one out (reusing capacity when a returned
//! buffer is big enough), the [`ArenaBuf`] guard returns it on drop, and
//! [`ArenaBuf::detach`] lets a result vector escape permanently (the one
//! unavoidable allocation of a full-rank solve — the top-k serving path
//! never detaches, so it is allocation-free after warm-up).
//!
//! The arena to use is resolved per thread: [`with_arena`] scopes a
//! specific arena (the engine executor scopes its per-dataset pool around
//! every solve), and everything outside such a scope shares one global
//! arena. Checkout happens on the solving thread *before* the parallel
//! scheme fans out to its scoped workers, so the thread-local lookup never
//! races.
//!
//! [`SolverArena::allocations`] counts every fresh or growing allocation —
//! the counting hook the zero-allocation steady-state tests (and the
//! `topk_serving` bench) assert against.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Buffers kept in the free list beyond this are dropped instead of
/// pooled.
const MAX_POOLED: usize = 32;

/// Total pooled capacity cap in `f64` entries (128 MiB): enough to keep
/// one full batch solve's working set (three `n × MAX_FUSED_LANES`
/// interleaves) warm on graphs into the millions of nodes, while
/// guaranteeing an idle arena never retains more than this — without it,
/// a burst of wide batches would pin 32 jumbo buffers per dataset
/// forever. When over budget the *largest* buffers go first: that is
/// what actually frees memory (count-based eviction of small buffers
/// would leave the jumbos resident).
const MAX_POOLED_F64S: usize = 128 * 1024 * 1024 / std::mem::size_of::<f64>();

/// A bounded, thread-safe free list of `Vec<f64>` solver buffers.
#[derive(Debug, Default)]
pub struct SolverArena {
    free: Mutex<Vec<Vec<f64>>>,
    allocations: AtomicU64,
}

impl SolverArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        SolverArena::default()
    }

    /// The process-wide fallback arena used by solves outside any
    /// [`with_arena`] scope.
    pub fn global() -> &'static Arc<SolverArena> {
        static GLOBAL: OnceLock<Arc<SolverArena>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(SolverArena::new()))
    }

    /// Checks out a zero-filled buffer of length `n`, reusing pooled
    /// capacity when possible (best fit: the smallest pooled buffer that
    /// holds `n`; too-small buffers stay pooled for smaller checkouts, so
    /// mixed-size traffic — single solves and wide batches sharing one
    /// per-dataset arena — reuses instead of churning). Counts an
    /// allocation only when nothing pooled fits.
    pub fn take(self: &Arc<Self>, n: usize) -> ArenaBuf {
        let recycled = {
            let mut free = self.free.lock().unwrap_or_else(|e| e.into_inner());
            // The list is kept sorted by capacity (see `give`), so the
            // best fit is the first buffer at or past `n`.
            let pos = free.partition_point(|b| b.capacity() < n);
            (pos < free.len()).then(|| free.remove(pos))
        };
        let mut buf = match recycled {
            Some(b) => b,
            None => {
                self.allocations.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(n)
            }
        };
        buf.clear();
        buf.resize(n, 0.0);
        ArenaBuf { arena: Arc::clone(self), buf }
    }

    /// Buffers currently pooled (diagnostic).
    pub fn pooled(&self) -> usize {
        self.free.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Total fresh/growing buffer allocations since construction — the
    /// counting hook for zero-allocation steady-state assertions.
    pub fn allocations(&self) -> u64 {
        self.allocations.load(Ordering::Relaxed)
    }

    fn give(&self, buf: Vec<f64>) {
        if buf.capacity() == 0 {
            return; // detached guards drop an empty shell
        }
        let mut free = self.free.lock().unwrap_or_else(|e| e.into_inner());
        // Keep the list sorted by capacity so `take` can best-fit search.
        let pos = free.partition_point(|b| b.capacity() <= buf.capacity());
        free.insert(pos, buf);
        if free.len() > MAX_POOLED {
            // Count bound: evict the smallest — large buffers are the
            // expensive ones to re-create and serve any smaller checkout.
            free.remove(0);
        }
        // Byte bound: evict the largest until under budget (always
        // keeping at least one buffer so a steady single-size workload
        // larger than the budget still reuses).
        let mut total: usize = free.iter().map(Vec::capacity).sum();
        while total > MAX_POOLED_F64S && free.len() > 1 {
            total -= free.pop().map(|b| b.capacity()).unwrap_or(0);
        }
    }
}

/// A checked-out arena buffer; dereferences to its `Vec<f64>` and returns
/// the capacity to the pool on drop.
#[derive(Debug)]
pub struct ArenaBuf {
    arena: Arc<SolverArena>,
    buf: Vec<f64>,
}

impl ArenaBuf {
    /// Takes the buffer out of arena management permanently — used when a
    /// solve's final score vector escapes to the caller. The pool replaces
    /// it with a fresh allocation on a later checkout (counted by
    /// [`SolverArena::allocations`]).
    pub fn detach(mut self) -> Vec<f64> {
        std::mem::take(&mut self.buf)
    }
}

impl Deref for ArenaBuf {
    type Target = Vec<f64>;

    fn deref(&self) -> &Vec<f64> {
        &self.buf
    }
}

impl DerefMut for ArenaBuf {
    fn deref_mut(&mut self) -> &mut Vec<f64> {
        &mut self.buf
    }
}

impl Drop for ArenaBuf {
    fn drop(&mut self) {
        self.arena.give(std::mem::take(&mut self.buf));
    }
}

thread_local! {
    static CURRENT: RefCell<Vec<Arc<SolverArena>>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with `arena` as the thread's current solver arena: every
/// kernel solve started by `f` on this thread checks its buffers out of
/// `arena` instead of the global one. Scopes nest; the engine executor
/// wraps each task in the owning dataset's arena.
pub fn with_arena<R>(arena: &Arc<SolverArena>, f: impl FnOnce() -> R) -> R {
    struct Pop;
    impl Drop for Pop {
        fn drop(&mut self) {
            CURRENT.with(|c| c.borrow_mut().pop());
        }
    }
    CURRENT.with(|c| c.borrow_mut().push(Arc::clone(arena)));
    let _pop = Pop;
    f()
}

/// The arena the current thread's solves draw from: the innermost
/// [`with_arena`] scope, or the global arena.
pub fn current_arena() -> Arc<SolverArena> {
    CURRENT
        .with(|c| c.borrow().last().cloned())
        .unwrap_or_else(|| Arc::clone(SolverArena::global()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_capacity() {
        let arena = Arc::new(SolverArena::new());
        {
            let _a = arena.take(100);
        }
        assert_eq!(arena.allocations(), 1);
        assert_eq!(arena.pooled(), 1);
        {
            let b = arena.take(80); // fits in the recycled buffer
            assert_eq!(b.len(), 80);
            assert!(b.iter().all(|&v| v == 0.0));
        }
        assert_eq!(arena.allocations(), 1, "reuse must not allocate");
    }

    #[test]
    fn growth_counts_as_allocation() {
        let arena = Arc::new(SolverArena::new());
        drop(arena.take(10));
        drop(arena.take(1000)); // pooled 10-cap buffer is too small
        assert_eq!(arena.allocations(), 2);
        drop(arena.take(500)); // the 1000-cap buffer serves this
        assert_eq!(arena.allocations(), 2);
    }

    #[test]
    fn mixed_size_workloads_reuse_best_fit() {
        let arena = Arc::new(SolverArena::new());
        drop(arena.take(100));
        drop(arena.take(1000)); // 100-cap doesn't fit and stays pooled
        assert_eq!(arena.allocations(), 2);
        {
            // Small checkout best-fits the small buffer, sparing the big.
            let b = arena.take(50);
            assert!(b.capacity() >= 50 && b.capacity() < 1000);
        }
        // Alternating solve/batch-shaped traffic never allocates again.
        for _ in 0..10 {
            drop(arena.take(100));
            drop(arena.take(1000));
        }
        assert_eq!(arena.allocations(), 2);
    }

    #[test]
    fn buffers_zeroed_on_checkout() {
        let arena = Arc::new(SolverArena::new());
        {
            let mut a = arena.take(8);
            a.iter_mut().for_each(|v| *v = 7.0);
        }
        let b = arena.take(8);
        assert!(b.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn detach_escapes_and_pool_refills() {
        let arena = Arc::new(SolverArena::new());
        let v = arena.take(16).detach();
        assert_eq!(v.len(), 16);
        assert_eq!(arena.pooled(), 0, "detached buffers don't return");
        drop(arena.take(16));
        assert_eq!(arena.allocations(), 2);
    }

    #[test]
    fn pool_is_bounded() {
        let arena = Arc::new(SolverArena::new());
        let bufs: Vec<_> = (0..MAX_POOLED + 10).map(|_| arena.take(4)).collect();
        drop(bufs);
        assert!(arena.pooled() <= MAX_POOLED);
    }

    #[test]
    fn pool_bytes_are_bounded() {
        let arena = Arc::new(SolverArena::new());
        // Four buffers of half the byte budget each can't all stay.
        let big = MAX_POOLED_F64S / 2;
        let bufs: Vec<_> = (0..4).map(|_| arena.take(big)).collect();
        drop(bufs);
        let total: usize = (0..arena.pooled()).count() * big;
        assert!(total <= MAX_POOLED_F64S, "pooled {} buffers of {big}", arena.pooled());
        assert!(arena.pooled() >= 1, "at least one buffer stays for reuse");
    }

    #[test]
    fn scoped_arena_wins_over_global() {
        let mine = Arc::new(SolverArena::new());
        with_arena(&mine, || {
            let inner = current_arena();
            assert!(Arc::ptr_eq(&inner, &mine));
            let nested = Arc::new(SolverArena::new());
            with_arena(&nested, || {
                assert!(Arc::ptr_eq(&current_arena(), &nested));
            });
            assert!(Arc::ptr_eq(&current_arena(), &mine));
        });
        assert!(Arc::ptr_eq(&current_arena(), SolverArena::global()));
    }
}
