//! Personalized PageRank (PPR).
//!
//! PPR replaces PageRank's uniform teleport with a distribution concentrated
//! on one or more *reference nodes*: the random surfer restarts from the
//! query instead of from anywhere. Scores then measure proximity to the
//! reference set under random walks.
//!
//! The demo paper highlights PPR's known weakness: because walks still drift
//! along the global link structure, nodes with very high in-degree ("United
//! States", the "Harry Potter" books) collect a large score *for any query*.
//! CycleRank (see [`crate::cyclerank`]) is designed to avoid exactly this.

use crate::error::AlgoError;
use crate::pagerank::{pagerank_with_teleport, Convergence, PageRankConfig};
use crate::result::ScoreVector;
use relgraph::{GraphView, NodeId};
use serde::{Deserialize, Serialize};

/// A sparse teleport (restart) distribution.
///
/// Invariant: entries are strictly positive and sum to 1; node indices are
/// unique and within bounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TeleportVector {
    n: usize,
    /// Empty means "uniform over all n nodes".
    entries: Vec<(NodeId, f64)>,
}

impl TeleportVector {
    /// Uniform distribution over `n` nodes.
    pub fn uniform(n: usize) -> Result<Self, AlgoError> {
        if n == 0 {
            return Err(AlgoError::EmptyGraph);
        }
        Ok(TeleportVector { n, entries: Vec::new() })
    }

    /// All mass on a single reference node.
    pub fn single(n: usize, node: NodeId) -> Result<Self, AlgoError> {
        Self::seeds(n, &[node])
    }

    /// The teleport distribution of a possibly-personalized run: all mass
    /// on the reference when one is given, uniform otherwise. The single
    /// construction rule every stationary-distribution algorithm shares.
    pub fn for_reference(n: usize, reference: Option<NodeId>) -> Result<Self, AlgoError> {
        match reference {
            Some(r) => Self::single(n, r),
            None => Self::uniform(n),
        }
    }

    /// Uniform over a seed set (the paper's "one or more nodes as query").
    pub fn seeds(n: usize, seeds: &[NodeId]) -> Result<Self, AlgoError> {
        if n == 0 {
            return Err(AlgoError::EmptyGraph);
        }
        if seeds.is_empty() {
            return Err(AlgoError::MissingReference);
        }
        let mut uniq: Vec<NodeId> = seeds.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        for &s in &uniq {
            if s.index() >= n {
                return Err(AlgoError::InvalidReference { node: s.raw(), node_count: n });
            }
        }
        let w = 1.0 / uniq.len() as f64;
        Ok(TeleportVector { n, entries: uniq.into_iter().map(|s| (s, w)).collect() })
    }

    /// Arbitrary non-negative weights over seed nodes (normalized to sum 1).
    pub fn weighted(n: usize, weights: &[(NodeId, f64)]) -> Result<Self, AlgoError> {
        if n == 0 {
            return Err(AlgoError::EmptyGraph);
        }
        let mut entries: Vec<(NodeId, f64)> = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for &(s, w) in weights {
            if s.index() >= n {
                return Err(AlgoError::InvalidReference { node: s.raw(), node_count: n });
            }
            if !w.is_finite() || w < 0.0 {
                return Err(AlgoError::InvalidParameter {
                    name: "teleport weight",
                    message: format!("weight {w} for node {s} must be finite and >= 0"),
                });
            }
            if w > 0.0 {
                entries.push((s, w));
                total += w;
            }
        }
        if entries.is_empty() || total <= 0.0 {
            return Err(AlgoError::MissingReference);
        }
        entries.sort_unstable_by_key(|&(s, _)| s);
        // Merge duplicates.
        let mut merged: Vec<(NodeId, f64)> = Vec::with_capacity(entries.len());
        for (s, w) in entries {
            match merged.last_mut() {
                Some(last) if last.0 == s => last.1 += w,
                _ => merged.push((s, w)),
            }
        }
        for e in &mut merged {
            e.1 /= total;
        }
        Ok(TeleportVector { n, entries: merged })
    }

    /// Dimension (node count).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Never true: constructors reject n = 0.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// True for the uniform distribution.
    pub fn is_uniform(&self) -> bool {
        self.entries.is_empty()
    }

    /// The seed nodes (empty for uniform).
    pub fn seed_nodes(&self) -> Vec<NodeId> {
        self.entries.iter().map(|&(s, _)| s).collect()
    }

    /// Probability mass at node index `i`.
    pub fn mass_at(&self, i: usize) -> f64 {
        if self.entries.is_empty() {
            1.0 / self.n as f64
        } else {
            self.entries
                .binary_search_by_key(&(i as u32), |&(s, _)| s.raw())
                .map(|pos| self.entries[pos].1)
                .unwrap_or(0.0)
        }
    }

    /// Materializes the dense probability vector.
    pub fn dense(&self) -> Vec<f64> {
        let mut v = vec![0.0; self.n];
        self.fill_dense(&mut v);
        v
    }

    /// Writes the dense probability vector into `out` (which must have
    /// exactly `len()` entries) without allocating — the solver arena's
    /// checkout path.
    pub fn fill_dense(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.n, "teleport has {} entries, buffer {}", self.n, out.len());
        if self.entries.is_empty() {
            out.fill(1.0 / self.n as f64);
        } else {
            out.fill(0.0);
            for &(s, w) in &self.entries {
                out[s.index()] = w;
            }
        }
    }

    /// Applies `f(index, mass)` to every node with non-zero teleport mass.
    /// For the uniform case this visits all nodes.
    pub fn for_each(&self, mut f: impl FnMut(usize, f64)) {
        if self.entries.is_empty() {
            let w = 1.0 / self.n as f64;
            for i in 0..self.n {
                f(i, w);
            }
        } else {
            for &(s, w) in &self.entries {
                f(s.index(), w);
            }
        }
    }
}

/// Personalized PageRank with restart at a single reference node.
///
/// This is the exact power-iteration solution; see [`crate::push`] and
/// [`crate::montecarlo`] for approximate local alternatives.
pub fn personalized_pagerank(
    view: GraphView<'_>,
    cfg: &PageRankConfig,
    reference: NodeId,
) -> Result<(ScoreVector, Convergence), AlgoError> {
    let teleport = TeleportVector::single(view.node_count(), reference)?;
    pagerank_with_teleport(view, cfg, &teleport)
}

/// Personalized PageRank with restart spread uniformly over a seed set.
pub fn personalized_pagerank_seeds(
    view: GraphView<'_>,
    cfg: &PageRankConfig,
    seeds: &[NodeId],
) -> Result<(ScoreVector, Convergence), AlgoError> {
    let teleport = TeleportVector::seeds(view.node_count(), seeds)?;
    pagerank_with_teleport(view, cfg, &teleport)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgraph::GraphBuilder;

    fn line_with_branches() -> relgraph::DirectedGraph {
        // 0 <-> 1 <-> 2, and 3 -> 2 (3 unreachable from 0).
        GraphBuilder::from_edge_indices([(0, 1), (1, 0), (1, 2), (2, 1), (3, 2)])
    }

    #[test]
    fn teleport_uniform_dense() {
        let t = TeleportVector::uniform(4).unwrap();
        assert!(t.is_uniform());
        assert_eq!(t.dense(), vec![0.25; 4]);
        assert_eq!(t.mass_at(2), 0.25);
    }

    #[test]
    fn teleport_single() {
        let t = TeleportVector::single(3, NodeId::new(1)).unwrap();
        assert_eq!(t.dense(), vec![0.0, 1.0, 0.0]);
        assert_eq!(t.seed_nodes(), vec![NodeId::new(1)]);
        assert_eq!(t.mass_at(0), 0.0);
        assert_eq!(t.mass_at(1), 1.0);
    }

    #[test]
    fn teleport_seed_dedup() {
        let t =
            TeleportVector::seeds(4, &[NodeId::new(2), NodeId::new(2), NodeId::new(0)]).unwrap();
        assert_eq!(t.dense(), vec![0.5, 0.0, 0.5, 0.0]);
    }

    #[test]
    fn teleport_weighted_normalizes_and_merges() {
        let t = TeleportVector::weighted(
            3,
            &[(NodeId::new(0), 1.0), (NodeId::new(2), 2.0), (NodeId::new(0), 1.0)],
        )
        .unwrap();
        let d = t.dense();
        assert!((d[0] - 0.5).abs() < 1e-12);
        assert!((d[2] - 0.5).abs() < 1e-12);
        assert_eq!(d[1], 0.0);
    }

    #[test]
    fn teleport_errors() {
        assert!(TeleportVector::uniform(0).is_err());
        assert!(TeleportVector::seeds(3, &[]).is_err());
        assert!(TeleportVector::single(3, NodeId::new(9)).is_err());
        assert!(TeleportVector::weighted(3, &[(NodeId::new(0), 0.0)]).is_err());
        assert!(TeleportVector::weighted(3, &[(NodeId::new(0), f64::NAN)]).is_err());
        assert!(TeleportVector::weighted(3, &[(NodeId::new(0), -1.0)]).is_err());
    }

    #[test]
    fn ppr_sums_to_one_and_localizes() {
        let g = line_with_branches();
        let (s, conv) =
            personalized_pagerank(g.view(), &PageRankConfig::default(), NodeId::new(0)).unwrap();
        assert!(conv.converged);
        assert!((s.sum() - 1.0).abs() < 1e-8);
        // Node 3 is not reachable from the seed: zero score.
        assert_eq!(s.get(NodeId::new(3)), 0.0);
        // Closer nodes score higher.
        assert!(s.get(NodeId::new(1)) > s.get(NodeId::new(2)));
        // With a restart-heavy walk (low α) the seed itself dominates.
        // (With high α a well-connected neighbor may legitimately outscore
        // the seed — that is PPR's documented drift toward central nodes.)
        let (s_low, _) =
            personalized_pagerank(g.view(), &PageRankConfig::with_damping(0.3), NodeId::new(0))
                .unwrap();
        assert_eq!(s_low.argmax(), Some(NodeId::new(0)));
    }

    #[test]
    fn ppr_seed_set_mixture() {
        let g = line_with_branches();
        let cfg = PageRankConfig::default();
        let (s01, _) =
            personalized_pagerank_seeds(g.view(), &cfg, &[NodeId::new(0), NodeId::new(3)]).unwrap();
        let (s0, _) = personalized_pagerank(g.view(), &cfg, NodeId::new(0)).unwrap();
        let (s3, _) = personalized_pagerank(g.view(), &cfg, NodeId::new(3)).unwrap();
        // PPR is linear in the teleport vector: seeds {0,3} = avg of singles.
        for u in g.nodes() {
            let want = 0.5 * (s0.get(u) + s3.get(u));
            assert!((s01.get(u) - want).abs() < 1e-6, "node {u:?}");
        }
    }

    #[test]
    fn ppr_low_alpha_concentrates_on_seed() {
        let g = line_with_branches();
        let (hi, _) =
            personalized_pagerank(g.view(), &PageRankConfig::with_damping(0.9), NodeId::new(0))
                .unwrap();
        let (lo, _) =
            personalized_pagerank(g.view(), &PageRankConfig::with_damping(0.1), NodeId::new(0))
                .unwrap();
        assert!(lo.get(NodeId::new(0)) > hi.get(NodeId::new(0)));
    }

    #[test]
    fn ppr_missing_reference_error() {
        let g = line_with_branches();
        assert!(matches!(
            personalized_pagerank(g.view(), &PageRankConfig::default(), NodeId::new(42)),
            Err(AlgoError::InvalidReference { .. })
        ));
    }

    #[test]
    fn ppr_dangling_mass_returns_to_seed() {
        // 0 -> 1, 1 dangles: dangling mass teleports back to 0.
        let g = GraphBuilder::from_edge_indices([(0, 1)]);
        let (s, _) =
            personalized_pagerank(g.view(), &PageRankConfig::default(), NodeId::new(0)).unwrap();
        assert!((s.sum() - 1.0).abs() < 1e-8);
        assert!(s.get(NodeId::new(0)) > 0.0);
        assert!(s.get(NodeId::new(1)) > 0.0);
    }
}
