//! Multi-threaded PageRank: compatibility shims over the shared
//! [`crate::solver::SweepKernel`] with [`Scheme::Parallel`].
//!
//! The chunked pull sweep itself lives in [`crate::solver`]; this module
//! keeps the pre-refactor entry points compiling. New code should
//! construct a kernel (or go through [`crate::Query::threads`]).

use crate::error::AlgoError;
use crate::pagerank::{Convergence, PageRankConfig};
use crate::ppr::TeleportVector;
use crate::result::ScoreVector;
use crate::solver::{Scheme, SweepKernel};
use relgraph::GraphView;

/// Parallel PageRank with an arbitrary teleport vector over `threads`
/// worker threads (clamped to available parallelism and node count).
pub fn pagerank_parallel(
    view: GraphView<'_>,
    cfg: &PageRankConfig,
    teleport: &TeleportVector,
    threads: usize,
) -> Result<(ScoreVector, Convergence), AlgoError> {
    let kernel = SweepKernel::new(view)?;
    let out = kernel.solve(&cfg.solver_config(Scheme::Parallel, threads.max(1)), teleport)?;
    Ok((out.scores, out.convergence))
}

/// Global parallel PageRank (uniform teleport).
pub fn pagerank_par(
    view: GraphView<'_>,
    cfg: &PageRankConfig,
    threads: usize,
) -> Result<(ScoreVector, Convergence), AlgoError> {
    let teleport = TeleportVector::uniform(view.node_count())?;
    pagerank_parallel(view, cfg, &teleport, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank::pagerank;
    use relgraph::GraphBuilder;

    #[test]
    fn shim_matches_sequential() {
        let mut b = GraphBuilder::new();
        b.ensure_node(99);
        let mut x = 99u64 | 1;
        for _ in 0..700 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let u = (x % 100) as u32;
            let v = ((x >> 20) % 100) as u32;
            if u != v {
                b.add_edge_indices(u, v);
            }
        }
        let g = b.build();
        let cfg = PageRankConfig { damping: 0.85, tolerance: 1e-12, max_iterations: 500 };
        let (seq, _) = pagerank(g.view(), &cfg).unwrap();
        for threads in [1, 2, 4] {
            let (par, conv) = pagerank_par(g.view(), &cfg, threads).unwrap();
            assert!(conv.converged);
            for u in g.nodes() {
                assert!((seq.get(u) - par.get(u)).abs() < 1e-9, "threads={threads} node {u:?}");
            }
        }
    }

    #[test]
    fn personalized_teleport_supported() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 0), (1, 2), (2, 1)]);
        let cfg = PageRankConfig { damping: 0.85, tolerance: 1e-12, max_iterations: 500 };
        let seed = relgraph::NodeId::new(0);
        let teleport = TeleportVector::single(g.node_count(), seed).unwrap();
        let (par, _) = pagerank_parallel(g.view(), &cfg, &teleport, 2).unwrap();
        let (seq, _) = crate::ppr::personalized_pagerank(g.view(), &cfg, seed).unwrap();
        for u in g.nodes() {
            assert!((par.get(u) - seq.get(u)).abs() < 1e-9, "node {u:?}");
        }
    }

    #[test]
    fn invalid_inputs() {
        let empty = GraphBuilder::new().build();
        assert!(pagerank_par(empty.view(), &PageRankConfig::default(), 2).is_err());
    }
}
