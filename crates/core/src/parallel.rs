//! Multi-threaded PageRank power iteration.
//!
//! The demo platform's computational nodes "can be scaled up or down";
//! within one node, the dominant cost is the per-iteration edge sweep.
//! This module parallelizes it with crossbeam scoped threads in a
//! *pull* formulation: the node range is split into contiguous chunks, and
//! each thread computes the new scores of its chunk by reading the
//! (immutable) previous vector over the in-adjacency — no locks, no atomic
//! contention, deterministic results identical to the sequential solver up
//! to floating-point addend order within a node (which is also identical,
//! since each node's sum is accumulated by exactly one thread in in-
//! neighbor order).

use crate::error::AlgoError;
use crate::pagerank::{Convergence, PageRankConfig};
use crate::ppr::TeleportVector;
use crate::result::ScoreVector;
use relgraph::{GraphView, NodeId};

/// Parallel PageRank with an arbitrary teleport vector over `threads`
/// worker threads (clamped to ≥ 1).
pub fn pagerank_parallel(
    view: GraphView<'_>,
    cfg: &PageRankConfig,
    teleport: &TeleportVector,
    threads: usize,
) -> Result<(ScoreVector, Convergence), AlgoError> {
    cfg.validate()?;
    let n = view.node_count();
    if n == 0 {
        return Err(AlgoError::EmptyGraph);
    }
    if teleport.len() != n {
        return Err(AlgoError::InvalidParameter {
            name: "teleport",
            message: format!("teleport vector has {} entries for {} nodes", teleport.len(), n),
        });
    }
    let threads = threads.max(1).min(n);

    let alpha = cfg.damping;
    let inv_wsum: Vec<f64> = (0..n)
        .map(|i| {
            let w = view.out_weight_sum(NodeId::from_usize(i));
            if w > 0.0 {
                1.0 / w
            } else {
                0.0
            }
        })
        .collect();
    let teleport_dense = teleport.dense();

    let mut x: Vec<f64> = teleport_dense.clone();
    let mut next = vec![0.0f64; n];
    let mut iterations = 0;
    let mut residual = f64::INFINITY;
    let chunk = n.div_ceil(threads);

    while iterations < cfg.max_iterations {
        iterations += 1;
        let dangling: f64 = (0..n).filter(|&i| inv_wsum[i] == 0.0).map(|i| x[i]).sum();
        let base = 1.0 - alpha + alpha * dangling;

        let x_ref = &x;
        let inv_ref = &inv_wsum;
        let tel_ref = &teleport_dense;
        // Each thread owns a disjoint &mut chunk of `next` and a slot of
        // the per-thread residual vector.
        let mut partial_residuals = vec![0.0f64; threads];
        crossbeam::thread::scope(|s| {
            let mut rest: &mut [f64] = &mut next;
            let mut start = 0usize;
            for r_slot in partial_residuals.iter_mut() {
                let take = chunk.min(rest.len());
                let (mine, tail) = rest.split_at_mut(take);
                rest = tail;
                let lo = start;
                start += take;
                s.spawn(move |_| {
                    let mut local_res = 0.0;
                    for (off, out) in mine.iter_mut().enumerate() {
                        let v = NodeId::from_usize(lo + off);
                        let mut pulled = 0.0;
                        match view.in_weights(v) {
                            Some(ws) => {
                                for (j, &u) in view.in_neighbors(v).iter().enumerate() {
                                    pulled += x_ref[u.index()] * ws[j] * inv_ref[u.index()];
                                }
                            }
                            None => {
                                for &u in view.in_neighbors(v) {
                                    pulled += x_ref[u.index()] * inv_ref[u.index()];
                                }
                            }
                        }
                        let new = alpha * pulled + base * tel_ref[lo + off];
                        local_res += (new - x_ref[lo + off]).abs();
                        *out = new;
                    }
                    *r_slot = local_res;
                });
                if rest.is_empty() {
                    break;
                }
            }
        })
        .expect("worker thread panicked");

        residual = partial_residuals.iter().sum();
        std::mem::swap(&mut x, &mut next);
        if residual < cfg.tolerance {
            break;
        }
    }

    let converged = residual < cfg.tolerance;
    Ok((ScoreVector::new(x), Convergence { iterations, residual, converged }))
}

/// Global parallel PageRank (uniform teleport).
pub fn pagerank_par(
    view: GraphView<'_>,
    cfg: &PageRankConfig,
    threads: usize,
) -> Result<(ScoreVector, Convergence), AlgoError> {
    let teleport = TeleportVector::uniform(view.node_count())?;
    pagerank_parallel(view, cfg, &teleport, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank::pagerank;
    use relgraph::GraphBuilder;

    fn random_graph(nodes: u32, edges: usize, seed: u64) -> relgraph::DirectedGraph {
        let mut b = GraphBuilder::new();
        b.ensure_node(nodes - 1);
        let mut x = seed | 1;
        for _ in 0..edges {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let u = (x % nodes as u64) as u32;
            let v = ((x >> 20) % nodes as u64) as u32;
            if u != v {
                b.add_edge_indices(u, v);
            }
        }
        b.build()
    }

    #[test]
    fn matches_sequential_exactly_shaped() {
        let g = random_graph(300, 2500, 99);
        let cfg = PageRankConfig { damping: 0.85, tolerance: 1e-12, max_iterations: 500 };
        let (seq, _) = pagerank(g.view(), &cfg).unwrap();
        for threads in [1, 2, 4, 7] {
            let (par, conv) = pagerank_par(g.view(), &cfg, threads).unwrap();
            assert!(conv.converged);
            for u in g.nodes() {
                assert!((seq.get(u) - par.get(u)).abs() < 1e-9, "threads={threads} node {u:?}");
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let g = random_graph(200, 1500, 5);
        let cfg = PageRankConfig::default();
        let (a, _) = pagerank_par(g.view(), &cfg, 4).unwrap();
        let (b, _) = pagerank_par(g.view(), &cfg, 4).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn more_threads_than_nodes() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 0)]);
        let (s, _) = pagerank_par(g.view(), &PageRankConfig::default(), 64).unwrap();
        assert!((s.sum() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn personalized_teleport_supported() {
        let g = random_graph(100, 700, 3);
        let cfg = PageRankConfig { damping: 0.85, tolerance: 1e-12, max_iterations: 500 };
        let seed = relgraph::NodeId::new(42);
        let teleport = TeleportVector::single(g.node_count(), seed).unwrap();
        let (par, _) = pagerank_parallel(g.view(), &cfg, &teleport, 3).unwrap();
        let (seq, _) = crate::ppr::personalized_pagerank(g.view(), &cfg, seed).unwrap();
        for u in g.nodes() {
            assert!((par.get(u) - seq.get(u)).abs() < 1e-9, "node {u:?}");
        }
    }

    #[test]
    fn dangling_handled() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 2)]); // 2 dangles
        let (s, _) = pagerank_par(g.view(), &PageRankConfig::default(), 2).unwrap();
        assert!((s.sum() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_inputs() {
        let empty = GraphBuilder::new().build();
        assert!(pagerank_par(empty.view(), &PageRankConfig::default(), 2).is_err());
    }
}
