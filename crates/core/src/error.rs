//! Error type shared by the relevance algorithms.

use std::fmt;

/// Errors produced by the relevance algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgoError {
    /// The graph has no nodes.
    EmptyGraph,
    /// The reference/seed node index is out of bounds.
    InvalidReference {
        /// Offending node index.
        node: u32,
        /// Graph node count.
        node_count: usize,
    },
    /// A personalized algorithm was invoked without a reference node.
    MissingReference,
    /// The damping factor α must lie in (0, 1).
    InvalidDamping(f64),
    /// The maximum cycle length K must be ≥ 2.
    InvalidMaxCycleLength(u32),
    /// A numeric parameter was out of range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable constraint violated.
        message: String,
    },
    /// The algorithm needs O(1) indexed neighbor access, which only the
    /// standard CSR tier provides; the graph is stored in the compact
    /// delta-encoded tier.
    UnsupportedTier {
        /// Algorithm that refused to run.
        algorithm: &'static str,
    },
}

impl fmt::Display for AlgoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgoError::EmptyGraph => write!(f, "graph has no nodes"),
            AlgoError::InvalidReference { node, node_count } => {
                write!(f, "reference node {node} out of bounds ({node_count} nodes)")
            }
            AlgoError::MissingReference => {
                write!(f, "personalized algorithm requires a reference node")
            }
            AlgoError::InvalidDamping(a) => {
                write!(f, "damping factor must be in (0, 1), got {a}")
            }
            AlgoError::InvalidMaxCycleLength(k) => {
                write!(f, "maximum cycle length K must be >= 2, got {k}")
            }
            AlgoError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter {name}: {message}")
            }
            AlgoError::UnsupportedTier { algorithm } => {
                write!(
                    f,
                    "{algorithm} requires the standard CSR representation; \
                     the dataset is stored in the compact tier"
                )
            }
        }
    }
}

impl std::error::Error for AlgoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_all_variants() {
        assert!(AlgoError::EmptyGraph.to_string().contains("no nodes"));
        assert!(AlgoError::InvalidReference { node: 9, node_count: 3 }.to_string().contains("9"));
        assert!(AlgoError::MissingReference.to_string().contains("reference"));
        assert!(AlgoError::InvalidDamping(1.5).to_string().contains("1.5"));
        assert!(AlgoError::InvalidMaxCycleLength(1).to_string().contains("K"));
        let e = AlgoError::InvalidParameter { name: "epsilon", message: "must be > 0".into() };
        assert!(e.to_string().contains("epsilon"));
    }
}
