//! The global [`AlgorithmRegistry`]: one lookup table from algorithm id
//! (or alias) to implementation, shared by the engine executor, the HTTP
//! routes, the CLI, and the bench harness.
//!
//! The registry replaces the closed `Algorithm`-enum dispatch of the seed
//! codebase: the seven paper algorithms are registered at first access,
//! and third-party algorithms can be added at runtime with
//! [`AlgorithmRegistry::register`] — no workspace crate needs to change to
//! serve a new ranker through the whole stack.

use crate::algorithm::{AlgorithmDescriptor, RelevanceAlgorithm};
use crate::builtin;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

/// Error returned by [`AlgorithmRegistry::register`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The id (or one of the aliases) is already taken.
    DuplicateId(String),
    /// The id is empty or not in normalized form.
    InvalidId(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::DuplicateId(id) => {
                write!(f, "algorithm id {id:?} is already registered")
            }
            RegistryError::InvalidId(id) => {
                write!(f, "invalid algorithm id {id:?} (lowercase, non-empty, no spaces)")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// Normalizes a lookup name the same way `Algorithm::from_str` does:
/// lowercase with `-`, `_` and spaces removed, so `Monte-Carlo`-style
/// spellings and the paper's display names all resolve.
pub fn normalize_key(name: &str) -> String {
    name.to_ascii_lowercase().replace(['-', '_', ' '], "")
}

#[derive(Default)]
struct Inner {
    order: Vec<Arc<dyn RelevanceAlgorithm>>,
    by_key: HashMap<String, usize>,
}

/// Thread-safe id → algorithm lookup table.
///
/// Most callers want the process-wide [`AlgorithmRegistry::global`]
/// instance, which comes pre-loaded with the seven paper algorithms.
/// Isolated instances ([`AlgorithmRegistry::new`]) exist for tests.
///
/// # Registering a custom algorithm
///
/// The registry is the extension point of the whole platform: register an
/// implementation once and it becomes invocable through
/// [`Query`](crate::query::Query), and therefore through the engine, the
/// HTTP API, and the CLI:
///
/// ```
/// use relcore::algorithm::RelevanceAlgorithm;
/// use relcore::registry::AlgorithmRegistry;
/// use relcore::runner::{AlgorithmParams, RelevanceOutput};
/// use relcore::{AlgoError, Query, ScoreVector};
/// use relgraph::{DirectedGraph, GraphBuilder, NodeId};
/// use std::sync::Arc;
///
/// /// An out-of-tree ranker: score = out-degree.
/// struct DegreeRank;
///
/// impl RelevanceAlgorithm for DegreeRank {
///     fn id(&self) -> &str {
///         "degreerank"
///     }
///
///     fn display_name(&self) -> &str {
///         "DegreeRank"
///     }
///
///     fn is_personalized(&self) -> bool {
///         false
///     }
///
///     fn execute(
///         &self,
///         graph: &DirectedGraph,
///         _params: &AlgorithmParams,
///         _reference: Option<NodeId>,
///     ) -> Result<RelevanceOutput, AlgoError> {
///         let scores = ScoreVector::new(
///             graph.nodes().map(|u| graph.out_neighbors(u).len() as f64).collect(),
///         );
///         Ok(RelevanceOutput {
///             algorithm: self.id().to_string(),
///             ranking: scores.ranking(),
///             scores: Some(scores),
///             top: None,
///             convergence: None,
///             trace: None,
///             cycles_found: None,
///         })
///     }
/// }
///
/// // Register once at startup...
/// AlgorithmRegistry::global().register(Arc::new(DegreeRank)).unwrap();
///
/// // ...and the new id works through the uniform Query front door.
/// let mut b = GraphBuilder::new();
/// b.add_labeled_edge("hub", "a");
/// b.add_labeled_edge("hub", "b");
/// b.add_labeled_edge("a", "hub");
/// let g = b.build();
/// let result = Query::on(g).algorithm("degreerank").top(1).run().unwrap();
/// assert_eq!(result.top_entries()[0].0, "hub");
/// ```
#[derive(Default)]
pub struct AlgorithmRegistry {
    inner: RwLock<Inner>,
}

impl AlgorithmRegistry {
    /// Creates an empty registry (no built-ins). Mainly for tests.
    pub fn new() -> Self {
        AlgorithmRegistry::default()
    }

    /// The process-wide registry, with the seven paper algorithms
    /// registered on first access.
    pub fn global() -> &'static AlgorithmRegistry {
        static GLOBAL: OnceLock<AlgorithmRegistry> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let registry = AlgorithmRegistry::new();
            registry.register_builtins().expect("built-in ids are unique");
            registry
        })
    }

    /// Registers the seven paper algorithms (idempotent on a fresh
    /// registry; errors on id collisions).
    pub fn register_builtins(&self) -> Result<(), RegistryError> {
        self.register(Arc::new(builtin::PageRankAlgorithm))?;
        self.register(Arc::new(builtin::PersonalizedPageRankAlgorithm))?;
        self.register(Arc::new(builtin::CheiRankAlgorithm))?;
        self.register(Arc::new(builtin::PersonalizedCheiRankAlgorithm))?;
        self.register(Arc::new(builtin::TwoDRankAlgorithm))?;
        self.register(Arc::new(builtin::PersonalizedTwoDRankAlgorithm))?;
        self.register(Arc::new(builtin::CycleRankAlgorithm))?;
        Ok(())
    }

    /// Registers an algorithm under its id and aliases.
    pub fn register(&self, algo: Arc<dyn RelevanceAlgorithm>) -> Result<(), RegistryError> {
        let id = algo.id().to_string();
        if id.is_empty() || id.contains(char::is_whitespace) || id != id.to_ascii_lowercase() {
            return Err(RegistryError::InvalidId(id));
        }
        let mut keys: Vec<String> = vec![normalize_key(&id)];
        for alias in algo.aliases() {
            keys.push(normalize_key(alias));
        }
        keys.dedup();
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        for key in &keys {
            if inner.by_key.contains_key(key) {
                return Err(RegistryError::DuplicateId(key.clone()));
            }
        }
        let idx = inner.order.len();
        inner.order.push(algo);
        for key in keys {
            inner.by_key.insert(key, idx);
        }
        Ok(())
    }

    /// Looks up an algorithm by id, alias, or display name (normalized).
    pub fn get(&self, name: &str) -> Option<Arc<dyn RelevanceAlgorithm>> {
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        let key = normalize_key(name);
        if let Some(&idx) = inner.by_key.get(&key) {
            return Some(Arc::clone(&inner.order[idx]));
        }
        // Fall back to display names ("Pers. PageRank" → ppr).
        inner.order.iter().find(|a| normalize_key(a.display_name()) == key).map(Arc::clone)
    }

    /// All registered algorithms, in registration order.
    pub fn list(&self) -> Vec<Arc<dyn RelevanceAlgorithm>> {
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        inner.order.iter().map(Arc::clone).collect()
    }

    /// Serializable descriptors of every registered algorithm, in
    /// registration order (what `GET /api/algorithms` serves).
    pub fn descriptors(&self) -> Vec<AlgorithmDescriptor> {
        self.list().iter().map(|a| AlgorithmDescriptor::of(a.as_ref())).collect()
    }

    /// Number of registered algorithms.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap_or_else(|e| e.into_inner()).order.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Algorithm;

    #[test]
    fn global_has_the_seven_paper_algorithms() {
        let reg = AlgorithmRegistry::global();
        assert!(reg.len() >= 7);
        for algo in Algorithm::ALL {
            let found = reg.get(algo.id()).unwrap_or_else(|| panic!("{} missing", algo.id()));
            assert_eq!(found.id(), algo.id());
            assert_eq!(found.is_personalized(), algo.is_personalized());
            assert_eq!(found.produces_scores(), algo.produces_scores());
            assert_eq!(found.display_name(), algo.display_name());
        }
    }

    #[test]
    fn aliases_and_display_names_resolve() {
        let reg = AlgorithmRegistry::global();
        assert_eq!(reg.get("pr").unwrap().id(), "pagerank");
        assert_eq!(reg.get("PageRank").unwrap().id(), "pagerank");
        assert_eq!(reg.get("personalized_page_rank").unwrap().id(), "ppr");
        assert_eq!(reg.get("2drank").unwrap().id(), "2drank");
        assert_eq!(reg.get("Pers. CheiRank").unwrap().id(), "pcheirank");
        assert_eq!(reg.get("CYCLE-RANK").unwrap().id(), "cyclerank");
        assert!(reg.get("zerank").is_none());
    }

    #[test]
    fn register_rejects_collisions_and_bad_ids() {
        let reg = AlgorithmRegistry::new();
        reg.register_builtins().unwrap();
        assert!(matches!(
            reg.register(std::sync::Arc::new(builtin::PageRankAlgorithm)),
            Err(RegistryError::DuplicateId(_))
        ));

        struct BadId;
        impl crate::algorithm::RelevanceAlgorithm for BadId {
            fn id(&self) -> &str {
                "Bad Id"
            }
            fn display_name(&self) -> &str {
                "bad"
            }
            fn is_personalized(&self) -> bool {
                false
            }
            fn execute(
                &self,
                _: &relgraph::DirectedGraph,
                _: &crate::runner::AlgorithmParams,
                _: Option<relgraph::NodeId>,
            ) -> Result<crate::runner::RelevanceOutput, crate::AlgoError> {
                unreachable!()
            }
        }
        assert!(matches!(
            reg.register(std::sync::Arc::new(BadId)),
            Err(RegistryError::InvalidId(_))
        ));
    }

    #[test]
    fn descriptors_expose_parameter_schemas() {
        let reg = AlgorithmRegistry::new();
        reg.register_builtins().unwrap();
        let descriptors = reg.descriptors();
        assert_eq!(descriptors.len(), 7);
        let cr = descriptors.iter().find(|d| d.id == "cyclerank").unwrap();
        assert!(cr.personalized);
        assert!(cr.parameters.iter().any(|p| p.name == "max_cycle_len"));
        let pr = descriptors.iter().find(|d| d.id == "pagerank").unwrap();
        assert!(pr.parameters.iter().any(|p| p.name == "damping"));
        assert!(!pr.personalized);
    }
}
