//! PageRank: the forward-view, uniform-teleport parameterization of the
//! shared [`crate::solver::SweepKernel`].
//!
//! PageRank (Page et al., 1999) models a random surfer that, at each step,
//! follows a uniformly random out-edge with probability α (the *damping
//! factor*, conventionally 0.85) and teleports to a random node with
//! probability 1−α. The stationary distribution of this process is the
//! PageRank score. The same iteration with a non-uniform teleport
//! distribution yields Personalized PageRank (see [`crate::ppr`]).
//!
//! The iteration itself lives in [`crate::solver`]; this module keeps the
//! classic entry points ([`pagerank`], [`pagerank_with_teleport`]) as
//! sequential power-iteration shims over the kernel, plus the
//! [`PageRankConfig`] parameter struct the task JSON and benches use.
//! Dangling-node mass is redistributed along the teleport distribution,
//! keeping the score a proper probability vector (sums to 1); convergence
//! stops when the L1 change falls below `tolerance` or after
//! `max_iterations`, reported in [`Convergence`].

use crate::error::AlgoError;
use crate::ppr::TeleportVector;
use crate::result::ScoreVector;
use crate::solver::{Precision, Scheme, SolverConfig, SweepKernel};
use relgraph::GraphView;
use serde::{Deserialize, Serialize};

pub use crate::solver::Convergence;

/// Parameters of the PageRank iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PageRankConfig {
    /// Damping factor α ∈ (0, 1): probability of following a link rather
    /// than teleporting. The paper uses 0.85 for global PageRank and 0.3 or
    /// 0.85 for the personalized runs in Tables I–II.
    pub damping: f64,
    /// Stop when the L1 norm of the score change drops below this.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig { damping: 0.85, tolerance: 1e-10, max_iterations: 200 }
    }
}

impl PageRankConfig {
    /// Config with a specific damping factor and default tolerances.
    pub fn with_damping(damping: f64) -> Self {
        PageRankConfig { damping, ..Default::default() }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), AlgoError> {
        self.solver_config(Scheme::Power, 1).validate()
    }

    /// The kernel configuration these parameters describe, under a given
    /// update scheme and thread count.
    pub fn solver_config(&self, scheme: Scheme, threads: usize) -> SolverConfig {
        SolverConfig {
            damping: self.damping,
            tolerance: self.tolerance,
            max_iterations: self.max_iterations,
            scheme,
            threads,
            record_trace: false,
            precision: Precision::default(),
        }
    }
}

/// Classic (global) PageRank: uniform teleport over all nodes, sequential
/// power iteration.
pub fn pagerank(
    view: GraphView<'_>,
    cfg: &PageRankConfig,
) -> Result<(ScoreVector, Convergence), AlgoError> {
    let teleport = TeleportVector::uniform(view.node_count())?;
    pagerank_with_teleport(view, cfg, &teleport)
}

/// PageRank with an arbitrary teleport vector (Personalized PageRank when
/// concentrated on reference nodes), sequential power iteration.
pub fn pagerank_with_teleport(
    view: GraphView<'_>,
    cfg: &PageRankConfig,
    teleport: &TeleportVector,
) -> Result<(ScoreVector, Convergence), AlgoError> {
    let kernel = SweepKernel::new(view)?;
    let out = kernel.solve(&cfg.solver_config(Scheme::Power, 1), teleport)?;
    Ok((out.scores, out.convergence))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgraph::{GraphBuilder, NodeId};

    fn pr(g: &relgraph::DirectedGraph, damping: f64) -> ScoreVector {
        pagerank(g.view(), &PageRankConfig::with_damping(damping)).unwrap().0
    }

    #[test]
    fn scores_sum_to_one() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 2), (2, 0), (0, 2)]);
        let s = pr(&g, 0.85);
        assert!((s.sum() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        // Directed 4-cycle: perfect symmetry => uniform scores.
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 2), (2, 3), (3, 0)]);
        let s = pr(&g, 0.85);
        for u in g.nodes() {
            assert!((s.get(u) - 0.25).abs() < 1e-8, "node {u:?}: {}", s.get(u));
        }
    }

    #[test]
    fn hub_outranks_spokes() {
        // Star pointing at node 0 from 1..=5; 0 points back at 1.
        let mut b = GraphBuilder::new();
        for i in 1..=5 {
            b.add_edge_indices(i, 0);
        }
        b.add_edge_indices(0, 1);
        let g = b.build();
        let s = pr(&g, 0.85);
        for i in 1..=5u32 {
            assert!(s.get(NodeId::new(0)) > s.get(NodeId::new(i)));
        }
        // Node 1 gets 0's endorsement: beats 2..=5.
        for i in 2..=5u32 {
            assert!(s.get(NodeId::new(1)) > s.get(NodeId::new(i)));
        }
    }

    #[test]
    fn dangling_mass_conserved() {
        // 0 -> 1, 1 dangles.
        let g = GraphBuilder::from_edge_indices([(0, 1)]);
        let s = pr(&g, 0.85);
        assert!((s.sum() - 1.0).abs() < 1e-8);
        assert!(s.get(NodeId::new(1)) > s.get(NodeId::new(0)));
    }

    #[test]
    fn all_dangling_uniform() {
        let mut b = GraphBuilder::new();
        b.ensure_node(3);
        let g = b.build();
        let s = pr(&g, 0.85);
        for u in g.nodes() {
            assert!((s.get(u) - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn converges_and_reports() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 0)]);
        let (_, conv) = pagerank(g.view(), &PageRankConfig::default()).unwrap();
        assert!(conv.converged);
        assert!(conv.iterations > 0);
        assert!(conv.residual < 1e-10);
    }

    #[test]
    fn max_iterations_respected() {
        // Asymmetric graph so uniform start is NOT already stationary.
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 2), (2, 0), (0, 2)]);
        let cfg = PageRankConfig { damping: 0.85, tolerance: 1e-30, max_iterations: 3 };
        let (_, conv) = pagerank(g.view(), &cfg).unwrap();
        assert_eq!(conv.iterations, 3);
        assert!(!conv.converged);
    }

    #[test]
    fn invalid_configs_rejected() {
        let g = GraphBuilder::from_edge_indices([(0, 1)]);
        for bad in [0.0, 1.0, -0.5, 1.5] {
            let cfg = PageRankConfig::with_damping(bad);
            assert!(matches!(pagerank(g.view(), &cfg), Err(AlgoError::InvalidDamping(_))));
        }
        let cfg = PageRankConfig { tolerance: 0.0, ..Default::default() };
        assert!(pagerank(g.view(), &cfg).is_err());
        let cfg = PageRankConfig { max_iterations: 0, ..Default::default() };
        assert!(pagerank(g.view(), &cfg).is_err());
    }

    #[test]
    fn empty_graph_rejected() {
        let g = GraphBuilder::new().build();
        assert!(matches!(
            pagerank(g.view(), &PageRankConfig::default()),
            Err(AlgoError::EmptyGraph)
        ));
    }

    #[test]
    fn weighted_edges_bias_scores() {
        // 0 splits mass between 1 (weight 9) and 2 (weight 1).
        let mut b = GraphBuilder::new();
        b.add_weighted_edge(NodeId::new(0), NodeId::new(1), 9.0);
        b.add_weighted_edge(NodeId::new(0), NodeId::new(2), 1.0);
        b.add_weighted_edge(NodeId::new(1), NodeId::new(0), 1.0);
        b.add_weighted_edge(NodeId::new(2), NodeId::new(0), 1.0);
        let g = b.build();
        let s = pr(&g, 0.85);
        assert!(s.get(NodeId::new(1)) > s.get(NodeId::new(2)));
        assert!((s.sum() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn lower_damping_flattens_scores() {
        // With tiny alpha, scores approach uniform teleport regardless of structure.
        let mut b = GraphBuilder::new();
        for i in 1..=9 {
            b.add_edge_indices(i, 0);
        }
        b.add_edge_indices(0, 1);
        let g = b.build();
        let hi = pr(&g, 0.95);
        let lo = pr(&g, 0.05);
        let spread = |s: &ScoreVector| {
            let max = s.as_slice().iter().cloned().fold(f64::MIN, f64::max);
            let min = s.as_slice().iter().cloned().fold(f64::MAX, f64::min);
            max - min
        };
        assert!(spread(&hi) > spread(&lo));
    }

    #[test]
    fn transposed_view_gives_cheirank_semantics() {
        // In 0 -> 1, PageRank favors 1; on the transposed view it favors 0.
        let g = GraphBuilder::from_edge_indices([(0, 1)]);
        let fwd = pagerank(g.view(), &PageRankConfig::default()).unwrap().0;
        let rev = pagerank(g.transposed(), &PageRankConfig::default()).unwrap().0;
        assert!(fwd.get(NodeId::new(1)) > fwd.get(NodeId::new(0)));
        assert!(rev.get(NodeId::new(0)) > rev.get(NodeId::new(1)));
    }
}
