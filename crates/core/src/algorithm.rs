//! The open algorithm API: the [`RelevanceAlgorithm`] trait and its
//! serializable metadata types.
//!
//! The seed codebase dispatched every invocation through a closed
//! `Algorithm` enum and a 300-line `match` in `runner::run`. This module
//! replaces that contract with an object-safe trait: any type implementing
//! [`RelevanceAlgorithm`] can be registered in the
//! [`crate::registry::AlgorithmRegistry`] and invoked through
//! [`crate::query::Query`] — including algorithms defined outside this
//! crate. The seven paper algorithms are themselves trait implementations
//! ([`crate::builtin`]); nothing in the platform treats them specially.

use crate::error::AlgoError;
use crate::runner::{AlgorithmParams, RelevanceOutput};
use relgraph::{DirectedGraph, NodeId};
use serde::Serialize;

/// A personalized (or global) relevance algorithm over directed graphs.
///
/// Implementations must be cheap to construct and stateless: one instance
/// serves every query concurrently (the trait requires `Send + Sync`).
/// Metadata methods drive the CLI's `algorithms` table, the server's
/// `GET /api/algorithms` endpoint, and the task builder's validation.
///
/// # Implementing an out-of-tree algorithm
///
/// See [`crate::registry::AlgorithmRegistry`] for a complete registration
/// example.
pub trait RelevanceAlgorithm: Send + Sync {
    /// Stable machine identifier (lowercase, no spaces), e.g. `cyclerank`.
    fn id(&self) -> &str;

    /// Human-readable name as shown in result tables, e.g. `Cyclerank`.
    fn display_name(&self) -> &str;

    /// Alternative lookup names (already normalized: lowercase, no
    /// `-`/`_`/space). The registry resolves these alongside [`Self::id`].
    fn aliases(&self) -> &[&str] {
        &[]
    }

    /// True if the algorithm needs a reference node.
    fn is_personalized(&self) -> bool;

    /// True if the algorithm produces per-node scores (as opposed to a
    /// ranking only, like 2DRank).
    fn produces_scores(&self) -> bool {
        true
    }

    /// The parameters the algorithm reads from [`AlgorithmParams`],
    /// advertised to UIs and the HTTP API.
    fn parameters(&self) -> Vec<ParamSpec> {
        Vec::new()
    }

    /// Checks parameter values before execution; called by the `Query`
    /// front door so bad parameters fail fast with a clear message.
    fn validate(&self, _params: &AlgorithmParams) -> Result<(), AlgoError> {
        Ok(())
    }

    /// Human-readable parameter summary for result tables (e.g.
    /// `k = 3, σ = exp` or `α = 0.85`).
    fn summarize(&self, params: &AlgorithmParams) -> String {
        format!("α = {}", params.damping)
    }

    /// Runs the algorithm. `reference` is `Some` exactly when the caller
    /// resolved a reference node; personalized algorithms may assume the
    /// front door enforced its presence but should still fail with
    /// [`AlgoError::MissingReference`] when invoked directly without one.
    fn execute(
        &self,
        graph: &DirectedGraph,
        params: &AlgorithmParams,
        reference: Option<NodeId>,
    ) -> Result<RelevanceOutput, AlgoError>;

    /// Runs the algorithm **warm-started** from a previous score vector
    /// (`prev`, one entry per node of a *prior* solve of a similar query —
    /// typically the same query before a graph mutation).
    ///
    /// The default implementation ignores `prev` and runs cold, which is
    /// always correct: warm starting is an execution strategy, never a
    /// semantic change. The stationary-distribution algorithms override it
    /// to seed the sweep kernel's iterate
    /// ([`crate::solver::SweepKernel::solve_warm`]), collapsing the sweep
    /// count when the fixed point moved only a little.
    fn execute_warm(
        &self,
        graph: &DirectedGraph,
        params: &AlgorithmParams,
        reference: Option<NodeId>,
        _prev: &[f64],
    ) -> Result<RelevanceOutput, AlgoError> {
        self.execute(graph, params, reference)
    }

    /// Runs the algorithm for many reference nodes on one graph, returning
    /// one output per reference in input order.
    ///
    /// The default implementation loops over [`Self::execute`]; algorithms
    /// with a cheaper batched formulation (the stationary-distribution
    /// family solves all seeds in one multi-vector sweep, see
    /// [`crate::solver::SweepKernel::solve_batch`]) override it. Every
    /// override must return exactly the outputs the sequential loop would
    /// — batching is an execution strategy, not a semantic change.
    fn execute_batch(
        &self,
        graph: &DirectedGraph,
        params: &AlgorithmParams,
        references: &[NodeId],
    ) -> Result<Vec<RelevanceOutput>, AlgoError> {
        references.iter().map(|&r| self.execute(graph, params, Some(r))).collect()
    }
}

/// One advertised parameter of an algorithm.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ParamSpec {
    /// Field name in [`AlgorithmParams`] / task JSON (e.g. `damping`).
    pub name: &'static str,
    /// Value kind: `float`, `int`, or `enum`.
    pub kind: &'static str,
    /// Default value, rendered as a string.
    pub default: String,
    /// One-line description (UI hover text).
    pub description: &'static str,
}

impl ParamSpec {
    /// Convenience constructor.
    pub fn new(
        name: &'static str,
        kind: &'static str,
        default: impl Into<String>,
        description: &'static str,
    ) -> Self {
        ParamSpec { name, kind, default: default.into(), description }
    }
}

/// Serializable description of a registered algorithm: what
/// `GET /api/algorithms` returns per entry.
#[derive(Debug, Clone, Serialize)]
pub struct AlgorithmDescriptor {
    /// Stable identifier.
    pub id: String,
    /// Display name.
    pub name: String,
    /// Whether a reference (source) node is required.
    pub personalized: bool,
    /// Whether per-node scores are produced.
    pub produces_scores: bool,
    /// Accepted parameters.
    pub parameters: Vec<ParamSpec>,
}

impl AlgorithmDescriptor {
    /// Builds the descriptor of one algorithm.
    pub fn of(algo: &dyn RelevanceAlgorithm) -> Self {
        AlgorithmDescriptor {
            id: algo.id().to_string(),
            name: algo.display_name().to_string(),
            personalized: algo.is_personalized(),
            produces_scores: algo.produces_scores(),
            parameters: algo.parameters(),
        }
    }
}
