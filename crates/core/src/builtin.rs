//! The seven paper algorithms as [`RelevanceAlgorithm`] implementations.
//!
//! This is where the body of the old `runner::run` mega-dispatcher lives
//! now: one small type per algorithm, each owning its slice of the former
//! `match`. The registry registers all seven at startup
//! ([`crate::registry::AlgorithmRegistry::global`]); nothing else in the
//! workspace dispatches on the `Algorithm` enum.

use crate::algorithm::{ParamSpec, RelevanceAlgorithm};
use crate::cyclerank::cyclerank;
use crate::error::AlgoError;
use crate::montecarlo::{ppr_monte_carlo, MonteCarloConfig};
use crate::pagerank::Convergence;
use crate::ppr::TeleportVector;
use crate::push::{ppr_push, PushConfig};
use crate::result::{RankedList, ScoreVector};
use crate::runner::{AlgorithmParams, RelevanceOutput, Solver};
use crate::solver::{ConvergenceTrace, SweepKernel};
use crate::topk;
use relgraph::{DirectedGraph, NodeId};

/// One solved stationary distribution plus its diagnostics.
type Solved = (ScoreVector, Option<Convergence>, Option<ConvergenceTrace>);

/// Runs the configured PageRank-family solver on one graph view. Every
/// exact scheme goes through the shared [`SweepKernel`]; the approximate
/// local solvers (push, Monte Carlo) keep their own implementations and
/// fall back to the kernel for global (no-reference) runs, where they are
/// undefined.
fn solve(
    view: relgraph::GraphView<'_>,
    params: &AlgorithmParams,
    reference: Option<NodeId>,
) -> Result<Solved, AlgoError> {
    match (params.solver, reference) {
        (Solver::Push, Some(r)) => {
            let push_cfg = PushConfig {
                damping: params.damping,
                epsilon: (params.tolerance * 1e3).clamp(1e-12, 1e-4),
                max_pushes: 100_000_000,
            };
            let (s, _) = ppr_push(view, &push_cfg, r)?;
            Ok((s, None, None))
        }
        (Solver::MonteCarlo, Some(r)) => {
            let mc_cfg = MonteCarloConfig {
                damping: params.damping,
                walks: 200_000,
                rng_seed: 42,
                threads: params.threads,
            };
            let s = ppr_monte_carlo(view, &mc_cfg, r)?;
            Ok((s, None, None))
        }
        _ => {
            let teleport = TeleportVector::for_reference(view.node_count(), reference)?;
            let kernel = SweepKernel::new(view)?;
            let out = kernel.solve(&params.solver_config(), &teleport)?;
            Ok((out.scores, Some(out.convergence), out.trace))
        }
    }
}

fn scored(
    id: &str,
    s: ScoreVector,
    c: Option<Convergence>,
    trace: Option<ConvergenceTrace>,
) -> RelevanceOutput {
    RelevanceOutput {
        algorithm: id.to_string(),
        ranking: s.ranking(),
        scores: Some(s),
        top: None,
        convergence: c,
        trace,
        cycles_found: None,
    }
}

/// Packages top-k pairs as the top-k serving mode's output shape: a
/// k-entry ranking plus the pairs themselves, no full score vector.
fn scored_top_k(
    id: &str,
    top: Vec<(NodeId, f64)>,
    c: Option<Convergence>,
    trace: Option<ConvergenceTrace>,
) -> RelevanceOutput {
    RelevanceOutput {
        algorithm: id.to_string(),
        ranking: RankedList::new(top.iter().map(|&(n, _)| n).collect()),
        scores: None,
        top: Some(top),
        convergence: c,
        trace,
        cycles_found: None,
    }
}

/// The stationary-distribution execution shared by the PageRank family:
/// full-rank solves go through [`solve`]; top-k serving mode
/// (`params.top_k`) routes personalized exact runs through the certified
/// adaptive-push path first and everything else through the kernel's
/// pruned heap-select result path ([`SweepKernel::solve_top_k`]) — the
/// full score vector never leaves the solver arena.
fn execute_stationary(
    id: &str,
    view: relgraph::GraphView<'_>,
    params: &AlgorithmParams,
    reference: Option<NodeId>,
) -> Result<RelevanceOutput, AlgoError> {
    let Some(k) = params.top_k else {
        let (s, c, t) = solve(view, params, reference)?;
        return Ok(scored(id, s, c, t));
    };
    let exact = params.solver.scheme().is_some() || reference.is_none();
    if !exact {
        // Approximate local solvers (push, Monte Carlo) already produce
        // their own estimates; trim their full output to the k best.
        let (s, c, t) = solve(view, params, reference)?;
        return Ok(scored_top_k(id, s.top_k(k), c, t));
    }
    // A requested residual trace is a kernel diagnostic push cannot
    // produce — honor it by taking the exact path instead of returning
    // a silently trace-less result.
    if let Some(r) = reference.filter(|_| !params.record_trace) {
        if let Some(push) = topk::push_top_k(view, params.damping, r, k)? {
            // Carry the Σ|r| certificate out as the result's residual:
            // each served estimate is below the exact score by at most
            // `residual_mass`, so downstream consumers (and the scenario
            // oracle) can bound the true error without re-solving.
            let certificate = Convergence {
                iterations: push.rounds,
                residual: push.residual_mass,
                converged: true,
            };
            return Ok(scored_top_k(id, push.top, Some(certificate), None));
        }
        // Fall through: push could not separate rank k from k+1
        // (or k >= n) — the exact kernel always can.
    }
    let teleport = TeleportVector::for_reference(view.node_count(), reference)?;
    let kernel = SweepKernel::new(view)?;
    let out = kernel.solve_top_k(&params.solver_config(), &teleport, k)?;
    Ok(scored_top_k(id, out.top, Some(out.convergence), out.trace))
}

/// The warm-started stationary execution: seeds the kernel iterate from
/// `prev` (a prior solution of a similar query, e.g. the same query before
/// a graph mutation). Only the exact kernel schemes have an iterate to
/// seed — approximate local solvers (push, Monte Carlo) ignore the warm
/// start and run their normal path, which is always correct.
fn execute_stationary_warm(
    id: &str,
    view: relgraph::GraphView<'_>,
    params: &AlgorithmParams,
    reference: Option<NodeId>,
    prev: &[f64],
) -> Result<RelevanceOutput, AlgoError> {
    if params.solver.scheme().is_none() && reference.is_some() {
        return execute_stationary(id, view, params, reference);
    }
    let teleport = TeleportVector::for_reference(view.node_count(), reference)?;
    let kernel = SweepKernel::new(view)?;
    match params.top_k {
        Some(k) => {
            let out = kernel.solve_top_k_warm(&params.solver_config(), &teleport, prev, k)?;
            Ok(scored_top_k(id, out.top, Some(out.convergence), out.trace))
        }
        None => {
            let out = kernel.solve_warm(&params.solver_config(), &teleport, prev)?;
            Ok(scored(id, out.scores, Some(out.convergence), out.trace))
        }
    }
}

fn require_reference(reference: Option<NodeId>) -> Result<NodeId, AlgoError> {
    reference.ok_or(AlgoError::MissingReference)
}

/// Runs a kernel-family algorithm directly on a graph **view**, whatever
/// representation backs it — the tier-agnostic entry the engine's
/// compact-tier serving path uses, since the [`RelevanceAlgorithm`] trait
/// itself is typed over the standard CSR. `forward` must be the graph's
/// forward orientation; the CheiRank variants flip it internally, exactly
/// as the registered algorithms do.
///
/// Only the algorithms for which [`crate::runner::Algorithm::is_kernel_family`] is true
/// are servable this way; anything else returns
/// [`AlgoError::InvalidParameter`]. Note that the Monte Carlo solver needs
/// CSR adjacency slices and fails with [`AlgoError::UnsupportedTier`] on a
/// compact-backed view — callers route those runs to the CSR path.
pub fn execute_kernel_family(
    algorithm: crate::runner::Algorithm,
    forward: relgraph::GraphView<'_>,
    params: &AlgorithmParams,
    reference: Option<NodeId>,
) -> Result<RelevanceOutput, AlgoError> {
    use crate::runner::Algorithm;
    validate_damping(params)?;
    let id = algorithm.id();
    match algorithm {
        Algorithm::PageRank => execute_stationary(id, forward, params, None),
        Algorithm::PersonalizedPageRank => {
            execute_stationary(id, forward, params, Some(require_reference(reference)?))
        }
        Algorithm::CheiRank => execute_stationary(id, forward.flipped(), params, None),
        Algorithm::PersonalizedCheiRank => {
            execute_stationary(id, forward.flipped(), params, Some(require_reference(reference)?))
        }
        other => Err(AlgoError::InvalidParameter {
            name: "algorithm",
            message: format!("{} has no view-level execution path", other.id()),
        }),
    }
}

/// The batched personalized solve shared by PPR and Pers. CheiRank: one
/// multi-vector kernel sweep over `view` for every exact scheme; the
/// approximate local solvers (push, Monte Carlo) have no fused formulation
/// and solve seed-by-seed through [`solve`].
fn solve_batch_personalized(
    id: &str,
    view: relgraph::GraphView<'_>,
    params: &AlgorithmParams,
    references: &[NodeId],
) -> Result<Vec<RelevanceOutput>, AlgoError> {
    if matches!(params.solver, Solver::Push | Solver::MonteCarlo) {
        return references.iter().map(|&r| execute_stationary(id, view, params, Some(r))).collect();
    }
    let n = view.node_count();
    let teleports =
        references.iter().map(|&r| TeleportVector::single(n, r)).collect::<Result<Vec<_>, _>>()?;
    let kernel = SweepKernel::new(view)?;
    let outs = kernel.solve_batch(&params.solver_config(), &teleports)?;
    // Batches keep the fused multi-vector sweep even in top-k serving
    // mode (the traversal amortization is the batch's whole point); top-k
    // only trims the per-seed result path.
    Ok(outs
        .into_iter()
        .map(|o| match params.top_k {
            Some(k) => scored_top_k(id, o.scores.top_k(k), Some(o.convergence), o.trace),
            None => scored(id, o.scores, Some(o.convergence), o.trace),
        })
        .collect())
}

fn validate_damping(params: &AlgorithmParams) -> Result<(), AlgoError> {
    if !(params.damping > 0.0 && params.damping < 1.0) {
        return Err(AlgoError::InvalidDamping(params.damping));
    }
    Ok(())
}

fn sweep_kernel_params() -> Vec<ParamSpec> {
    vec![
        ParamSpec::new("damping", "float", "0.85", "damping factor α in (0, 1)"),
        ParamSpec::new("tolerance", "float", "1e-10", "L1 convergence tolerance"),
        ParamSpec::new("max_iterations", "int", "200", "sweep cap"),
        ParamSpec::new(
            "threads",
            "int",
            "0",
            "worker threads for the parallel scheme (0 = all available cores)",
        ),
        ParamSpec::new(
            "record_trace",
            "bool",
            "false",
            "record per-iteration residuals in the result",
        ),
    ]
}

fn pagerank_family_params() -> Vec<ParamSpec> {
    let mut ps = sweep_kernel_params();
    ps.push(ParamSpec::new(
        "solver",
        "enum",
        "parallel",
        "numerical solver: power | gauss_seidel | parallel | push | monte_carlo",
    ));
    ps
}

fn tworank_params() -> Vec<ParamSpec> {
    let mut ps = sweep_kernel_params();
    ps.push(ParamSpec::new(
        "solver",
        "enum",
        "parallel",
        "kernel update scheme: power | gauss_seidel | parallel",
    ));
    ps
}

fn cyclerank_params() -> Vec<ParamSpec> {
    vec![
        ParamSpec::new("max_cycle_len", "int", "3", "maximum cycle length K (≥ 2)"),
        ParamSpec::new("scoring", "enum", "exp", "scoring σ(n): exp | lin | quad | const"),
    ]
}

// ----------------------------------------------------------------- PageRank

/// Global PageRank.
pub struct PageRankAlgorithm;

impl RelevanceAlgorithm for PageRankAlgorithm {
    fn id(&self) -> &str {
        "pagerank"
    }

    fn display_name(&self) -> &str {
        "PageRank"
    }

    fn aliases(&self) -> &[&str] {
        &["pr"]
    }

    fn is_personalized(&self) -> bool {
        false
    }

    fn parameters(&self) -> Vec<ParamSpec> {
        pagerank_family_params()
    }

    fn validate(&self, params: &AlgorithmParams) -> Result<(), AlgoError> {
        validate_damping(params)
    }

    fn execute(
        &self,
        graph: &DirectedGraph,
        params: &AlgorithmParams,
        _reference: Option<NodeId>,
    ) -> Result<RelevanceOutput, AlgoError> {
        execute_stationary(self.id(), graph.view(), params, None)
    }

    fn execute_warm(
        &self,
        graph: &DirectedGraph,
        params: &AlgorithmParams,
        _reference: Option<NodeId>,
        prev: &[f64],
    ) -> Result<RelevanceOutput, AlgoError> {
        execute_stationary_warm(self.id(), graph.view(), params, None, prev)
    }
}

/// Personalized PageRank.
pub struct PersonalizedPageRankAlgorithm;

impl RelevanceAlgorithm for PersonalizedPageRankAlgorithm {
    fn id(&self) -> &str {
        "ppr"
    }

    fn display_name(&self) -> &str {
        "Pers. PageRank"
    }

    fn aliases(&self) -> &[&str] {
        &["personalizedpagerank", "pers.pagerank"]
    }

    fn is_personalized(&self) -> bool {
        true
    }

    fn parameters(&self) -> Vec<ParamSpec> {
        pagerank_family_params()
    }

    fn validate(&self, params: &AlgorithmParams) -> Result<(), AlgoError> {
        validate_damping(params)
    }

    fn execute(
        &self,
        graph: &DirectedGraph,
        params: &AlgorithmParams,
        reference: Option<NodeId>,
    ) -> Result<RelevanceOutput, AlgoError> {
        let r = require_reference(reference)?;
        execute_stationary(self.id(), graph.view(), params, Some(r))
    }

    fn execute_warm(
        &self,
        graph: &DirectedGraph,
        params: &AlgorithmParams,
        reference: Option<NodeId>,
        prev: &[f64],
    ) -> Result<RelevanceOutput, AlgoError> {
        let r = require_reference(reference)?;
        execute_stationary_warm(self.id(), graph.view(), params, Some(r), prev)
    }

    fn execute_batch(
        &self,
        graph: &DirectedGraph,
        params: &AlgorithmParams,
        references: &[NodeId],
    ) -> Result<Vec<RelevanceOutput>, AlgoError> {
        solve_batch_personalized(self.id(), graph.view(), params, references)
    }
}

// ----------------------------------------------------------------- CheiRank

/// CheiRank: PageRank on the transposed graph.
pub struct CheiRankAlgorithm;

impl RelevanceAlgorithm for CheiRankAlgorithm {
    fn id(&self) -> &str {
        "cheirank"
    }

    fn display_name(&self) -> &str {
        "CheiRank"
    }

    fn is_personalized(&self) -> bool {
        false
    }

    fn parameters(&self) -> Vec<ParamSpec> {
        pagerank_family_params()
    }

    fn validate(&self, params: &AlgorithmParams) -> Result<(), AlgoError> {
        validate_damping(params)
    }

    fn execute(
        &self,
        graph: &DirectedGraph,
        params: &AlgorithmParams,
        _reference: Option<NodeId>,
    ) -> Result<RelevanceOutput, AlgoError> {
        execute_stationary(self.id(), graph.transposed(), params, None)
    }

    fn execute_warm(
        &self,
        graph: &DirectedGraph,
        params: &AlgorithmParams,
        _reference: Option<NodeId>,
        prev: &[f64],
    ) -> Result<RelevanceOutput, AlgoError> {
        execute_stationary_warm(self.id(), graph.transposed(), params, None, prev)
    }
}

/// Personalized CheiRank.
pub struct PersonalizedCheiRankAlgorithm;

impl RelevanceAlgorithm for PersonalizedCheiRankAlgorithm {
    fn id(&self) -> &str {
        "pcheirank"
    }

    fn display_name(&self) -> &str {
        "Pers. CheiRank"
    }

    fn aliases(&self) -> &[&str] {
        &["personalizedcheirank"]
    }

    fn is_personalized(&self) -> bool {
        true
    }

    fn parameters(&self) -> Vec<ParamSpec> {
        pagerank_family_params()
    }

    fn validate(&self, params: &AlgorithmParams) -> Result<(), AlgoError> {
        validate_damping(params)
    }

    fn execute(
        &self,
        graph: &DirectedGraph,
        params: &AlgorithmParams,
        reference: Option<NodeId>,
    ) -> Result<RelevanceOutput, AlgoError> {
        let r = require_reference(reference)?;
        execute_stationary(self.id(), graph.transposed(), params, Some(r))
    }

    fn execute_warm(
        &self,
        graph: &DirectedGraph,
        params: &AlgorithmParams,
        reference: Option<NodeId>,
        prev: &[f64],
    ) -> Result<RelevanceOutput, AlgoError> {
        let r = require_reference(reference)?;
        execute_stationary_warm(self.id(), graph.transposed(), params, Some(r), prev)
    }

    fn execute_batch(
        &self,
        graph: &DirectedGraph,
        params: &AlgorithmParams,
        references: &[NodeId],
    ) -> Result<Vec<RelevanceOutput>, AlgoError> {
        solve_batch_personalized(self.id(), graph.transposed(), params, references)
    }
}

// ------------------------------------------------------------------ 2DRank

/// 2DRank: combined PageRank × CheiRank ranking (ranking only, no scores).
pub struct TwoDRankAlgorithm;

impl RelevanceAlgorithm for TwoDRankAlgorithm {
    fn id(&self) -> &str {
        "2drank"
    }

    fn display_name(&self) -> &str {
        "2DRank"
    }

    fn aliases(&self) -> &[&str] {
        &["twodrank"]
    }

    fn is_personalized(&self) -> bool {
        false
    }

    fn produces_scores(&self) -> bool {
        false
    }

    fn parameters(&self) -> Vec<ParamSpec> {
        tworank_params()
    }

    fn validate(&self, params: &AlgorithmParams) -> Result<(), AlgoError> {
        validate_damping(params)
    }

    fn execute(
        &self,
        graph: &DirectedGraph,
        params: &AlgorithmParams,
        _reference: Option<NodeId>,
    ) -> Result<RelevanceOutput, AlgoError> {
        let out = crate::tworank::two_d_rank_with(graph, &params.solver_config(), None)?;
        Ok(RelevanceOutput {
            algorithm: self.id().to_string(),
            ranking: out.ranking,
            scores: None,
            top: None,
            convergence: Some(out.convergence),
            trace: out.trace,
            cycles_found: None,
        })
    }
}

/// Personalized 2DRank.
pub struct PersonalizedTwoDRankAlgorithm;

impl RelevanceAlgorithm for PersonalizedTwoDRankAlgorithm {
    fn id(&self) -> &str {
        "p2drank"
    }

    fn display_name(&self) -> &str {
        "Pers. 2DRank"
    }

    fn aliases(&self) -> &[&str] {
        &["personalized2drank", "personalizedtwodrank"]
    }

    fn is_personalized(&self) -> bool {
        true
    }

    fn produces_scores(&self) -> bool {
        false
    }

    fn parameters(&self) -> Vec<ParamSpec> {
        tworank_params()
    }

    fn validate(&self, params: &AlgorithmParams) -> Result<(), AlgoError> {
        validate_damping(params)
    }

    fn execute(
        &self,
        graph: &DirectedGraph,
        params: &AlgorithmParams,
        reference: Option<NodeId>,
    ) -> Result<RelevanceOutput, AlgoError> {
        let r = require_reference(reference)?;
        let out = crate::tworank::two_d_rank_with(graph, &params.solver_config(), Some(r))?;
        Ok(RelevanceOutput {
            algorithm: self.id().to_string(),
            ranking: out.ranking,
            scores: None,
            top: None,
            convergence: Some(out.convergence),
            trace: out.trace,
            cycles_found: None,
        })
    }
}

// ---------------------------------------------------------------- CycleRank

/// CycleRank: relevance through simple cycles of bounded length.
pub struct CycleRankAlgorithm;

impl RelevanceAlgorithm for CycleRankAlgorithm {
    fn id(&self) -> &str {
        "cyclerank"
    }

    fn display_name(&self) -> &str {
        "Cyclerank"
    }

    fn aliases(&self) -> &[&str] {
        &["cr"]
    }

    fn is_personalized(&self) -> bool {
        true
    }

    fn parameters(&self) -> Vec<ParamSpec> {
        cyclerank_params()
    }

    fn validate(&self, params: &AlgorithmParams) -> Result<(), AlgoError> {
        if params.max_cycle_len < 2 {
            return Err(AlgoError::InvalidMaxCycleLength(params.max_cycle_len));
        }
        Ok(())
    }

    fn summarize(&self, params: &AlgorithmParams) -> String {
        format!("k = {}, σ = {}", params.max_cycle_len, params.scoring)
    }

    fn execute(
        &self,
        graph: &DirectedGraph,
        params: &AlgorithmParams,
        reference: Option<NodeId>,
    ) -> Result<RelevanceOutput, AlgoError> {
        let r = require_reference(reference)?;
        let out = cyclerank(graph, r, &params.cyclerank_config())?;
        Ok(RelevanceOutput {
            algorithm: self.id().to_string(),
            ranking: out.scores.ranking(),
            scores: Some(out.scores),
            top: None,
            convergence: None,
            trace: None,
            cycles_found: Some(out.cycles_found),
        })
    }
}
