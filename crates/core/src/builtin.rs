//! The seven paper algorithms as [`RelevanceAlgorithm`] implementations.
//!
//! This is where the body of the old `runner::run` mega-dispatcher lives
//! now: one small type per algorithm, each owning its slice of the former
//! `match`. The registry registers all seven at startup
//! ([`crate::registry::AlgorithmRegistry::global`]); nothing else in the
//! workspace dispatches on the `Algorithm` enum.

use crate::algorithm::{ParamSpec, RelevanceAlgorithm};
use crate::cyclerank::cyclerank;
use crate::error::AlgoError;
use crate::gauss_seidel::pagerank_gauss_seidel;
use crate::montecarlo::{ppr_monte_carlo, MonteCarloConfig};
use crate::pagerank::{pagerank_with_teleport, Convergence};
use crate::ppr::TeleportVector;
use crate::push::{ppr_push, PushConfig};
use crate::result::ScoreVector;
use crate::runner::{AlgorithmParams, RelevanceOutput, Solver};
use relgraph::{DirectedGraph, NodeId};

/// Runs the configured PageRank-family solver on one graph view.
fn solve(
    view: relgraph::GraphView<'_>,
    params: &AlgorithmParams,
    reference: Option<NodeId>,
) -> Result<(ScoreVector, Option<Convergence>), AlgoError> {
    let cfg = params.pagerank_config();
    let teleport = match reference {
        Some(r) => TeleportVector::single(view.node_count(), r)?,
        None => TeleportVector::uniform(view.node_count())?,
    };
    match (params.solver, reference) {
        (Solver::Power, _) => {
            let (s, c) = pagerank_with_teleport(view, &cfg, &teleport)?;
            Ok((s, Some(c)))
        }
        (Solver::GaussSeidel, _) => {
            let (s, c) = pagerank_gauss_seidel(view, &cfg, &teleport)?;
            Ok((s, Some(c)))
        }
        // The approximate local solvers are only defined for a single
        // seed; global runs fall back to exact power iteration.
        (Solver::Push, Some(r)) => {
            let push_cfg = PushConfig {
                damping: cfg.damping,
                epsilon: (cfg.tolerance * 1e3).clamp(1e-12, 1e-4),
                max_pushes: 100_000_000,
            };
            let (s, _) = ppr_push(view, &push_cfg, r)?;
            Ok((s, None))
        }
        (Solver::MonteCarlo, Some(r)) => {
            let mc_cfg = MonteCarloConfig { damping: cfg.damping, walks: 200_000, rng_seed: 42 };
            let s = ppr_monte_carlo(view, &mc_cfg, r)?;
            Ok((s, None))
        }
        (Solver::Push | Solver::MonteCarlo, None) => {
            let (s, c) = pagerank_with_teleport(view, &cfg, &teleport)?;
            Ok((s, Some(c)))
        }
    }
}

fn scored(id: &str, s: ScoreVector, c: Option<Convergence>) -> RelevanceOutput {
    RelevanceOutput {
        algorithm: id.to_string(),
        ranking: s.ranking(),
        scores: Some(s),
        convergence: c,
        cycles_found: None,
    }
}

fn require_reference(reference: Option<NodeId>) -> Result<NodeId, AlgoError> {
    reference.ok_or(AlgoError::MissingReference)
}

fn validate_damping(params: &AlgorithmParams) -> Result<(), AlgoError> {
    if !(params.damping > 0.0 && params.damping < 1.0) {
        return Err(AlgoError::InvalidDamping(params.damping));
    }
    Ok(())
}

fn pagerank_family_params() -> Vec<ParamSpec> {
    vec![
        ParamSpec::new("damping", "float", "0.85", "damping factor α in (0, 1)"),
        ParamSpec::new("tolerance", "float", "1e-10", "L1 convergence tolerance"),
        ParamSpec::new("max_iterations", "int", "200", "power-iteration cap"),
        ParamSpec::new(
            "solver",
            "enum",
            "power",
            "numerical solver: power | gauss_seidel | push | monte_carlo",
        ),
    ]
}

fn tworank_params() -> Vec<ParamSpec> {
    vec![
        ParamSpec::new("damping", "float", "0.85", "damping factor α in (0, 1)"),
        ParamSpec::new("tolerance", "float", "1e-10", "L1 convergence tolerance"),
        ParamSpec::new("max_iterations", "int", "200", "power-iteration cap"),
    ]
}

fn cyclerank_params() -> Vec<ParamSpec> {
    vec![
        ParamSpec::new("max_cycle_len", "int", "3", "maximum cycle length K (≥ 2)"),
        ParamSpec::new("scoring", "enum", "exp", "scoring σ(n): exp | lin | quad | const"),
    ]
}

// ----------------------------------------------------------------- PageRank

/// Global PageRank.
pub struct PageRankAlgorithm;

impl RelevanceAlgorithm for PageRankAlgorithm {
    fn id(&self) -> &str {
        "pagerank"
    }

    fn display_name(&self) -> &str {
        "PageRank"
    }

    fn aliases(&self) -> &[&str] {
        &["pr"]
    }

    fn is_personalized(&self) -> bool {
        false
    }

    fn parameters(&self) -> Vec<ParamSpec> {
        pagerank_family_params()
    }

    fn validate(&self, params: &AlgorithmParams) -> Result<(), AlgoError> {
        validate_damping(params)
    }

    fn execute(
        &self,
        graph: &DirectedGraph,
        params: &AlgorithmParams,
        _reference: Option<NodeId>,
    ) -> Result<RelevanceOutput, AlgoError> {
        let (s, c) = solve(graph.view(), params, None)?;
        Ok(scored(self.id(), s, c))
    }
}

/// Personalized PageRank.
pub struct PersonalizedPageRankAlgorithm;

impl RelevanceAlgorithm for PersonalizedPageRankAlgorithm {
    fn id(&self) -> &str {
        "ppr"
    }

    fn display_name(&self) -> &str {
        "Pers. PageRank"
    }

    fn aliases(&self) -> &[&str] {
        &["personalizedpagerank", "pers.pagerank"]
    }

    fn is_personalized(&self) -> bool {
        true
    }

    fn parameters(&self) -> Vec<ParamSpec> {
        pagerank_family_params()
    }

    fn validate(&self, params: &AlgorithmParams) -> Result<(), AlgoError> {
        validate_damping(params)
    }

    fn execute(
        &self,
        graph: &DirectedGraph,
        params: &AlgorithmParams,
        reference: Option<NodeId>,
    ) -> Result<RelevanceOutput, AlgoError> {
        let r = require_reference(reference)?;
        let (s, c) = solve(graph.view(), params, Some(r))?;
        Ok(scored(self.id(), s, c))
    }
}

// ----------------------------------------------------------------- CheiRank

/// CheiRank: PageRank on the transposed graph.
pub struct CheiRankAlgorithm;

impl RelevanceAlgorithm for CheiRankAlgorithm {
    fn id(&self) -> &str {
        "cheirank"
    }

    fn display_name(&self) -> &str {
        "CheiRank"
    }

    fn is_personalized(&self) -> bool {
        false
    }

    fn parameters(&self) -> Vec<ParamSpec> {
        pagerank_family_params()
    }

    fn validate(&self, params: &AlgorithmParams) -> Result<(), AlgoError> {
        validate_damping(params)
    }

    fn execute(
        &self,
        graph: &DirectedGraph,
        params: &AlgorithmParams,
        _reference: Option<NodeId>,
    ) -> Result<RelevanceOutput, AlgoError> {
        let (s, c) = solve(graph.transposed(), params, None)?;
        Ok(scored(self.id(), s, c))
    }
}

/// Personalized CheiRank.
pub struct PersonalizedCheiRankAlgorithm;

impl RelevanceAlgorithm for PersonalizedCheiRankAlgorithm {
    fn id(&self) -> &str {
        "pcheirank"
    }

    fn display_name(&self) -> &str {
        "Pers. CheiRank"
    }

    fn aliases(&self) -> &[&str] {
        &["personalizedcheirank"]
    }

    fn is_personalized(&self) -> bool {
        true
    }

    fn parameters(&self) -> Vec<ParamSpec> {
        pagerank_family_params()
    }

    fn validate(&self, params: &AlgorithmParams) -> Result<(), AlgoError> {
        validate_damping(params)
    }

    fn execute(
        &self,
        graph: &DirectedGraph,
        params: &AlgorithmParams,
        reference: Option<NodeId>,
    ) -> Result<RelevanceOutput, AlgoError> {
        let r = require_reference(reference)?;
        let (s, c) = solve(graph.transposed(), params, Some(r))?;
        Ok(scored(self.id(), s, c))
    }
}

// ------------------------------------------------------------------ 2DRank

/// 2DRank: combined PageRank × CheiRank ranking (ranking only, no scores).
pub struct TwoDRankAlgorithm;

impl RelevanceAlgorithm for TwoDRankAlgorithm {
    fn id(&self) -> &str {
        "2drank"
    }

    fn display_name(&self) -> &str {
        "2DRank"
    }

    fn aliases(&self) -> &[&str] {
        &["twodrank"]
    }

    fn is_personalized(&self) -> bool {
        false
    }

    fn produces_scores(&self) -> bool {
        false
    }

    fn parameters(&self) -> Vec<ParamSpec> {
        tworank_params()
    }

    fn validate(&self, params: &AlgorithmParams) -> Result<(), AlgoError> {
        validate_damping(params)
    }

    fn execute(
        &self,
        graph: &DirectedGraph,
        params: &AlgorithmParams,
        _reference: Option<NodeId>,
    ) -> Result<RelevanceOutput, AlgoError> {
        let r = crate::tworank::two_d_rank(graph, &params.pagerank_config())?;
        Ok(RelevanceOutput {
            algorithm: self.id().to_string(),
            ranking: r,
            scores: None,
            convergence: None,
            cycles_found: None,
        })
    }
}

/// Personalized 2DRank.
pub struct PersonalizedTwoDRankAlgorithm;

impl RelevanceAlgorithm for PersonalizedTwoDRankAlgorithm {
    fn id(&self) -> &str {
        "p2drank"
    }

    fn display_name(&self) -> &str {
        "Pers. 2DRank"
    }

    fn aliases(&self) -> &[&str] {
        &["personalized2drank", "personalizedtwodrank"]
    }

    fn is_personalized(&self) -> bool {
        true
    }

    fn produces_scores(&self) -> bool {
        false
    }

    fn parameters(&self) -> Vec<ParamSpec> {
        tworank_params()
    }

    fn validate(&self, params: &AlgorithmParams) -> Result<(), AlgoError> {
        validate_damping(params)
    }

    fn execute(
        &self,
        graph: &DirectedGraph,
        params: &AlgorithmParams,
        reference: Option<NodeId>,
    ) -> Result<RelevanceOutput, AlgoError> {
        let r = require_reference(reference)?;
        let ranking = crate::tworank::personalized_two_d_rank(graph, &params.pagerank_config(), r)?;
        Ok(RelevanceOutput {
            algorithm: self.id().to_string(),
            ranking,
            scores: None,
            convergence: None,
            cycles_found: None,
        })
    }
}

// ---------------------------------------------------------------- CycleRank

/// CycleRank: relevance through simple cycles of bounded length.
pub struct CycleRankAlgorithm;

impl RelevanceAlgorithm for CycleRankAlgorithm {
    fn id(&self) -> &str {
        "cyclerank"
    }

    fn display_name(&self) -> &str {
        "Cyclerank"
    }

    fn aliases(&self) -> &[&str] {
        &["cr"]
    }

    fn is_personalized(&self) -> bool {
        true
    }

    fn parameters(&self) -> Vec<ParamSpec> {
        cyclerank_params()
    }

    fn validate(&self, params: &AlgorithmParams) -> Result<(), AlgoError> {
        if params.max_cycle_len < 2 {
            return Err(AlgoError::InvalidMaxCycleLength(params.max_cycle_len));
        }
        Ok(())
    }

    fn summarize(&self, params: &AlgorithmParams) -> String {
        format!("k = {}, σ = {}", params.max_cycle_len, params.scoring)
    }

    fn execute(
        &self,
        graph: &DirectedGraph,
        params: &AlgorithmParams,
        reference: Option<NodeId>,
    ) -> Result<RelevanceOutput, AlgoError> {
        let r = require_reference(reference)?;
        let out = cyclerank(graph, r, &params.cyclerank_config())?;
        Ok(RelevanceOutput {
            algorithm: self.id().to_string(),
            ranking: out.scores.ranking(),
            scores: Some(out.scores),
            convergence: None,
            cycles_found: Some(out.cycles_found),
        })
    }
}
