//! # relcore — personalized relevance algorithms for directed graphs
//!
//! This crate implements the seven algorithms showcased by the CycleRank
//! demo platform (*Comparing Personalized Relevance Algorithms for Directed
//! Graphs*, ICDE 2024):
//!
//! | Algorithm | Module | Personalized? | Output |
//! |-----------|--------|---------------|--------|
//! | PageRank | [`mod@pagerank`] | no | scores |
//! | Personalized PageRank | [`ppr`] | yes | scores |
//! | CheiRank | [`mod@cheirank`] | no | scores |
//! | Personalized CheiRank | [`mod@cheirank`] | yes | scores |
//! | 2DRank | [`tworank`] | no | ranking only |
//! | Personalized 2DRank | [`tworank`] | yes | ranking only |
//! | **CycleRank** | [`cyclerank`] | yes | scores |
//!
//! plus two approximate Personalized-PageRank solvers used by the ablation
//! benchmarks ([`push`] — Andersen–Chung–Lang forward push — and
//! [`montecarlo`] — terminated random walks) and ranking-comparison
//! metrics ([`compare`]).
//!
//! ## The invocation API
//!
//! Algorithms are invoked through an open, registry-backed API:
//!
//! * [`algorithm::RelevanceAlgorithm`] — the object-safe trait every
//!   algorithm (built-in or third-party) implements;
//! * [`registry::AlgorithmRegistry`] — the id → implementation table; the
//!   seven paper algorithms are registered at startup and custom ones can
//!   be added at runtime;
//! * [`query::Query`] — the fluent front door used by the engine, HTTP
//!   routes, CLI, and bench harness:
//!
//! ```
//! use relcore::Query;
//! use relgraph::GraphBuilder;
//!
//! let mut b = GraphBuilder::new();
//! b.add_labeled_edge("Pasta", "Italy");
//! b.add_labeled_edge("Italy", "Pasta");
//! let g = b.build();
//! let top = Query::on(g).algorithm("cyclerank").reference("Pasta").k(3).top(2)
//!     .run().unwrap().top_entries();
//! assert_eq!(top[0].0, "Pasta");
//! ```
//!
//! The pre-redesign entry point `runner::run` survives as a deprecated
//! shim over the registry.
//!
//! ## The solver layer
//!
//! Every stationary-distribution algorithm — PageRank, PPR, CheiRank, and
//! 2DRank — is a thin parameterization (view orientation × teleport
//! vector) of one shared edge-sweep engine, [`solver::SweepKernel`], with
//! three interchangeable update schemes ([`solver::Scheme`]): sequential
//! power iteration, hybrid Gauss–Seidel, and chunked multi-threaded pull
//! (the default). Queries pick a scheme and thread count fluently:
//!
//! ```
//! use relcore::{Query, Scheme};
//! use relgraph::GraphBuilder;
//!
//! let g = GraphBuilder::from_edge_indices([(0, 1), (1, 0), (1, 2), (2, 0)]);
//! let r = Query::on(g)
//!     .algorithm("cheirank")
//!     .scheme(Scheme::GaussSeidel)
//!     .threads(2)
//!     .trace(true)
//!     .run()
//!     .unwrap();
//! let trace = r.output.trace.as_ref().unwrap();
//! assert_eq!(trace.len(), r.output.convergence.unwrap().iterations);
//! ```
//!
//! ## Quick example
//!
//! ```
//! use relgraph::GraphBuilder;
//! use relcore::{cyclerank::cyclerank, CycleRankConfig};
//!
//! let mut b = GraphBuilder::new();
//! b.add_labeled_edge("Pasta", "Italy");
//! b.add_labeled_edge("Italy", "Pasta");
//! b.add_labeled_edge("Pasta", "United States"); // no link back
//! let g = b.build();
//! let r = g.node_by_label("Pasta").unwrap();
//!
//! let out = cyclerank(&g, r, &CycleRankConfig::default()).unwrap();
//! let italy = g.node_by_label("Italy").unwrap();
//! let us = g.node_by_label("United States").unwrap();
//! assert!(out.scores.get(italy) > 0.0);   // mutually linked: relevant
//! assert_eq!(out.scores.get(us), 0.0);    // one-way link: not relevant
//! ```

pub mod algorithm;
pub mod arena;
pub mod builtin;
pub mod cheirank;
pub mod compare;
pub mod cyclerank;
pub mod error;
pub mod gauss_seidel;
pub mod montecarlo;
pub mod pagerank;
pub mod parallel;
pub mod ppr;
pub mod push;
pub mod query;
pub mod registry;
pub mod result;
pub mod runner;
pub mod scoring;
pub mod solver;
pub mod topk;
pub mod tworank;

pub use algorithm::{AlgorithmDescriptor, ParamSpec, RelevanceAlgorithm};
pub use arena::{with_arena, SolverArena};
pub use builtin::execute_kernel_family;
pub use cheirank::{cheirank, personalized_cheirank};
pub use cyclerank::{CycleRankConfig, CycleRankOutput};
pub use error::AlgoError;
pub use pagerank::{pagerank, Convergence, PageRankConfig};
pub use ppr::{personalized_pagerank, TeleportVector};
pub use query::{BatchResult, Query, QueryError, QueryResult, QueryTarget, ReferenceSpec};
pub use registry::{AlgorithmRegistry, RegistryError};
pub use result::{RankedList, ScoreVector};
#[allow(deprecated)]
pub use runner::run;
pub use runner::{Algorithm, AlgorithmParams, RelevanceOutput, Solver};
pub use scoring::ScoringFunction;
pub use solver::{
    ConvergenceTrace, Precision, Scheme, SolverConfig, SweepKernel, SweepOutcome, TopKOutcome,
    F32_TOLERANCE_FLOOR,
};
pub use topk::{refresh_ppr, PprRefresh};
pub use tworank::{personalized_two_d_rank, two_d_rank};
