//! Gauss–Seidel PageRank solver.
//!
//! The demo paper notes that beyond plain power iteration "more efficient
//! algorithms are available". Gauss–Seidel is the classic in-place
//! refinement: within one sweep, each node's new score is computed from the
//! *already-updated* scores of its in-neighbors, which roughly halves the
//! number of sweeps needed for a given tolerance on web-like graphs.
//!
//! The update solves, for each node v in turn,
//!
//! ```text
//! x[v] = (1−α)·t[v] + α·( Σ_{u→v} x[u]·w(u,v)/W(u) + dangling·t[v] )
//! ```
//!
//! pulling over the in-adjacency (which [`relgraph::DirectedGraph`] stores
//! explicitly). Dangling mass is taken from the previous sweep — making the
//! sweep a hybrid Jacobi/Gauss–Seidel step — so the result converges to the
//! same fixed point as [`mod@crate::pagerank`], against which the tests compare.

use crate::error::AlgoError;
use crate::pagerank::{Convergence, PageRankConfig};
use crate::ppr::TeleportVector;
use crate::result::ScoreVector;
use relgraph::{GraphView, NodeId};

/// Gauss–Seidel PageRank with an arbitrary teleport vector.
pub fn pagerank_gauss_seidel(
    view: GraphView<'_>,
    cfg: &PageRankConfig,
    teleport: &TeleportVector,
) -> Result<(ScoreVector, Convergence), AlgoError> {
    cfg.validate()?;
    let n = view.node_count();
    if n == 0 {
        return Err(AlgoError::EmptyGraph);
    }
    if teleport.len() != n {
        return Err(AlgoError::InvalidParameter {
            name: "teleport",
            message: format!("teleport vector has {} entries for {} nodes", teleport.len(), n),
        });
    }

    let alpha = cfg.damping;
    let inv_wsum: Vec<f64> = (0..n)
        .map(|i| {
            let w = view.out_weight_sum(NodeId::from_usize(i));
            if w > 0.0 {
                1.0 / w
            } else {
                0.0
            }
        })
        .collect();
    let teleport_dense = teleport.dense();

    let mut x: Vec<f64> = teleport_dense.clone();
    let mut iterations = 0;
    let mut residual = f64::INFINITY;

    while iterations < cfg.max_iterations {
        iterations += 1;
        // Dangling mass from the current state (previous sweep's values for
        // nodes not yet updated this sweep — consistent at the fixed point).
        let dangling: f64 = (0..n).filter(|&i| inv_wsum[i] == 0.0).map(|i| x[i]).sum();

        let mut delta = 0.0;
        for i in 0..n {
            let v = NodeId::from_usize(i);
            let mut pulled = 0.0;
            match view.in_weights(v) {
                Some(ws) => {
                    for (j, &u) in view.in_neighbors(v).iter().enumerate() {
                        pulled += x[u.index()] * ws[j] * inv_wsum[u.index()];
                    }
                }
                None => {
                    for &u in view.in_neighbors(v) {
                        pulled += x[u.index()] * inv_wsum[u.index()];
                    }
                }
            }
            let new =
                (1.0 - alpha) * teleport_dense[i] + alpha * (pulled + dangling * teleport_dense[i]);
            delta += (new - x[i]).abs();
            x[i] = new;
        }

        residual = delta;
        if residual < cfg.tolerance {
            break;
        }
    }

    // Gauss–Seidel sweeps do not preserve the probability-simplex exactly
    // while iterating (dangling mass lags one sweep); normalize at the end.
    let mut scores = ScoreVector::new(x);
    scores.normalize();
    let converged = residual < cfg.tolerance;
    Ok((scores, Convergence { iterations, residual, converged }))
}

/// Global PageRank via Gauss–Seidel (uniform teleport).
pub fn pagerank_gs(
    view: GraphView<'_>,
    cfg: &PageRankConfig,
) -> Result<(ScoreVector, Convergence), AlgoError> {
    let teleport = TeleportVector::uniform(view.node_count())?;
    pagerank_gauss_seidel(view, cfg, &teleport)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank::pagerank;
    use crate::ppr::personalized_pagerank;
    use relgraph::GraphBuilder;

    fn agree(g: &relgraph::DirectedGraph) {
        let cfg = PageRankConfig { damping: 0.85, tolerance: 1e-12, max_iterations: 1000 };
        let (power, _) = pagerank(g.view(), &cfg).unwrap();
        let (gs, conv) = pagerank_gs(g.view(), &cfg).unwrap();
        assert!(conv.converged);
        for u in g.nodes() {
            assert!(
                (power.get(u) - gs.get(u)).abs() < 1e-8,
                "node {u:?}: power {} vs gs {}",
                power.get(u),
                gs.get(u)
            );
        }
    }

    #[test]
    fn matches_power_iteration_on_cycle() {
        agree(&GraphBuilder::from_edge_indices([(0, 1), (1, 2), (2, 0), (0, 2)]));
    }

    #[test]
    fn matches_power_iteration_with_dangling() {
        agree(&GraphBuilder::from_edge_indices([(0, 1), (1, 2), (1, 0)]));
    }

    #[test]
    fn matches_power_iteration_weighted() {
        let mut b = GraphBuilder::new();
        b.add_weighted_edge(relgraph::NodeId::new(0), relgraph::NodeId::new(1), 3.0);
        b.add_weighted_edge(relgraph::NodeId::new(1), relgraph::NodeId::new(0), 1.0);
        b.add_weighted_edge(relgraph::NodeId::new(1), relgraph::NodeId::new(2), 2.0);
        b.add_weighted_edge(relgraph::NodeId::new(2), relgraph::NodeId::new(1), 1.0);
        agree(&b.build());
    }

    #[test]
    fn matches_personalized_variant() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 0)]);
        let cfg = PageRankConfig { damping: 0.85, tolerance: 1e-12, max_iterations: 1000 };
        let seed = relgraph::NodeId::new(0);
        let (power, _) = personalized_pagerank(g.view(), &cfg, seed).unwrap();
        let teleport = TeleportVector::single(g.node_count(), seed).unwrap();
        let (gs, _) = pagerank_gauss_seidel(g.view(), &cfg, &teleport).unwrap();
        for u in g.nodes() {
            assert!((power.get(u) - gs.get(u)).abs() < 1e-8, "node {u:?}");
        }
    }

    #[test]
    fn converges_in_comparable_sweeps_to_power() {
        // The in-place update is not universally faster (on fast-mixing
        // random graphs the power iteration already converges in a handful
        // of sweeps), but it must stay within a small constant factor and
        // reach the same fixed point. The wall-clock comparison lives in
        // the `pagerank_impls` bench.
        let mut b = GraphBuilder::new();
        let mut x = 0x2545F4914F6CDD1Du64;
        for _ in 0..4000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let u = (x % 500) as u32;
            let v = ((x >> 16) % 500) as u32;
            if u != v {
                b.add_edge_indices(u, v);
            }
        }
        let g = b.build();
        let cfg = PageRankConfig { damping: 0.85, tolerance: 1e-10, max_iterations: 500 };
        let (ps, p) = pagerank(g.view(), &cfg).unwrap();
        let (gss, gs) = pagerank_gs(g.view(), &cfg).unwrap();
        assert!(p.converged && gs.converged);
        assert!(
            gs.iterations <= p.iterations * 4,
            "gauss-seidel {} vs power {}",
            gs.iterations,
            p.iterations
        );
        for u in g.nodes() {
            assert!((ps.get(u) - gss.get(u)).abs() < 1e-7);
        }
    }

    #[test]
    fn sums_to_one() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 2), (2, 0)]);
        let (s, _) = pagerank_gs(g.view(), &PageRankConfig::default()).unwrap();
        assert!((s.sum() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_inputs() {
        let empty = GraphBuilder::new().build();
        assert!(pagerank_gs(empty.view(), &PageRankConfig::default()).is_err());
        let g = GraphBuilder::from_edge_indices([(0, 1)]);
        assert!(pagerank_gs(g.view(), &PageRankConfig::with_damping(2.0)).is_err());
    }
}
