//! Gauss–Seidel PageRank: compatibility shims over the shared
//! [`crate::solver::SweepKernel`] with [`Scheme::GaussSeidel`].
//!
//! The in-place sweep itself lives in [`crate::solver`]; this module keeps
//! the pre-refactor entry points compiling. New code should construct a
//! kernel (or go through [`crate::Query::scheme`]).

use crate::error::AlgoError;
use crate::pagerank::{Convergence, PageRankConfig};
use crate::ppr::TeleportVector;
use crate::result::ScoreVector;
use crate::solver::{Scheme, SweepKernel};
use relgraph::GraphView;

/// Gauss–Seidel PageRank with an arbitrary teleport vector.
pub fn pagerank_gauss_seidel(
    view: GraphView<'_>,
    cfg: &PageRankConfig,
    teleport: &TeleportVector,
) -> Result<(ScoreVector, Convergence), AlgoError> {
    let kernel = SweepKernel::new(view)?;
    let out = kernel.solve(&cfg.solver_config(Scheme::GaussSeidel, 1), teleport)?;
    Ok((out.scores, out.convergence))
}

/// Global PageRank via Gauss–Seidel (uniform teleport).
pub fn pagerank_gs(
    view: GraphView<'_>,
    cfg: &PageRankConfig,
) -> Result<(ScoreVector, Convergence), AlgoError> {
    let teleport = TeleportVector::uniform(view.node_count())?;
    pagerank_gauss_seidel(view, cfg, &teleport)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank::pagerank;
    use crate::ppr::personalized_pagerank;
    use relgraph::GraphBuilder;

    #[test]
    fn shim_matches_power_iteration() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 2), (1, 0), (2, 0), (0, 2)]);
        let cfg = PageRankConfig { damping: 0.85, tolerance: 1e-12, max_iterations: 1000 };
        let (power, _) = pagerank(g.view(), &cfg).unwrap();
        let (gs, conv) = pagerank_gs(g.view(), &cfg).unwrap();
        assert!(conv.converged);
        for u in g.nodes() {
            assert!((power.get(u) - gs.get(u)).abs() < 1e-8, "node {u:?}");
        }
        assert!((gs.sum() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shim_matches_personalized_variant() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 0)]);
        let cfg = PageRankConfig { damping: 0.85, tolerance: 1e-12, max_iterations: 1000 };
        let seed = relgraph::NodeId::new(0);
        let (power, _) = personalized_pagerank(g.view(), &cfg, seed).unwrap();
        let teleport = TeleportVector::single(g.node_count(), seed).unwrap();
        let (gs, _) = pagerank_gauss_seidel(g.view(), &cfg, &teleport).unwrap();
        for u in g.nodes() {
            assert!((power.get(u) - gs.get(u)).abs() < 1e-8, "node {u:?}");
        }
    }

    #[test]
    fn invalid_inputs() {
        let empty = GraphBuilder::new().build();
        assert!(pagerank_gs(empty.view(), &PageRankConfig::default()).is_err());
        let g = GraphBuilder::from_edge_indices([(0, 1)]);
        assert!(pagerank_gs(g.view(), &PageRankConfig::with_damping(2.0)).is_err());
    }
}
