//! The shared iterative-solver layer: one damped edge-sweep engine for
//! every stationary-distribution algorithm.
//!
//! PageRank, Personalized PageRank, CheiRank, and 2DRank are all the same
//! computation — iterate `x ← α·P·x + (1−α)·t` to a fixed point, where `P`
//! is the column-stochastic transition matrix of a [`GraphView`] and `t` a
//! teleport distribution — differing only in the *view orientation*
//! (CheiRank sweeps the transposed view) and the *teleport vector* (uniform
//! for global variants, concentrated on a reference node for personalized
//! ones). The seed codebase implemented that sweep five separate times;
//! this module implements it once.
//!
//! [`SweepKernel`] owns the per-view normalization state (`1/W(u)`, read
//! from the graph's build-time weight-sum cache) and executes one of three
//! interchangeable update [`Scheme`]s:
//!
//! * [`Scheme::Power`] — sequential Jacobi (power) iteration in push form:
//!   each sweep scatters `α·x[u]/W(u)` along out-edges. The textbook
//!   baseline.
//! * [`Scheme::GaussSeidel`] — hybrid Gauss–Seidel: pulls over in-edges
//!   using already-updated scores within the sweep (dangling mass lags one
//!   sweep), typically converging in fewer sweeps on web-like graphs.
//! * [`Scheme::Parallel`] — the default: chunked multi-threaded pull. The
//!   node range splits into contiguous chunks, one crossbeam scoped thread
//!   per chunk, each reading the immutable previous vector — no locks, no
//!   atomics, deterministic across thread counts.
//!
//! Every solve can record a [`ConvergenceTrace`] of per-iteration L1
//! residuals, which the engine, server, and CLI surface as progress
//! diagnostics.

use crate::error::AlgoError;
use crate::ppr::TeleportVector;
use crate::result::ScoreVector;
use relgraph::{GraphView, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

// ------------------------------------------------------------------ scheme

/// Which update scheme a [`SweepKernel`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Scheme {
    /// Sequential Jacobi / power iteration (push formulation).
    Power,
    /// Hybrid Gauss–Seidel sweeps (in-place pull updates).
    GaussSeidel,
    /// Chunked multi-threaded pull (the default).
    #[default]
    Parallel,
}

impl Scheme {
    /// All schemes, baseline first.
    pub const ALL: [Scheme; 3] = [Scheme::Power, Scheme::GaussSeidel, Scheme::Parallel];

    /// Stable machine identifier.
    pub fn id(self) -> &'static str {
        match self {
            Scheme::Power => "power",
            Scheme::GaussSeidel => "gauss_seidel",
            Scheme::Parallel => "parallel",
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

impl FromStr for Scheme {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().replace(['-', '_'], "").as_str() {
            "power" | "poweriteration" | "jacobi" => Ok(Scheme::Power),
            "gaussseidel" | "gs" => Ok(Scheme::GaussSeidel),
            "parallel" | "par" | "pull" => Ok(Scheme::Parallel),
            other => {
                Err(format!("unknown scheme {other:?} (expected power|gauss-seidel|parallel)"))
            }
        }
    }
}

// ------------------------------------------------------------ convergence

/// Outcome of an iterative solve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Convergence {
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final L1 residual ‖x_{k+1} − x_k‖₁.
    pub residual: f64,
    /// Whether the residual dropped below the tolerance.
    pub converged: bool,
}

/// Per-iteration L1 residuals of one solve, recorded when
/// [`SolverConfig::record_trace`] is set.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceTrace {
    /// Residual after each sweep, in sweep order.
    pub residuals: Vec<f64>,
}

impl ConvergenceTrace {
    /// Number of recorded sweeps.
    pub fn len(&self) -> usize {
        self.residuals.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.residuals.is_empty()
    }

    /// Residual of the last sweep, if any.
    pub fn last(&self) -> Option<f64> {
        self.residuals.last().copied()
    }

    /// Empirical convergence rate: geometric mean of consecutive residual
    /// ratios (≈ the damping factor for power iteration). `None` with
    /// fewer than two sweeps.
    pub fn rate(&self) -> Option<f64> {
        let finite: Vec<f64> =
            self.residuals.iter().copied().filter(|r| r.is_finite() && *r > 0.0).collect();
        if finite.len() < 2 {
            return None;
        }
        let (first, last) = (finite[0], finite[finite.len() - 1]);
        Some((last / first).powf(1.0 / (finite.len() - 1) as f64))
    }
}

// ----------------------------------------------------------------- config

/// Shared configuration of every kernel solve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolverConfig {
    /// Damping factor α ∈ (0, 1).
    pub damping: f64,
    /// Stop when the L1 norm of the score change drops below this.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
    /// Update scheme (default: [`Scheme::Parallel`]).
    pub scheme: Scheme,
    /// Worker threads for [`Scheme::Parallel`]; `0` means "all available
    /// cores". Clamped to available parallelism and node count.
    pub threads: usize,
    /// Record a [`ConvergenceTrace`] of per-iteration residuals.
    pub record_trace: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            damping: 0.85,
            tolerance: 1e-10,
            max_iterations: 200,
            scheme: Scheme::default(),
            threads: 0,
            record_trace: false,
        }
    }
}

impl SolverConfig {
    /// Config with a specific damping factor and defaults elsewhere.
    pub fn with_damping(damping: f64) -> Self {
        SolverConfig { damping, ..Default::default() }
    }

    /// Sets the update scheme.
    pub fn with_scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Sets the thread count (0 = auto).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables residual tracing.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), AlgoError> {
        if !(self.damping > 0.0 && self.damping < 1.0) {
            return Err(AlgoError::InvalidDamping(self.damping));
        }
        if self.tolerance <= 0.0 || self.tolerance.is_nan() {
            return Err(AlgoError::InvalidParameter {
                name: "tolerance",
                message: format!("must be > 0, got {}", self.tolerance),
            });
        }
        if self.max_iterations == 0 {
            return Err(AlgoError::InvalidParameter {
                name: "max_iterations",
                message: "must be >= 1".into(),
            });
        }
        Ok(())
    }
}

/// Scores, convergence diagnostics, and optional residual trace of one
/// [`SweepKernel::solve`].
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The stationary distribution (sums to 1).
    pub scores: ScoreVector,
    /// Iteration count, final residual, converged flag.
    pub convergence: Convergence,
    /// Per-iteration residuals, when requested.
    pub trace: Option<ConvergenceTrace>,
}

// ----------------------------------------------------------------- kernel

/// Below this many nodes + edges, the auto-threaded parallel scheme runs
/// its single-chunk sequential path: per-sweep thread spawn/join overhead
/// exceeds the sweep cost on small graphs.
pub const PARALLEL_MIN_WORK: usize = 16_384;

/// The number of worker threads actually usable: `requested` (0 = all
/// cores), capped at available parallelism **and** the unit count, never
/// below 1.
pub fn effective_threads(requested: usize, units: usize) -> usize {
    let available = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let requested = if requested == 0 { available } else { requested };
    requested.min(available).min(units).max(1)
}

/// One reusable edge-sweep engine over a [`GraphView`].
///
/// Construction precomputes the inverse out-weight sums `1/W(u)` for the
/// view's orientation (O(V), reading the graph's build-time weight-sum
/// cache); [`SweepKernel::solve`] then runs any scheme against any
/// teleport vector. Every stationary-distribution algorithm in this crate
/// is a thin parameterization of this type:
///
/// | Algorithm | View | Teleport |
/// |-----------|------|----------|
/// | PageRank | forward | uniform |
/// | Personalized PageRank | forward | reference node |
/// | CheiRank | transposed | uniform |
/// | Personalized CheiRank | transposed | reference node |
/// | 2DRank | both | uniform / reference |
pub struct SweepKernel<'a> {
    view: GraphView<'a>,
    /// `1/W(u)` per node in view orientation; `0.0` marks dangling nodes.
    inv_wsum: Vec<f64>,
}

impl<'a> SweepKernel<'a> {
    /// Builds a kernel for one view orientation.
    pub fn new(view: GraphView<'a>) -> Result<Self, AlgoError> {
        let n = view.node_count();
        if n == 0 {
            return Err(AlgoError::EmptyGraph);
        }
        let inv_wsum = (0..n)
            .map(|i| {
                let w = view.out_weight_sum(NodeId::from_usize(i));
                if w > 0.0 {
                    1.0 / w
                } else {
                    0.0
                }
            })
            .collect();
        Ok(SweepKernel { view, inv_wsum })
    }

    /// The view this kernel sweeps.
    pub fn view(&self) -> GraphView<'a> {
        self.view
    }

    /// Node count of the underlying graph.
    pub fn node_count(&self) -> usize {
        self.inv_wsum.len()
    }

    /// Runs the configured scheme to a stationary distribution.
    pub fn solve(
        &self,
        cfg: &SolverConfig,
        teleport: &TeleportVector,
    ) -> Result<SweepOutcome, AlgoError> {
        cfg.validate()?;
        let n = self.node_count();
        if teleport.len() != n {
            return Err(AlgoError::InvalidParameter {
                name: "teleport",
                message: format!("teleport vector has {} entries for {} nodes", teleport.len(), n),
            });
        }
        match cfg.scheme {
            Scheme::Power => self.solve_power(cfg, teleport),
            Scheme::GaussSeidel => self.solve_gauss_seidel(cfg, teleport),
            Scheme::Parallel => self.solve_parallel(cfg, teleport),
        }
    }

    /// Pulls one node's damped in-neighbor sum from `x` (shared by the
    /// Gauss–Seidel and parallel schemes).
    #[inline]
    fn pull(&self, v: NodeId, x: &[f64]) -> f64 {
        let mut pulled = 0.0;
        match self.view.in_weights(v) {
            Some(ws) => {
                for (j, &u) in self.view.in_neighbors(v).iter().enumerate() {
                    pulled += x[u.index()] * ws[j] * self.inv_wsum[u.index()];
                }
            }
            None => {
                for &u in self.view.in_neighbors(v) {
                    pulled += x[u.index()] * self.inv_wsum[u.index()];
                }
            }
        }
        pulled
    }

    /// Mass currently sitting on dangling nodes.
    fn dangling_mass(&self, x: &[f64]) -> f64 {
        x.iter().zip(&self.inv_wsum).filter(|&(_, &inv)| inv == 0.0).map(|(&xi, _)| xi).sum()
    }

    /// Sequential Jacobi (power) iteration, push formulation.
    fn solve_power(
        &self,
        cfg: &SolverConfig,
        teleport: &TeleportVector,
    ) -> Result<SweepOutcome, AlgoError> {
        let n = self.node_count();
        let alpha = cfg.damping;
        let mut x: Vec<f64> = teleport.dense();
        let mut next = vec![0.0f64; n];
        let mut iterations = 0;
        let mut residual = f64::INFINITY;
        let mut trace = cfg.record_trace.then(ConvergenceTrace::default);

        while iterations < cfg.max_iterations {
            iterations += 1;
            let mut dangling = 0.0;
            next.iter_mut().for_each(|v| *v = 0.0);

            for (i, &xi) in x.iter().enumerate() {
                let u = NodeId::from_usize(i);
                if xi == 0.0 {
                    continue;
                }
                let inv = self.inv_wsum[i];
                if inv == 0.0 {
                    dangling += xi;
                    continue;
                }
                let share = alpha * xi * inv;
                match self.view.out_weights(u) {
                    Some(ws) => {
                        for (j, &v) in self.view.out_neighbors(u).iter().enumerate() {
                            next[v.index()] += share * ws[j];
                        }
                    }
                    None => {
                        for &v in self.view.out_neighbors(u) {
                            next[v.index()] += share;
                        }
                    }
                }
            }

            // Teleport + dangling redistribution, both along `teleport`.
            let base = 1.0 - alpha + alpha * dangling;
            teleport.for_each(|i, t| next[i] += base * t);

            residual = x.iter().zip(next.iter()).map(|(a, b)| (a - b).abs()).sum();
            std::mem::swap(&mut x, &mut next);
            if let Some(t) = trace.as_mut() {
                t.residuals.push(residual);
            }
            if residual < cfg.tolerance {
                break;
            }
        }

        let converged = residual < cfg.tolerance;
        Ok(SweepOutcome {
            scores: ScoreVector::new(x),
            convergence: Convergence { iterations, residual, converged },
            trace,
        })
    }

    /// Hybrid Gauss–Seidel sweeps: in-place pull updates within a sweep,
    /// dangling mass from the previous sweep. Converges to the same fixed
    /// point as the Jacobi schemes; normalized at the end because the
    /// lagging dangling term leaves the iterate slightly off the simplex.
    fn solve_gauss_seidel(
        &self,
        cfg: &SolverConfig,
        teleport: &TeleportVector,
    ) -> Result<SweepOutcome, AlgoError> {
        let n = self.node_count();
        let alpha = cfg.damping;
        let teleport_dense = teleport.dense();
        let mut x = teleport_dense.clone();
        let mut iterations = 0;
        let mut residual = f64::INFINITY;
        let mut trace = cfg.record_trace.then(ConvergenceTrace::default);

        while iterations < cfg.max_iterations {
            iterations += 1;
            let dangling = self.dangling_mass(&x);

            let mut delta = 0.0;
            for i in 0..n {
                let pulled = self.pull(NodeId::from_usize(i), &x);
                let new = (1.0 - alpha) * teleport_dense[i]
                    + alpha * (pulled + dangling * teleport_dense[i]);
                delta += (new - x[i]).abs();
                x[i] = new;
            }

            residual = delta;
            if let Some(t) = trace.as_mut() {
                t.residuals.push(residual);
            }
            if residual < cfg.tolerance {
                break;
            }
        }

        let mut scores = ScoreVector::new(x);
        scores.normalize();
        let converged = residual < cfg.tolerance;
        Ok(SweepOutcome {
            scores,
            convergence: Convergence { iterations, residual, converged },
            trace,
        })
    }

    /// Chunked multi-threaded pull: contiguous node chunks, one scoped
    /// thread per chunk, each reading the immutable previous vector.
    /// Deterministic across thread counts (each node's sum is accumulated
    /// by exactly one thread, in in-neighbor order).
    ///
    /// With `threads: 0` (auto), graphs whose node-plus-edge count falls
    /// below [`PARALLEL_MIN_WORK`] run the single-chunk path: scoped
    /// threads are spawned per sweep, and on fixture-sized graphs that
    /// overhead dwarfs the sweep itself. The scores are bitwise identical
    /// either way, so the cutover is invisible except in wall-clock time;
    /// an explicit thread count is always honored (up to the
    /// available-parallelism clamp).
    fn solve_parallel(
        &self,
        cfg: &SolverConfig,
        teleport: &TeleportVector,
    ) -> Result<SweepOutcome, AlgoError> {
        let n = self.node_count();
        let alpha = cfg.damping;
        let work = n + self.view.edge_count();
        let threads = if cfg.threads == 0 && work < PARALLEL_MIN_WORK {
            1
        } else {
            effective_threads(cfg.threads, n)
        };
        let teleport_dense = teleport.dense();
        let mut x = teleport_dense.clone();
        let mut next = vec![0.0f64; n];
        let mut iterations = 0;
        let mut residual = f64::INFINITY;
        let mut trace = cfg.record_trace.then(ConvergenceTrace::default);
        let chunk = n.div_ceil(threads);

        while iterations < cfg.max_iterations {
            iterations += 1;
            let dangling = self.dangling_mass(&x);
            let base = 1.0 - alpha + alpha * dangling;

            if threads == 1 {
                self.pull_chunk(&x, &mut next, 0, alpha, base, &teleport_dense);
            } else {
                let x_ref = &x;
                let tel_ref = &teleport_dense;
                crossbeam::thread::scope(|s| {
                    let mut rest: &mut [f64] = &mut next;
                    let mut lo = 0usize;
                    while !rest.is_empty() {
                        let take = chunk.min(rest.len());
                        let (mine, tail) = rest.split_at_mut(take);
                        rest = tail;
                        s.spawn(move |_| {
                            self.pull_chunk(x_ref, mine, lo, alpha, base, tel_ref);
                        });
                        lo += take;
                    }
                })
                .expect("worker thread panicked");
            }

            // Stopping decision: one sequential index-order pass, so the
            // residual — and with it the iteration count and final scores
            // — is bitwise identical for every thread count (per-chunk
            // partial sums would regroup float addends at the chunk
            // boundaries and could flip a stop right at the tolerance).
            residual = x.iter().zip(next.iter()).map(|(a, b)| (a - b).abs()).sum();

            std::mem::swap(&mut x, &mut next);
            if let Some(t) = trace.as_mut() {
                t.residuals.push(residual);
            }
            if residual < cfg.tolerance {
                break;
            }
        }

        let converged = residual < cfg.tolerance;
        Ok(SweepOutcome {
            scores: ScoreVector::new(x),
            convergence: Convergence { iterations, residual, converged },
            trace,
        })
    }

    /// Pulls new scores for the chunk `out` covering nodes
    /// `lo..lo + out.len()`.
    fn pull_chunk(
        &self,
        x: &[f64],
        out: &mut [f64],
        lo: usize,
        alpha: f64,
        base: f64,
        teleport_dense: &[f64],
    ) {
        for (off, slot) in out.iter_mut().enumerate() {
            let i = lo + off;
            let pulled = self.pull(NodeId::from_usize(i), x);
            *slot = alpha * pulled + base * teleport_dense[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgraph::GraphBuilder;

    fn random_graph(nodes: u32, edges: usize, seed: u64) -> relgraph::DirectedGraph {
        let mut b = GraphBuilder::new();
        b.ensure_node(nodes - 1);
        let mut x = seed | 1;
        for _ in 0..edges {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let u = (x % nodes as u64) as u32;
            let v = ((x >> 20) % nodes as u64) as u32;
            if u != v {
                b.add_edge_indices(u, v);
            }
        }
        b.build()
    }

    fn solve(
        g: &relgraph::DirectedGraph,
        scheme: Scheme,
        threads: usize,
    ) -> (ScoreVector, Convergence) {
        let kernel = SweepKernel::new(g.view()).unwrap();
        let cfg = SolverConfig {
            tolerance: 1e-12,
            max_iterations: 1000,
            scheme,
            threads,
            ..Default::default()
        };
        let teleport = TeleportVector::uniform(g.node_count()).unwrap();
        let out = kernel.solve(&cfg, &teleport).unwrap();
        (out.scores, out.convergence)
    }

    #[test]
    fn schemes_agree_on_random_graph() {
        let g = random_graph(300, 2500, 7);
        let (power, pc) = solve(&g, Scheme::Power, 1);
        for scheme in [Scheme::GaussSeidel, Scheme::Parallel] {
            let (s, c) = solve(&g, scheme, 3);
            assert!(pc.converged && c.converged, "{scheme}");
            for u in g.nodes() {
                assert!(
                    (power.get(u) - s.get(u)).abs() < 1e-9,
                    "{scheme} node {u:?}: {} vs {}",
                    power.get(u),
                    s.get(u)
                );
            }
        }
    }

    #[test]
    fn schemes_agree_with_dangling_and_weights() {
        let mut b = GraphBuilder::new();
        b.add_weighted_edge(relgraph::NodeId::new(0), relgraph::NodeId::new(1), 3.0);
        b.add_weighted_edge(relgraph::NodeId::new(1), relgraph::NodeId::new(0), 1.0);
        b.add_weighted_edge(relgraph::NodeId::new(1), relgraph::NodeId::new(2), 2.0);
        b.add_weighted_edge(relgraph::NodeId::new(0), relgraph::NodeId::new(3), 0.5);
        let g = b.build(); // nodes 2, 3 dangle
        let (power, _) = solve(&g, Scheme::Power, 1);
        assert!((power.sum() - 1.0).abs() < 1e-9);
        for scheme in [Scheme::GaussSeidel, Scheme::Parallel] {
            let (s, _) = solve(&g, scheme, 2);
            assert!((s.sum() - 1.0).abs() < 1e-9, "{scheme}");
            for u in g.nodes() {
                assert!((power.get(u) - s.get(u)).abs() < 1e-9, "{scheme} node {u:?}");
            }
        }
    }

    #[test]
    fn parallel_deterministic_across_thread_counts() {
        let g = random_graph(200, 1500, 5);
        let kernel = SweepKernel::new(g.view()).unwrap();
        let teleport = TeleportVector::uniform(g.node_count()).unwrap();
        let base =
            kernel.solve(&SolverConfig::default().with_threads(1), &teleport).unwrap().scores;
        for threads in [2, 3, 4, 7] {
            let s = kernel
                .solve(&SolverConfig::default().with_threads(threads), &teleport)
                .unwrap()
                .scores;
            assert_eq!(base.as_slice(), s.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn chunked_pull_matches_single_chunk_bitwise() {
        // The determinism-across-thread-counts guarantee reduces to:
        // pulling a node range in several (uneven) chunks produces exactly
        // the values of one full-range pull. Exercised directly so it
        // holds on CI runners with any core count — effective_threads
        // would otherwise clamp high thread requests down and this path
        // would go untested on small machines.
        let g = random_graph(101, 800, 11); // odd n => uneven final chunk
        let kernel = SweepKernel::new(g.view()).unwrap();
        let n = g.node_count();
        let teleport = TeleportVector::uniform(n).unwrap().dense();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0) / (n * n) as f64).collect();
        let (alpha, base) = (0.85, 0.15);

        let mut whole = vec![0.0f64; n];
        kernel.pull_chunk(&x, &mut whole, 0, alpha, base, &teleport);

        for chunks in [2usize, 3, 4, 7] {
            let chunk = n.div_ceil(chunks);
            let mut parts = vec![0.0f64; n];
            let mut rest: &mut [f64] = &mut parts;
            let mut lo = 0;
            while !rest.is_empty() {
                let take = chunk.min(rest.len());
                let (mine, tail) = rest.split_at_mut(take);
                kernel.pull_chunk(&x, mine, lo, alpha, base, &teleport);
                lo += take;
                rest = tail;
            }
            assert_eq!(parts, whole, "{chunks} chunks diverge from one");
        }
    }

    #[test]
    fn transposed_view_solves_cheirank() {
        // In 0 -> 1, the forward solve favors 1; the transposed favors 0.
        let g = GraphBuilder::from_edge_indices([(0, 1)]);
        let teleport = TeleportVector::uniform(2).unwrap();
        let cfg = SolverConfig::default();
        let fwd = SweepKernel::new(g.view()).unwrap().solve(&cfg, &teleport).unwrap().scores;
        let rev = SweepKernel::new(g.transposed()).unwrap().solve(&cfg, &teleport).unwrap().scores;
        assert!(fwd.get(relgraph::NodeId::new(1)) > fwd.get(relgraph::NodeId::new(0)));
        assert!(rev.get(relgraph::NodeId::new(0)) > rev.get(relgraph::NodeId::new(1)));
    }

    #[test]
    fn personalized_teleport_localizes() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 0), (1, 2), (2, 1), (3, 2)]);
        let teleport = TeleportVector::single(4, relgraph::NodeId::new(0)).unwrap();
        for scheme in Scheme::ALL {
            let out = SweepKernel::new(g.view())
                .unwrap()
                .solve(&SolverConfig::default().with_scheme(scheme), &teleport)
                .unwrap();
            // Node 3 is unreachable from the seed.
            assert!(out.scores.get(relgraph::NodeId::new(3)) < 1e-12, "{scheme}");
            assert!(out.scores.get(relgraph::NodeId::new(0)) > 0.0, "{scheme}");
        }
    }

    #[test]
    fn trace_records_every_sweep_and_decays() {
        let g = random_graph(100, 700, 3);
        let kernel = SweepKernel::new(g.view()).unwrap();
        let teleport = TeleportVector::uniform(g.node_count()).unwrap();
        for scheme in Scheme::ALL {
            let cfg = SolverConfig::default().with_scheme(scheme).with_trace();
            let out = kernel.solve(&cfg, &teleport).unwrap();
            let trace = out.trace.expect("trace requested");
            assert_eq!(trace.len(), out.convergence.iterations, "{scheme}");
            assert_eq!(trace.last(), Some(out.convergence.residual), "{scheme}");
            // Residuals decay geometrically: the empirical rate is < 1.
            let rate = trace.rate().expect("multiple sweeps");
            assert!(rate < 1.0, "{scheme}: rate {rate}");
            // Without the flag, no trace is allocated.
            let out =
                kernel.solve(&SolverConfig::default().with_scheme(scheme), &teleport).unwrap();
            assert!(out.trace.is_none(), "{scheme}");
        }
    }

    #[test]
    fn effective_threads_clamps() {
        let available = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        // 0 = auto: all available cores, capped at the unit count.
        assert_eq!(effective_threads(0, usize::MAX), available);
        assert_eq!(effective_threads(0, 2), 2.min(available));
        // Explicit requests cap at available parallelism, not just units.
        assert_eq!(effective_threads(usize::MAX, usize::MAX), available);
        assert_eq!(effective_threads(1, usize::MAX), 1);
        // Never below 1, even for empty unit counts.
        assert_eq!(effective_threads(4, 0), 1);
    }

    #[test]
    fn more_threads_than_nodes() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 0)]);
        let kernel = SweepKernel::new(g.view()).unwrap();
        let teleport = TeleportVector::uniform(2).unwrap();
        let out = kernel.solve(&SolverConfig::default().with_threads(64), &teleport).unwrap();
        assert!((out.scores.sum() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let empty = GraphBuilder::new().build();
        assert!(matches!(SweepKernel::new(empty.view()), Err(AlgoError::EmptyGraph)));

        let g = GraphBuilder::from_edge_indices([(0, 1)]);
        let kernel = SweepKernel::new(g.view()).unwrap();
        let teleport = TeleportVector::uniform(2).unwrap();
        for bad in [0.0, 1.0, -0.5, 1.5] {
            let cfg = SolverConfig::with_damping(bad);
            assert!(matches!(kernel.solve(&cfg, &teleport), Err(AlgoError::InvalidDamping(_))));
        }
        let cfg = SolverConfig { tolerance: 0.0, ..Default::default() };
        assert!(kernel.solve(&cfg, &teleport).is_err());
        let cfg = SolverConfig { max_iterations: 0, ..Default::default() };
        assert!(kernel.solve(&cfg, &teleport).is_err());
        // Mismatched teleport dimension.
        let wrong = TeleportVector::uniform(5).unwrap();
        assert!(kernel.solve(&SolverConfig::default(), &wrong).is_err());
    }

    #[test]
    fn scheme_parse_roundtrip() {
        for scheme in Scheme::ALL {
            assert_eq!(scheme.id().parse::<Scheme>().unwrap(), scheme);
        }
        assert_eq!("gauss-seidel".parse::<Scheme>().unwrap(), Scheme::GaussSeidel);
        assert_eq!("gs".parse::<Scheme>().unwrap(), Scheme::GaussSeidel);
        assert_eq!("par".parse::<Scheme>().unwrap(), Scheme::Parallel);
        assert_eq!("Jacobi".parse::<Scheme>().unwrap(), Scheme::Power);
        assert!("quantum".parse::<Scheme>().is_err());
        assert_eq!(Scheme::default(), Scheme::Parallel);
    }

    #[test]
    fn gauss_seidel_converges_in_comparable_sweeps() {
        let g = random_graph(500, 4000, 0x2545F4914F6CDD1D);
        let (_, p) = solve(&g, Scheme::Power, 1);
        let (_, gs) = solve(&g, Scheme::GaussSeidel, 1);
        assert!(p.converged && gs.converged);
        assert!(
            gs.iterations <= p.iterations * 4,
            "gs {} vs power {}",
            gs.iterations,
            p.iterations
        );
    }
}
