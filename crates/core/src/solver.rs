//! The shared iterative-solver layer: one damped edge-sweep engine for
//! every stationary-distribution algorithm.
//!
//! PageRank, Personalized PageRank, CheiRank, and 2DRank are all the same
//! computation — iterate `x ← α·P·x + (1−α)·t` to a fixed point, where `P`
//! is the column-stochastic transition matrix of a [`GraphView`] and `t` a
//! teleport distribution — differing only in the *view orientation*
//! (CheiRank sweeps the transposed view) and the *teleport vector* (uniform
//! for global variants, concentrated on a reference node for personalized
//! ones). The seed codebase implemented that sweep five separate times;
//! this module implements it once.
//!
//! [`SweepKernel`] owns the per-view normalization state (`1/W(u)`, read
//! from the graph's build-time weight-sum cache) and executes one of three
//! interchangeable update [`Scheme`]s:
//!
//! * [`Scheme::Power`] — sequential Jacobi (power) iteration in push form:
//!   each sweep scatters `α·x[u]/W(u)` along out-edges. The textbook
//!   baseline.
//! * [`Scheme::GaussSeidel`] — hybrid Gauss–Seidel: pulls over in-edges
//!   using already-updated scores within the sweep (dangling mass lags one
//!   sweep), typically converging in fewer sweeps on web-like graphs.
//! * [`Scheme::Parallel`] — the default: chunked multi-threaded pull. The
//!   node range splits into contiguous chunks, one crossbeam scoped thread
//!   per chunk, each reading the immutable previous vector — no locks, no
//!   atomics, deterministic across thread counts.
//!
//! Every solve can record a [`ConvergenceTrace`] of per-iteration L1
//! residuals, which the engine, server, and CLI surface as progress
//! diagnostics.

use crate::arena::{current_arena, ArenaBuf, PoolItem};
use crate::error::AlgoError;
use crate::ppr::TeleportVector;
use crate::result::{top_k_pairs, ScoreVector};
use relgraph::{GraphView, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;
use std::sync::{Arc, OnceLock};

// ------------------------------------------------------------------ scheme

/// Which update scheme a [`SweepKernel`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Scheme {
    /// Sequential Jacobi / power iteration (push formulation).
    Power,
    /// Hybrid Gauss–Seidel sweeps (in-place pull updates).
    GaussSeidel,
    /// Chunked multi-threaded pull (the default).
    #[default]
    Parallel,
}

impl Scheme {
    /// All schemes, baseline first.
    pub const ALL: [Scheme; 3] = [Scheme::Power, Scheme::GaussSeidel, Scheme::Parallel];

    /// Stable machine identifier.
    pub fn id(self) -> &'static str {
        match self {
            Scheme::Power => "power",
            Scheme::GaussSeidel => "gauss_seidel",
            Scheme::Parallel => "parallel",
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

impl FromStr for Scheme {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().replace(['-', '_'], "").as_str() {
            "power" | "poweriteration" | "jacobi" => Ok(Scheme::Power),
            "gaussseidel" | "gs" => Ok(Scheme::GaussSeidel),
            "parallel" | "par" | "pull" => Ok(Scheme::Parallel),
            other => {
                Err(format!("unknown scheme {other:?} (expected power|gauss-seidel|parallel)"))
            }
        }
    }
}

// -------------------------------------------------------------- precision

/// The smallest convergence tolerance the `f32` score lane honors.
///
/// A single-precision L1 residual bottoms out at the lane's rounding
/// noise (≈ `f32::EPSILON` once per-node mass is summed over the whole
/// vector), so tolerances below this would spin to the iteration cap
/// without the iterate actually improving. Configured tolerances are
/// clamped up to this floor on the `f32` lane; the `f64` lane is
/// unaffected.
pub const F32_TOLERANCE_FLOOR: f64 = 1e-6;

/// Which score lane a solve runs in.
///
/// The narrow lane halves the solver's working-set bytes and memory
/// bandwidth per sweep — the dominant cost on large graphs — at the price
/// of single-precision arithmetic: scores match the `f64` lane to roughly
/// `1e-6` absolute (proptested), and the effective tolerance is clamped
/// to [`F32_TOLERANCE_FLOOR`]. Certified-error paths (forward push,
/// certified top-k) always run in `f64` regardless of this setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Precision {
    /// Full double-precision lane (the default).
    #[default]
    F64,
    /// Narrow single-precision lane.
    F32,
}

impl Precision {
    /// All lanes, full precision first.
    pub const ALL: [Precision; 2] = [Precision::F64, Precision::F32];

    /// Stable machine identifier.
    pub fn id(self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

impl FromStr for Precision {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "f64" | "double" | "64" => Ok(Precision::F64),
            "f32" | "single" | "float" | "32" => Ok(Precision::F32),
            other => Err(format!("unknown precision {other:?} (expected f64|f32)")),
        }
    }
}

/// A score-lane element type: the float the solver's working vectors hold.
///
/// Implemented for `f64` and `f32` only (sealed via [`PoolItem`]). The
/// kernel's scheme solvers are generic over this, so both lanes share one
/// implementation; the `f64` instantiation is the exact pre-existing code
/// path (identical expression shapes and accumulation order — the bitwise
/// determinism guarantees are asserted against it).
pub trait SolveFloat:
    PoolItem
    + PartialOrd
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::ops::AddAssign
{
    /// Multiplicative identity.
    const ONE: Self;
    /// Tolerances below this are clamped up (rounding-noise floor).
    const TOLERANCE_FLOOR: f64;

    /// Narrows (or passes through) an `f64`.
    fn from_f64(v: f64) -> Self;
    /// Widens back to `f64`.
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;

    #[doc(hidden)]
    fn inv_wsum<'k>(kernel: &'k SweepKernel<'_>) -> &'k [Self];

    #[doc(hidden)]
    fn widen(buf: ArenaBuf<Self>) -> ArenaBuf<f64>;
}

impl SolveFloat for f64 {
    const ONE: f64 = 1.0;
    const TOLERANCE_FLOOR: f64 = 0.0;

    fn from_f64(v: f64) -> f64 {
        v
    }

    fn to_f64(self) -> f64 {
        self
    }

    fn abs(self) -> f64 {
        f64::abs(self)
    }

    fn inv_wsum<'k>(kernel: &'k SweepKernel<'_>) -> &'k [f64] {
        &kernel.inv_wsum
    }

    fn widen(buf: ArenaBuf<f64>) -> ArenaBuf<f64> {
        buf
    }
}

impl SolveFloat for f32 {
    const ONE: f32 = 1.0;
    const TOLERANCE_FLOOR: f64 = F32_TOLERANCE_FLOOR;

    fn from_f64(v: f64) -> f32 {
        v as f32
    }

    fn to_f64(self) -> f64 {
        self as f64
    }

    fn abs(self) -> f32 {
        f32::abs(self)
    }

    fn inv_wsum<'k>(kernel: &'k SweepKernel<'_>) -> &'k [f32] {
        kernel.inv_wsum_f32.get_or_init(|| kernel.inv_wsum.iter().map(|&v| v as f32).collect())
    }

    fn widen(buf: ArenaBuf<f32>) -> ArenaBuf<f64> {
        let arena = Arc::clone(buf.arena());
        let mut out = arena.take(buf.len());
        for (o, &v) in out.iter_mut().zip(buf.iter()) {
            *o = v as f64;
        }
        out
    }
}

/// Fills `out` with the dense teleport distribution, narrowed to the lane.
fn fill_teleport<T: SolveFloat>(teleport: &TeleportVector, out: &mut [T]) {
    out.iter_mut().for_each(|v| *v = T::ZERO);
    teleport.for_each(|i, w| out[i] = T::from_f64(w));
}

/// Narrows a warm-start `f64` iterate into the lane (copy on `f64`).
fn narrow_into<T: SolveFloat>(src: &[f64], out: &mut [T]) {
    for (o, &v) in out.iter_mut().zip(src) {
        *o = T::from_f64(v);
    }
}

// ------------------------------------------------------------ convergence

/// Outcome of an iterative solve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Convergence {
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final L1 residual ‖x_{k+1} − x_k‖₁.
    pub residual: f64,
    /// Whether the residual dropped below the tolerance.
    pub converged: bool,
}

/// Per-iteration L1 residuals of one solve, recorded when
/// [`SolverConfig::record_trace`] is set.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceTrace {
    /// Residual after each sweep, in sweep order.
    pub residuals: Vec<f64>,
}

impl ConvergenceTrace {
    /// Number of recorded sweeps.
    pub fn len(&self) -> usize {
        self.residuals.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.residuals.is_empty()
    }

    /// Residual of the last sweep, if any.
    pub fn last(&self) -> Option<f64> {
        self.residuals.last().copied()
    }

    /// Empirical convergence rate: geometric mean of consecutive residual
    /// ratios (≈ the damping factor for power iteration). `None` with
    /// fewer than two sweeps.
    pub fn rate(&self) -> Option<f64> {
        let finite: Vec<f64> =
            self.residuals.iter().copied().filter(|r| r.is_finite() && *r > 0.0).collect();
        if finite.len() < 2 {
            return None;
        }
        let (first, last) = (finite[0], finite[finite.len() - 1]);
        Some((last / first).powf(1.0 / (finite.len() - 1) as f64))
    }
}

// ----------------------------------------------------------------- config

/// Shared configuration of every kernel solve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolverConfig {
    /// Damping factor α ∈ (0, 1).
    pub damping: f64,
    /// Stop when the L1 norm of the score change drops below this.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
    /// Update scheme (default: [`Scheme::Parallel`]).
    pub scheme: Scheme,
    /// Worker threads for [`Scheme::Parallel`]; `0` means "all available
    /// cores". Clamped to available parallelism and node count.
    pub threads: usize,
    /// Record a [`ConvergenceTrace`] of per-iteration residuals.
    pub record_trace: bool,
    /// Score-lane precision (default: [`Precision::F64`]). The narrow
    /// lane clamps `tolerance` up to [`F32_TOLERANCE_FLOOR`].
    #[serde(default)]
    pub precision: Precision,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            damping: 0.85,
            tolerance: 1e-10,
            max_iterations: 200,
            scheme: Scheme::default(),
            threads: 0,
            record_trace: false,
            precision: Precision::default(),
        }
    }
}

impl SolverConfig {
    /// Config with a specific damping factor and defaults elsewhere.
    pub fn with_damping(damping: f64) -> Self {
        SolverConfig { damping, ..Default::default() }
    }

    /// Sets the update scheme.
    pub fn with_scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Sets the thread count (0 = auto).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables residual tracing.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Sets the score-lane precision.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), AlgoError> {
        if !(self.damping > 0.0 && self.damping < 1.0) {
            return Err(AlgoError::InvalidDamping(self.damping));
        }
        if self.tolerance <= 0.0 || self.tolerance.is_nan() {
            return Err(AlgoError::InvalidParameter {
                name: "tolerance",
                message: format!("must be > 0, got {}", self.tolerance),
            });
        }
        if self.max_iterations == 0 {
            return Err(AlgoError::InvalidParameter {
                name: "max_iterations",
                message: "must be >= 1".into(),
            });
        }
        Ok(())
    }
}

/// Scores, convergence diagnostics, and optional residual trace of one
/// [`SweepKernel::solve`].
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The stationary distribution (sums to 1).
    pub scores: ScoreVector,
    /// Iteration count, final residual, converged flag.
    pub convergence: Convergence,
    /// Per-iteration residuals, when requested.
    pub trace: Option<ConvergenceTrace>,
}

/// The top-`k` slice of a stationary distribution, from
/// [`SweepKernel::solve_top_k`]: only `k` `(node, score)` pairs escape the
/// solve — the full score vector lives and dies in the solver arena, so
/// steady-state top-k serving performs zero `O(n)` allocations.
#[derive(Debug, Clone)]
pub struct TopKOutcome {
    /// The `k` highest-scoring nodes, descending (ties by ascending id),
    /// with their exact stationary scores.
    pub top: Vec<(NodeId, f64)>,
    /// Iteration count, final residual, converged flag.
    pub convergence: Convergence,
    /// Per-iteration residuals, when requested.
    pub trace: Option<ConvergenceTrace>,
}

/// A finished solve whose scores still live in the arena — the internal
/// result every scheme produces; [`SweepKernel::solve`] detaches the
/// buffer into a [`ScoreVector`], [`SweepKernel::solve_top_k`] ranks in
/// place and returns the buffer to the pool.
struct SolvedBuf {
    scores: ArenaBuf,
    convergence: Convergence,
    trace: Option<ConvergenceTrace>,
}

// ----------------------------------------------------------------- kernel

/// Below this many nodes + edges, the auto-threaded parallel scheme runs
/// its single-chunk sequential path: per-sweep thread spawn/join overhead
/// exceeds the sweep cost on small graphs.
pub const PARALLEL_MIN_WORK: usize = 16_384;

/// Widest lane group one fused batch sweep carries: wider batches split
/// into groups of this size, so [`SweepKernel::solve_batch`] working
/// memory stays `O(n · MAX_FUSED_LANES)` no matter how many seeds a
/// caller submits (three interleaved `f64` buffers ≈ 0.75 MB per million
/// nodes per lane). Traversal amortization has flattened well before this
/// width.
pub const MAX_FUSED_LANES: usize = 32;

/// The number of worker threads actually usable: `requested` (0 = all
/// cores), capped at available parallelism **and** the unit count, never
/// below 1.
pub fn effective_threads(requested: usize, units: usize) -> usize {
    let available = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let requested = if requested == 0 { available } else { requested };
    requested.min(available).min(units).max(1)
}

/// One reusable edge-sweep engine over a [`GraphView`].
///
/// Construction precomputes the inverse out-weight sums `1/W(u)` for the
/// view's orientation (O(V), reading the graph's build-time weight-sum
/// cache); [`SweepKernel::solve`] then runs any scheme against any
/// teleport vector. Every stationary-distribution algorithm in this crate
/// is a thin parameterization of this type:
///
/// | Algorithm | View | Teleport |
/// |-----------|------|----------|
/// | PageRank | forward | uniform |
/// | Personalized PageRank | forward | reference node |
/// | CheiRank | transposed | uniform |
/// | Personalized CheiRank | transposed | reference node |
/// | 2DRank | both | uniform / reference |
pub struct SweepKernel<'a> {
    view: GraphView<'a>,
    /// `1/W(u)` per node in view orientation; `0.0` marks dangling nodes.
    inv_wsum: Vec<f64>,
    /// Narrowed copy of `inv_wsum`, materialized on the first `f32`-lane
    /// solve and reused for the kernel's lifetime.
    inv_wsum_f32: OnceLock<Vec<f32>>,
}

impl<'a> SweepKernel<'a> {
    /// Builds a kernel for one view orientation.
    pub fn new(view: GraphView<'a>) -> Result<Self, AlgoError> {
        let n = view.node_count();
        if n == 0 {
            return Err(AlgoError::EmptyGraph);
        }
        let inv_wsum = (0..n)
            .map(|i| {
                let w = view.out_weight_sum(NodeId::from_usize(i));
                if w > 0.0 {
                    1.0 / w
                } else {
                    0.0
                }
            })
            .collect();
        Ok(SweepKernel { view, inv_wsum, inv_wsum_f32: OnceLock::new() })
    }

    /// The view this kernel sweeps.
    pub fn view(&self) -> GraphView<'a> {
        self.view
    }

    /// Node count of the underlying graph.
    pub fn node_count(&self) -> usize {
        self.inv_wsum.len()
    }

    /// Runs the configured scheme to a stationary distribution.
    ///
    /// Working buffers come from the thread's current [`crate::arena::SolverArena`]
    /// (see [`crate::arena::with_arena`]); only the returned score vector
    /// escapes the arena, so a steady-state full-rank solve performs
    /// exactly one `O(n)` allocation. Use [`SweepKernel::solve_top_k`]
    /// when the caller only consumes the top-`k` — that path performs
    /// none.
    pub fn solve(
        &self,
        cfg: &SolverConfig,
        teleport: &TeleportVector,
    ) -> Result<SweepOutcome, AlgoError> {
        let out = self.solve_buf(cfg, teleport, None)?;
        Ok(SweepOutcome {
            scores: ScoreVector::new(out.scores.detach()),
            convergence: out.convergence,
            trace: out.trace,
        })
    }

    /// Like [`SweepKernel::solve`], but **warm-started**: the iterate is
    /// seeded from `prev` instead of the teleport vector. When `prev` is a
    /// (near-)fixed point of a *similar* problem — the same query before a
    /// handful of edge mutations, or a neighbouring seed — convergence
    /// takes a fraction of the cold sweep count, because the initial
    /// residual is the distance between the two fixed points rather than
    /// the distance from the teleport distribution.
    ///
    /// The warm path changes only the starting iterate: seeding with the
    /// dense teleport vector reproduces the cold solve **bitwise**
    /// (identical scores, iteration count, residuals — asserted by a
    /// proptest), and any start converges to the same fixed point within
    /// the configured tolerance.
    pub fn solve_warm(
        &self,
        cfg: &SolverConfig,
        teleport: &TeleportVector,
        prev: &[f64],
    ) -> Result<SweepOutcome, AlgoError> {
        let out = self.solve_buf(cfg, teleport, Some(prev))?;
        Ok(SweepOutcome {
            scores: ScoreVector::new(out.scores.detach()),
            convergence: out.convergence,
            trace: out.trace,
        })
    }

    /// The warm-started variant of [`SweepKernel::solve_top_k`]: seeds the
    /// iterate from `prev` (see [`SweepKernel::solve_warm`]) and returns
    /// only the top-`k` pairs, with the full vector living and dying in
    /// the solver arena.
    pub fn solve_top_k_warm(
        &self,
        cfg: &SolverConfig,
        teleport: &TeleportVector,
        prev: &[f64],
        k: usize,
    ) -> Result<TopKOutcome, AlgoError> {
        let out = self.solve_buf(cfg, teleport, Some(prev))?;
        Ok(TopKOutcome {
            top: top_k_pairs(&out.scores, k),
            convergence: out.convergence,
            trace: out.trace,
        })
    }

    /// Runs the configured scheme and returns only the top-`k`
    /// `(node, score)` pairs (exact scores, descending, ties by ascending
    /// id — identical to ranking the full [`SweepKernel::solve`] result
    /// and truncating). The full score vector never leaves the solver
    /// arena: after warm-up this path allocates no `O(n)` buffers, which
    /// is what makes it the high-QPS serving shape.
    pub fn solve_top_k(
        &self,
        cfg: &SolverConfig,
        teleport: &TeleportVector,
        k: usize,
    ) -> Result<TopKOutcome, AlgoError> {
        let out = self.solve_buf(cfg, teleport, None)?;
        Ok(TopKOutcome {
            top: top_k_pairs(&out.scores, k),
            convergence: out.convergence,
            trace: out.trace,
        })
    }

    fn solve_buf(
        &self,
        cfg: &SolverConfig,
        teleport: &TeleportVector,
        warm: Option<&[f64]>,
    ) -> Result<SolvedBuf, AlgoError> {
        cfg.validate()?;
        let n = self.node_count();
        if teleport.len() != n {
            return Err(AlgoError::InvalidParameter {
                name: "teleport",
                message: format!("teleport vector has {} entries for {} nodes", teleport.len(), n),
            });
        }
        if let Some(prev) = warm {
            if prev.len() != n {
                return Err(AlgoError::InvalidParameter {
                    name: "warm_start",
                    message: format!("warm-start vector has {} entries for {n} nodes", prev.len()),
                });
            }
        }
        match cfg.precision {
            Precision::F64 => self.solve_scheme::<f64>(cfg, teleport, warm),
            Precision::F32 => self.solve_scheme::<f32>(cfg, teleport, warm),
        }
    }

    fn solve_scheme<T: SolveFloat>(
        &self,
        cfg: &SolverConfig,
        teleport: &TeleportVector,
        warm: Option<&[f64]>,
    ) -> Result<SolvedBuf, AlgoError> {
        match cfg.scheme {
            Scheme::Power => self.solve_power::<T>(cfg, teleport, warm),
            Scheme::GaussSeidel => self.solve_gauss_seidel::<T>(cfg, teleport, warm),
            Scheme::Parallel => self.solve_parallel::<T>(cfg, teleport, warm),
        }
    }

    /// Pulls one node's damped in-neighbor sum from `x` (shared by the
    /// Gauss–Seidel and parallel schemes). The CSR arms walk raw slices;
    /// the compact tier decodes the delta-varint stream.
    #[inline]
    fn pull<T: SolveFloat>(&self, v: NodeId, x: &[T], inv_wsum: &[T]) -> T {
        let mut pulled = T::ZERO;
        match self.view.in_arrays(v) {
            Some((nbrs, Some(ws))) => {
                for (j, &u) in nbrs.iter().enumerate() {
                    pulled += x[u.index()] * T::from_f64(ws[j]) * inv_wsum[u.index()];
                }
            }
            Some((nbrs, None)) => {
                for &u in nbrs {
                    pulled += x[u.index()] * inv_wsum[u.index()];
                }
            }
            None if self.view.is_weighted() => {
                for (u, w) in self.view.in_edges(v) {
                    pulled += x[u.index()] * T::from_f64(w) * inv_wsum[u.index()];
                }
            }
            None => {
                for u in self.view.in_neighbors(v) {
                    pulled += x[u.index()] * inv_wsum[u.index()];
                }
            }
        }
        pulled
    }

    /// Mass currently sitting on dangling nodes.
    fn dangling_mass<T: SolveFloat>(&self, x: &[T], inv_wsum: &[T]) -> T {
        let mut mass = T::ZERO;
        for (&xi, &inv) in x.iter().zip(inv_wsum) {
            if inv == T::ZERO {
                mass += xi;
            }
        }
        mass
    }

    /// Sequential Jacobi (power) iteration, push formulation.
    fn solve_power<T: SolveFloat>(
        &self,
        cfg: &SolverConfig,
        teleport: &TeleportVector,
        warm: Option<&[f64]>,
    ) -> Result<SolvedBuf, AlgoError> {
        let n = self.node_count();
        let alpha = T::from_f64(cfg.damping);
        let tol = cfg.tolerance.max(T::TOLERANCE_FLOOR);
        let inv_wsum = T::inv_wsum(self);
        let arena = current_arena();
        let mut x = arena.take_buf::<T>(n);
        match warm {
            Some(prev) => narrow_into(prev, &mut x),
            None => fill_teleport(teleport, &mut x),
        }
        let mut next = arena.take_buf::<T>(n);
        let mut iterations = 0;
        let mut residual = f64::INFINITY;
        let mut trace = cfg.record_trace.then(ConvergenceTrace::default);

        while iterations < cfg.max_iterations {
            iterations += 1;
            let mut dangling = T::ZERO;
            next.iter_mut().for_each(|v| *v = T::ZERO);

            for (i, &xi) in x.iter().enumerate() {
                let u = NodeId::from_usize(i);
                if xi == T::ZERO {
                    continue;
                }
                let inv = inv_wsum[i];
                if inv == T::ZERO {
                    dangling += xi;
                    continue;
                }
                let share = alpha * xi * inv;
                match self.view.out_arrays(u) {
                    Some((nbrs, Some(ws))) => {
                        for (j, &v) in nbrs.iter().enumerate() {
                            next[v.index()] += share * T::from_f64(ws[j]);
                        }
                    }
                    Some((nbrs, None)) => {
                        for &v in nbrs {
                            next[v.index()] += share;
                        }
                    }
                    None if self.view.is_weighted() => {
                        for (v, w) in self.view.out_edges(u) {
                            next[v.index()] += share * T::from_f64(w);
                        }
                    }
                    None => {
                        for v in self.view.out_neighbors(u) {
                            next[v.index()] += share;
                        }
                    }
                }
            }

            // Teleport + dangling redistribution, both along `teleport`.
            let base = T::ONE - alpha + alpha * dangling;
            teleport.for_each(|i, t| next[i] += base * T::from_f64(t));

            let mut delta = T::ZERO;
            for (&a, &b) in x.iter().zip(next.iter()) {
                delta += (a - b).abs();
            }
            residual = delta.to_f64();
            std::mem::swap(&mut x, &mut next);
            if let Some(t) = trace.as_mut() {
                t.residuals.push(residual);
            }
            if residual < tol {
                break;
            }
        }

        let converged = residual < tol;
        Ok(SolvedBuf {
            scores: T::widen(x),
            convergence: Convergence { iterations, residual, converged },
            trace,
        })
    }

    /// Hybrid Gauss–Seidel sweeps: in-place pull updates within a sweep,
    /// dangling mass from the previous sweep. Converges to the same fixed
    /// point as the Jacobi schemes; normalized at the end because the
    /// lagging dangling term leaves the iterate slightly off the simplex.
    fn solve_gauss_seidel<T: SolveFloat>(
        &self,
        cfg: &SolverConfig,
        teleport: &TeleportVector,
        warm: Option<&[f64]>,
    ) -> Result<SolvedBuf, AlgoError> {
        let n = self.node_count();
        let alpha = T::from_f64(cfg.damping);
        let tol = cfg.tolerance.max(T::TOLERANCE_FLOOR);
        let inv_wsum = T::inv_wsum(self);
        let arena = current_arena();
        let mut teleport_dense = arena.take_buf::<T>(n);
        fill_teleport(teleport, &mut teleport_dense);
        let mut x = arena.take_buf::<T>(n);
        match warm {
            Some(prev) => narrow_into(prev, &mut x),
            None => x.copy_from_slice(&teleport_dense),
        }
        let mut iterations = 0;
        let mut residual = f64::INFINITY;
        let mut trace = cfg.record_trace.then(ConvergenceTrace::default);

        while iterations < cfg.max_iterations {
            iterations += 1;
            let dangling = self.dangling_mass(&x, inv_wsum);

            let mut delta = T::ZERO;
            for i in 0..n {
                let pulled = self.pull(NodeId::from_usize(i), &x, inv_wsum);
                let new = (T::ONE - alpha) * teleport_dense[i]
                    + alpha * (pulled + dangling * teleport_dense[i]);
                delta += (new - x[i]).abs();
                x[i] = new;
            }

            residual = delta.to_f64();
            if let Some(t) = trace.as_mut() {
                t.residuals.push(residual);
            }
            if residual < tol {
                break;
            }
        }

        // Normalize in place (in the arena buffer) so both the full-rank
        // and top-k result paths see scores on the simplex.
        let mut sum = T::ZERO;
        for &v in x.iter() {
            sum += v;
        }
        if sum > T::ZERO {
            x.iter_mut().for_each(|v| *v = *v / sum);
        }
        let converged = residual < tol;
        Ok(SolvedBuf {
            scores: T::widen(x),
            convergence: Convergence { iterations, residual, converged },
            trace,
        })
    }

    /// Chunked multi-threaded pull: contiguous node chunks, one scoped
    /// thread per chunk, each reading the immutable previous vector.
    /// Deterministic across thread counts (each node's sum is accumulated
    /// by exactly one thread, in in-neighbor order).
    ///
    /// With `threads: 0` (auto), graphs whose node-plus-edge count falls
    /// below [`PARALLEL_MIN_WORK`] run the single-chunk path: scoped
    /// threads are spawned per sweep, and on fixture-sized graphs that
    /// overhead dwarfs the sweep itself. The scores are bitwise identical
    /// either way, so the cutover is invisible except in wall-clock time;
    /// an explicit thread count is always honored (up to the
    /// available-parallelism clamp).
    fn solve_parallel<T: SolveFloat>(
        &self,
        cfg: &SolverConfig,
        teleport: &TeleportVector,
        warm: Option<&[f64]>,
    ) -> Result<SolvedBuf, AlgoError> {
        let n = self.node_count();
        let alpha = T::from_f64(cfg.damping);
        let tol = cfg.tolerance.max(T::TOLERANCE_FLOOR);
        let inv_wsum = T::inv_wsum(self);
        let work = n + self.view.edge_count();
        let threads = if cfg.threads == 0 && work < PARALLEL_MIN_WORK {
            1
        } else {
            effective_threads(cfg.threads, n)
        };
        let arena = current_arena();
        let mut teleport_dense = arena.take_buf::<T>(n);
        fill_teleport(teleport, &mut teleport_dense);
        let mut x = arena.take_buf::<T>(n);
        match warm {
            Some(prev) => narrow_into(prev, &mut x),
            None => x.copy_from_slice(&teleport_dense),
        }
        let mut next = arena.take_buf::<T>(n);
        let mut iterations = 0;
        let mut residual = f64::INFINITY;
        let mut trace = cfg.record_trace.then(ConvergenceTrace::default);
        let chunk = n.div_ceil(threads);

        while iterations < cfg.max_iterations {
            iterations += 1;
            let dangling = self.dangling_mass(&x, inv_wsum);
            let base = T::ONE - alpha + alpha * dangling;

            if threads == 1 {
                self.pull_chunk(&x, &mut next, 0, alpha, base, &teleport_dense, inv_wsum);
            } else {
                let x_ref: &[T] = &x;
                let tel_ref: &[T] = &teleport_dense;
                crossbeam::thread::scope(|s| {
                    let mut rest: &mut [T] = &mut next;
                    let mut lo = 0usize;
                    while !rest.is_empty() {
                        let take = chunk.min(rest.len());
                        let (mine, tail) = rest.split_at_mut(take);
                        rest = tail;
                        s.spawn(move |_| {
                            self.pull_chunk(x_ref, mine, lo, alpha, base, tel_ref, inv_wsum);
                        });
                        lo += take;
                    }
                })
                .expect("worker thread panicked");
            }

            // Stopping decision: one sequential index-order pass, so the
            // residual — and with it the iteration count and final scores
            // — is bitwise identical for every thread count (per-chunk
            // partial sums would regroup float addends at the chunk
            // boundaries and could flip a stop right at the tolerance).
            let mut delta = T::ZERO;
            for (&a, &b) in x.iter().zip(next.iter()) {
                delta += (a - b).abs();
            }
            residual = delta.to_f64();

            std::mem::swap(&mut x, &mut next);
            if let Some(t) = trace.as_mut() {
                t.residuals.push(residual);
            }
            if residual < tol {
                break;
            }
        }

        let converged = residual < tol;
        Ok(SolvedBuf {
            scores: T::widen(x),
            convergence: Convergence { iterations, residual, converged },
            trace,
        })
    }

    /// Pulls new scores for the chunk `out` covering nodes
    /// `lo..lo + out.len()`.
    #[allow(clippy::too_many_arguments)]
    fn pull_chunk<T: SolveFloat>(
        &self,
        x: &[T],
        out: &mut [T],
        lo: usize,
        alpha: T,
        base: T,
        teleport_dense: &[T],
        inv_wsum: &[T],
    ) {
        for (off, slot) in out.iter_mut().enumerate() {
            let i = lo + off;
            let pulled = self.pull(NodeId::from_usize(i), x, inv_wsum);
            *slot = alpha * pulled + base * teleport_dense[i];
        }
    }

    // ------------------------------------------------------------- batched

    /// Solves `B = teleports.len()` independent stationary distributions in
    /// one multi-vector sweep: the edge arrays are traversed once per
    /// iteration and every visit updates all `B` score vectors, amortizing
    /// graph traversal and cache misses across seeds.
    ///
    /// The vectors are stored node-major (`x[i * B + b]`), so each edge
    /// visit touches `B` consecutive lanes. Per-lane arithmetic keeps the
    /// exact expression shape and accumulation order of the single-vector
    /// pull, and each lane tracks its own convergence (a converged lane's
    /// scores are snapshotted at the iteration where its residual crossed
    /// the tolerance), so **every outcome is bitwise identical to the
    /// corresponding independent [`SweepKernel::solve`] run** under
    /// [`Scheme::Parallel`]. The [`Scheme::Power`] and
    /// [`Scheme::GaussSeidel`] schemes have no fused formulation and fall
    /// back to sequential per-teleport solves (trivially identical).
    ///
    /// Batches wider than [`MAX_FUSED_LANES`] are solved in groups of that
    /// size, bounding working memory at `O(n · MAX_FUSED_LANES)` for any
    /// seed count (lanes are independent, so grouping changes nothing but
    /// wall-clock layout).
    pub fn solve_batch(
        &self,
        cfg: &SolverConfig,
        teleports: &[TeleportVector],
    ) -> Result<Vec<SweepOutcome>, AlgoError> {
        cfg.validate()?;
        let n = self.node_count();
        for t in teleports {
            if t.len() != n {
                return Err(AlgoError::InvalidParameter {
                    name: "teleport",
                    message: format!("teleport vector has {} entries for {} nodes", t.len(), n),
                });
            }
        }
        match (cfg.scheme, teleports.len()) {
            (_, 0) => Ok(Vec::new()),
            (Scheme::Power | Scheme::GaussSeidel, _) | (_, 1) => {
                teleports.iter().map(|t| self.solve(cfg, t)).collect()
            }
            // The fused interleave is an f64 formulation; the narrow lane
            // solves per seed (trivially identical to its single solves).
            (Scheme::Parallel, _) if cfg.precision != Precision::F64 => {
                teleports.iter().map(|t| self.solve(cfg, t)).collect()
            }
            (Scheme::Parallel, _) => {
                let mut out = Vec::with_capacity(teleports.len());
                for group in teleports.chunks(MAX_FUSED_LANES) {
                    out.extend(self.solve_parallel_batch(cfg, group)?);
                }
                Ok(out)
            }
        }
    }

    /// The fused multi-vector variant of [`SweepKernel::solve_parallel`].
    ///
    /// Seeds converge at different sweep counts (a hub seed settles in a
    /// handful of iterations, a periphery seed in dozens), so converged
    /// lanes are *compacted out* of the working buffers: their scores are
    /// snapshotted at the sweep where their residual crossed the tolerance
    /// — exactly the single-vector stopping point — and the remaining
    /// lanes keep sweeping in a narrower interleave. Total lane-sweeps
    /// thus equal the sum of the individual runs' iteration counts; the
    /// fusion only amortizes traversal, it never adds work. Compaction is
    /// bitwise-invisible because every lane's arithmetic is independent of
    /// which other lanes share the buffer.
    fn solve_parallel_batch(
        &self,
        cfg: &SolverConfig,
        teleports: &[TeleportVector],
    ) -> Result<Vec<SweepOutcome>, AlgoError> {
        let n = self.node_count();
        let lanes = teleports.len();
        let alpha = cfg.damping;
        // Same auto-threading cutover as the single-vector solve: the
        // spawn/join cost is per *sweep*, and a batch sweep traverses the
        // same node/edge arrays once — fusing lanes widens each visit but
        // does not change where threading starts to pay.
        let work = n + self.view.edge_count();
        let threads = if cfg.threads == 0 && work < PARALLEL_MIN_WORK {
            1
        } else {
            effective_threads(cfg.threads, n)
        };
        let chunk = n.div_ceil(threads);

        // Node-major interleave of the dense teleport vectors; `active[c]`
        // is the original lane index living in column `c`. All three
        // interleaved buffers come from the solver arena.
        let arena = current_arena();
        let mut active: Vec<usize> = (0..lanes).collect();
        let mut tel = arena.take(n * lanes);
        for (b, t) in teleports.iter().enumerate() {
            t.for_each(|i, v| tel[i * lanes + b] = v);
        }
        let mut x = arena.take(n * lanes);
        x.copy_from_slice(&tel);
        let mut next = arena.take(n * lanes);

        struct Lane {
            iterations: usize,
            residual: f64,
            converged: bool,
            /// Scores frozen at the iteration the lane converged.
            snapshot: Option<Vec<f64>>,
            trace: Option<ConvergenceTrace>,
        }
        let mut lane_state: Vec<Lane> = (0..lanes)
            .map(|_| Lane {
                iterations: 0,
                residual: f64::INFINITY,
                converged: false,
                snapshot: None,
                trace: cfg.record_trace.then(ConvergenceTrace::default),
            })
            .collect();

        let mut sweep = 0;
        let mut bases = vec![0.0f64; lanes];
        let mut residuals = vec![0.0f64; lanes];
        while sweep < cfg.max_iterations && !active.is_empty() {
            sweep += 1;
            let width = active.len();

            // Per-lane dangling mass, accumulated in node-index order so
            // each lane's sum reproduces the single-vector float sequence.
            bases.truncate(width);
            bases.iter_mut().for_each(|b| *b = 0.0);
            for i in 0..n {
                if self.inv_wsum[i] == 0.0 {
                    let row = &x[i * width..i * width + width];
                    for (base, &xv) in bases.iter_mut().zip(row) {
                        *base += xv;
                    }
                }
            }
            for base in bases.iter_mut() {
                *base = 1.0 - alpha + alpha * *base;
            }

            if threads == 1 {
                if width == 1 {
                    // Last live lane: the single-vector chunk pull computes
                    // the identical per-lane expressions without the
                    // interleave bookkeeping.
                    self.pull_chunk(&x, &mut next[..n], 0, alpha, bases[0], &tel, &self.inv_wsum);
                } else {
                    self.pull_chunk_batch(
                        &x,
                        &mut next[..n * width],
                        0,
                        alpha,
                        &bases,
                        &tel,
                        width,
                    );
                }
            } else {
                let (x_ref, tel_ref): (&[f64], &[f64]) = (&x, &tel);
                let bases_ref = &bases;
                crossbeam::thread::scope(|s| {
                    let mut rest: &mut [f64] = &mut next[..n * width];
                    let mut lo = 0usize;
                    while !rest.is_empty() {
                        let take = (chunk * width).min(rest.len());
                        let (mine, tail) = rest.split_at_mut(take);
                        rest = tail;
                        s.spawn(move |_| {
                            self.pull_chunk_batch(
                                x_ref, mine, lo, alpha, bases_ref, tel_ref, width,
                            );
                        });
                        lo += take / width;
                    }
                })
                .expect("worker thread panicked");
            }

            // Per-lane residuals, each accumulated in node-index order
            // (the same float sequence as the single-vector stopping
            // decision), computed row-wise so the pass streams the
            // interleaved buffers instead of striding per lane.
            residuals.truncate(width);
            residuals.iter_mut().for_each(|r| *r = 0.0);
            for i in 0..n {
                let xr = &x[i * width..i * width + width];
                let nr = &next[i * width..i * width + width];
                for ((r, &a), &b) in residuals.iter_mut().zip(xr).zip(nr) {
                    *r += (a - b).abs();
                }
            }
            for (c, &b) in active.iter().enumerate() {
                let lane = &mut lane_state[b];
                lane.residual = residuals[c];
                lane.iterations = sweep;
                if let Some(t) = lane.trace.as_mut() {
                    t.residuals.push(residuals[c]);
                }
            }
            std::mem::swap(&mut x, &mut next);

            // Snapshot lanes that just converged, then compact them out of
            // the interleave so later sweeps only touch live lanes.
            let mut keep = Vec::with_capacity(width);
            for (c, &b) in active.iter().enumerate() {
                if lane_state[b].residual < cfg.tolerance {
                    lane_state[b].converged = true;
                    lane_state[b].snapshot = Some((0..n).map(|i| x[i * width + c]).collect());
                } else {
                    keep.push(c);
                }
            }
            if keep.len() < width {
                let new_width = keep.len();
                for i in 0..n {
                    for (new_c, &c) in keep.iter().enumerate() {
                        x[i * new_width + new_c] = x[i * width + c];
                        tel[i * new_width + new_c] = tel[i * width + c];
                    }
                }
                active = keep.iter().map(|&c| active[c]).collect();
                x.truncate(n * new_width);
                tel.truncate(n * new_width);
                next.truncate(n * new_width);
            }
        }

        let width = active.len();
        for (c, &b) in active.iter().enumerate() {
            // Lanes that hit the iteration cap: scores as of the last swap.
            lane_state[b].snapshot = Some((0..n).map(|i| x[i * width + c]).collect());
        }

        Ok(lane_state
            .into_iter()
            .map(|lane| SweepOutcome {
                scores: ScoreVector::new(lane.snapshot.expect("every lane snapshotted")),
                convergence: Convergence {
                    iterations: lane.iterations,
                    residual: lane.residual,
                    converged: lane.converged,
                },
                trace: lane.trace,
            })
            .collect())
    }

    /// Pulls new scores for all lanes of the node chunk `out`, which covers
    /// nodes `lo..lo + out.len() / lanes` in node-major interleaved layout.
    /// Per-lane expressions mirror [`SweepKernel::pull`] /
    /// [`SweepKernel::pull_chunk`] exactly (same association, same
    /// accumulation order) so the results are bitwise identical to the
    /// single-vector path.
    #[allow(clippy::too_many_arguments)]
    fn pull_chunk_batch(
        &self,
        x: &[f64],
        out: &mut [f64],
        lo: usize,
        alpha: f64,
        bases: &[f64],
        tel: &[f64],
        lanes: usize,
    ) {
        for (off, slots) in out.chunks_exact_mut(lanes).enumerate() {
            let i = lo + off;
            let v = NodeId::from_usize(i);
            // Accumulate the damped in-neighbor sums directly in the
            // output row, then fold in teleport and dangling mass in
            // place — per-lane expression shape and accumulation order
            // match the single-vector `pull`/`pull_chunk` exactly.
            slots.iter_mut().for_each(|s| *s = 0.0);
            match self.view.in_arrays(v) {
                Some((nbrs, Some(ws))) => {
                    for (j, &u) in nbrs.iter().enumerate() {
                        let (wj, inv) = (ws[j], self.inv_wsum[u.index()]);
                        let row = &x[u.index() * lanes..u.index() * lanes + lanes];
                        for (s, &xv) in slots.iter_mut().zip(row) {
                            *s += xv * wj * inv;
                        }
                    }
                }
                Some((nbrs, None)) => {
                    for &u in nbrs {
                        let inv = self.inv_wsum[u.index()];
                        let row = &x[u.index() * lanes..u.index() * lanes + lanes];
                        for (s, &xv) in slots.iter_mut().zip(row) {
                            *s += xv * inv;
                        }
                    }
                }
                // Compact tier: decode the stream once per node row; the
                // unweighted decode yields w = 1.0, and `xv * 1.0 * inv`
                // is bitwise `xv * inv`.
                None => {
                    for (u, w) in self.view.in_edges(v) {
                        let inv = self.inv_wsum[u.index()];
                        let row = &x[u.index() * lanes..u.index() * lanes + lanes];
                        for (s, &xv) in slots.iter_mut().zip(row) {
                            *s += xv * w * inv;
                        }
                    }
                }
            }
            let tel_row = &tel[i * lanes..i * lanes + lanes];
            for ((slot, &base), &t) in slots.iter_mut().zip(bases).zip(tel_row) {
                *slot = alpha * *slot + base * t;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgraph::GraphBuilder;

    fn random_graph(nodes: u32, edges: usize, seed: u64) -> relgraph::DirectedGraph {
        let mut b = GraphBuilder::new();
        b.ensure_node(nodes - 1);
        let mut x = seed | 1;
        for _ in 0..edges {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let u = (x % nodes as u64) as u32;
            let v = ((x >> 20) % nodes as u64) as u32;
            if u != v {
                b.add_edge_indices(u, v);
            }
        }
        b.build()
    }

    fn solve(
        g: &relgraph::DirectedGraph,
        scheme: Scheme,
        threads: usize,
    ) -> (ScoreVector, Convergence) {
        let kernel = SweepKernel::new(g.view()).unwrap();
        let cfg = SolverConfig {
            tolerance: 1e-12,
            max_iterations: 1000,
            scheme,
            threads,
            ..Default::default()
        };
        let teleport = TeleportVector::uniform(g.node_count()).unwrap();
        let out = kernel.solve(&cfg, &teleport).unwrap();
        (out.scores, out.convergence)
    }

    #[test]
    fn schemes_agree_on_random_graph() {
        let g = random_graph(300, 2500, 7);
        let (power, pc) = solve(&g, Scheme::Power, 1);
        for scheme in [Scheme::GaussSeidel, Scheme::Parallel] {
            let (s, c) = solve(&g, scheme, 3);
            assert!(pc.converged && c.converged, "{scheme}");
            for u in g.nodes() {
                assert!(
                    (power.get(u) - s.get(u)).abs() < 1e-9,
                    "{scheme} node {u:?}: {} vs {}",
                    power.get(u),
                    s.get(u)
                );
            }
        }
    }

    #[test]
    fn schemes_agree_with_dangling_and_weights() {
        let mut b = GraphBuilder::new();
        b.add_weighted_edge(relgraph::NodeId::new(0), relgraph::NodeId::new(1), 3.0);
        b.add_weighted_edge(relgraph::NodeId::new(1), relgraph::NodeId::new(0), 1.0);
        b.add_weighted_edge(relgraph::NodeId::new(1), relgraph::NodeId::new(2), 2.0);
        b.add_weighted_edge(relgraph::NodeId::new(0), relgraph::NodeId::new(3), 0.5);
        let g = b.build(); // nodes 2, 3 dangle
        let (power, _) = solve(&g, Scheme::Power, 1);
        assert!((power.sum() - 1.0).abs() < 1e-9);
        for scheme in [Scheme::GaussSeidel, Scheme::Parallel] {
            let (s, _) = solve(&g, scheme, 2);
            assert!((s.sum() - 1.0).abs() < 1e-9, "{scheme}");
            for u in g.nodes() {
                assert!((power.get(u) - s.get(u)).abs() < 1e-9, "{scheme} node {u:?}");
            }
        }
    }

    #[test]
    fn parallel_deterministic_across_thread_counts() {
        let g = random_graph(200, 1500, 5);
        let kernel = SweepKernel::new(g.view()).unwrap();
        let teleport = TeleportVector::uniform(g.node_count()).unwrap();
        let base =
            kernel.solve(&SolverConfig::default().with_threads(1), &teleport).unwrap().scores;
        for threads in [2, 3, 4, 7] {
            let s = kernel
                .solve(&SolverConfig::default().with_threads(threads), &teleport)
                .unwrap()
                .scores;
            assert_eq!(base.as_slice(), s.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn chunked_pull_matches_single_chunk_bitwise() {
        // The determinism-across-thread-counts guarantee reduces to:
        // pulling a node range in several (uneven) chunks produces exactly
        // the values of one full-range pull. Exercised directly so it
        // holds on CI runners with any core count — effective_threads
        // would otherwise clamp high thread requests down and this path
        // would go untested on small machines.
        let g = random_graph(101, 800, 11); // odd n => uneven final chunk
        let kernel = SweepKernel::new(g.view()).unwrap();
        let n = g.node_count();
        let teleport = TeleportVector::uniform(n).unwrap().dense();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0) / (n * n) as f64).collect();
        let (alpha, base) = (0.85, 0.15);

        let mut whole = vec![0.0f64; n];
        kernel.pull_chunk(&x, &mut whole, 0, alpha, base, &teleport, &kernel.inv_wsum);

        for chunks in [2usize, 3, 4, 7] {
            let chunk = n.div_ceil(chunks);
            let mut parts = vec![0.0f64; n];
            let mut rest: &mut [f64] = &mut parts;
            let mut lo = 0;
            while !rest.is_empty() {
                let take = chunk.min(rest.len());
                let (mine, tail) = rest.split_at_mut(take);
                kernel.pull_chunk(&x, mine, lo, alpha, base, &teleport, &kernel.inv_wsum);
                lo += take;
                rest = tail;
            }
            assert_eq!(parts, whole, "{chunks} chunks diverge from one");
        }
    }

    #[test]
    fn batch_solve_bitwise_matches_sequential() {
        // Weighted + dangling graph, several seeds (with a duplicate and a
        // uniform lane mixed in): every lane of the fused sweep must equal
        // its independent solve bit for bit, including diagnostics.
        let mut b = GraphBuilder::new();
        b.add_weighted_edge(relgraph::NodeId::new(0), relgraph::NodeId::new(1), 3.0);
        b.add_weighted_edge(relgraph::NodeId::new(1), relgraph::NodeId::new(0), 1.0);
        b.add_weighted_edge(relgraph::NodeId::new(1), relgraph::NodeId::new(2), 2.0);
        b.add_weighted_edge(relgraph::NodeId::new(2), relgraph::NodeId::new(3), 0.5);
        b.add_weighted_edge(relgraph::NodeId::new(4), relgraph::NodeId::new(0), 1.5);
        let g = b.build(); // node 3 dangles
        let kernel = SweepKernel::new(g.view()).unwrap();
        let n = g.node_count();
        let teleports: Vec<TeleportVector> = [0u32, 2, 0, 4]
            .iter()
            .map(|&s| TeleportVector::single(n, relgraph::NodeId::new(s)).unwrap())
            .chain([TeleportVector::uniform(n).unwrap()])
            .collect();
        for threads in [1usize, 3] {
            let cfg = SolverConfig::default().with_threads(threads).with_trace();
            let batch = kernel.solve_batch(&cfg, &teleports).unwrap();
            assert_eq!(batch.len(), teleports.len());
            for (t, out) in teleports.iter().zip(&batch) {
                let single = kernel.solve(&cfg, t).unwrap();
                assert_eq!(single.scores.as_slice(), out.scores.as_slice());
                assert_eq!(single.convergence, out.convergence);
                assert_eq!(single.trace, out.trace);
            }
        }
    }

    #[test]
    fn batch_solve_heterogeneous_convergence() {
        // Seeds that converge at different iteration counts: frozen lanes
        // must keep their snapshot while slower lanes keep sweeping.
        let g = random_graph(120, 900, 99);
        let kernel = SweepKernel::new(g.view()).unwrap();
        let n = g.node_count();
        let teleports: Vec<TeleportVector> =
            (0..6).map(|s| TeleportVector::single(n, relgraph::NodeId::new(s)).unwrap()).collect();
        let cfg = SolverConfig { tolerance: 1e-12, max_iterations: 2000, ..Default::default() };
        let batch = kernel.solve_batch(&cfg, &teleports).unwrap();
        let iteration_counts: Vec<usize> = batch.iter().map(|o| o.convergence.iterations).collect();
        for (t, out) in teleports.iter().zip(&batch) {
            let single = kernel.solve(&cfg, t).unwrap();
            assert_eq!(single.scores.as_slice(), out.scores.as_slice());
            assert_eq!(single.convergence.iterations, out.convergence.iterations);
            assert!(out.convergence.converged);
        }
        // The point of the fixture: not all lanes stop on the same sweep.
        assert!(
            iteration_counts.iter().any(|&i| i != iteration_counts[0]),
            "want heterogeneous convergence, got {iteration_counts:?}"
        );
    }

    #[test]
    fn batch_wider_than_fused_group_matches_sequential() {
        // More teleports than MAX_FUSED_LANES: the group split is
        // invisible in the results.
        let g = random_graph(50, 260, 17);
        let kernel = SweepKernel::new(g.view()).unwrap();
        let n = g.node_count();
        let teleports: Vec<TeleportVector> = (0..MAX_FUSED_LANES as u32 + 7)
            .map(|s| TeleportVector::single(n, relgraph::NodeId::new(s % 50)).unwrap())
            .collect();
        let cfg = SolverConfig::default();
        let batch = kernel.solve_batch(&cfg, &teleports).unwrap();
        assert_eq!(batch.len(), teleports.len());
        for (t, out) in teleports.iter().zip(&batch) {
            let single = kernel.solve(&cfg, t).unwrap();
            assert_eq!(single.scores.as_slice(), out.scores.as_slice());
        }
    }

    #[test]
    fn batch_solve_fallback_schemes_and_edges() {
        let g = random_graph(60, 300, 21);
        let kernel = SweepKernel::new(g.view()).unwrap();
        let n = g.node_count();
        let t0 = TeleportVector::single(n, relgraph::NodeId::new(0)).unwrap();
        let t1 = TeleportVector::single(n, relgraph::NodeId::new(5)).unwrap();
        // Power / Gauss–Seidel batches run per-seed solves.
        for scheme in [Scheme::Power, Scheme::GaussSeidel] {
            let cfg = SolverConfig::default().with_scheme(scheme);
            let batch = kernel.solve_batch(&cfg, &[t0.clone(), t1.clone()]).unwrap();
            for (t, out) in [&t0, &t1].iter().zip(&batch) {
                let single = kernel.solve(&cfg, t).unwrap();
                assert_eq!(single.scores.as_slice(), out.scores.as_slice(), "{scheme}");
            }
        }
        // Empty batch, singleton batch, dimension mismatch.
        let cfg = SolverConfig::default();
        assert!(kernel.solve_batch(&cfg, &[]).unwrap().is_empty());
        let one = kernel.solve_batch(&cfg, std::slice::from_ref(&t0)).unwrap();
        assert_eq!(one[0].scores.as_slice(), kernel.solve(&cfg, &t0).unwrap().scores.as_slice());
        let wrong = TeleportVector::uniform(n + 3).unwrap();
        assert!(kernel.solve_batch(&cfg, &[wrong]).is_err());
        let bad = SolverConfig::with_damping(1.5);
        assert!(kernel.solve_batch(&bad, std::slice::from_ref(&t0)).is_err());
    }

    #[test]
    fn transposed_view_solves_cheirank() {
        // In 0 -> 1, the forward solve favors 1; the transposed favors 0.
        let g = GraphBuilder::from_edge_indices([(0, 1)]);
        let teleport = TeleportVector::uniform(2).unwrap();
        let cfg = SolverConfig::default();
        let fwd = SweepKernel::new(g.view()).unwrap().solve(&cfg, &teleport).unwrap().scores;
        let rev = SweepKernel::new(g.transposed()).unwrap().solve(&cfg, &teleport).unwrap().scores;
        assert!(fwd.get(relgraph::NodeId::new(1)) > fwd.get(relgraph::NodeId::new(0)));
        assert!(rev.get(relgraph::NodeId::new(0)) > rev.get(relgraph::NodeId::new(1)));
    }

    #[test]
    fn personalized_teleport_localizes() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 0), (1, 2), (2, 1), (3, 2)]);
        let teleport = TeleportVector::single(4, relgraph::NodeId::new(0)).unwrap();
        for scheme in Scheme::ALL {
            let out = SweepKernel::new(g.view())
                .unwrap()
                .solve(&SolverConfig::default().with_scheme(scheme), &teleport)
                .unwrap();
            // Node 3 is unreachable from the seed.
            assert!(out.scores.get(relgraph::NodeId::new(3)) < 1e-12, "{scheme}");
            assert!(out.scores.get(relgraph::NodeId::new(0)) > 0.0, "{scheme}");
        }
    }

    #[test]
    fn trace_records_every_sweep_and_decays() {
        let g = random_graph(100, 700, 3);
        let kernel = SweepKernel::new(g.view()).unwrap();
        let teleport = TeleportVector::uniform(g.node_count()).unwrap();
        for scheme in Scheme::ALL {
            let cfg = SolverConfig::default().with_scheme(scheme).with_trace();
            let out = kernel.solve(&cfg, &teleport).unwrap();
            let trace = out.trace.expect("trace requested");
            assert_eq!(trace.len(), out.convergence.iterations, "{scheme}");
            assert_eq!(trace.last(), Some(out.convergence.residual), "{scheme}");
            // Residuals decay geometrically: the empirical rate is < 1.
            let rate = trace.rate().expect("multiple sweeps");
            assert!(rate < 1.0, "{scheme}: rate {rate}");
            // Without the flag, no trace is allocated.
            let out =
                kernel.solve(&SolverConfig::default().with_scheme(scheme), &teleport).unwrap();
            assert!(out.trace.is_none(), "{scheme}");
        }
    }

    #[test]
    fn effective_threads_clamps() {
        let available = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        // 0 = auto: all available cores, capped at the unit count.
        assert_eq!(effective_threads(0, usize::MAX), available);
        assert_eq!(effective_threads(0, 2), 2.min(available));
        // Explicit requests cap at available parallelism, not just units.
        assert_eq!(effective_threads(usize::MAX, usize::MAX), available);
        assert_eq!(effective_threads(1, usize::MAX), 1);
        // Never below 1, even for empty unit counts.
        assert_eq!(effective_threads(4, 0), 1);
    }

    #[test]
    fn more_threads_than_nodes() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 0)]);
        let kernel = SweepKernel::new(g.view()).unwrap();
        let teleport = TeleportVector::uniform(2).unwrap();
        let out = kernel.solve(&SolverConfig::default().with_threads(64), &teleport).unwrap();
        assert!((out.scores.sum() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let empty = GraphBuilder::new().build();
        assert!(matches!(SweepKernel::new(empty.view()), Err(AlgoError::EmptyGraph)));

        let g = GraphBuilder::from_edge_indices([(0, 1)]);
        let kernel = SweepKernel::new(g.view()).unwrap();
        let teleport = TeleportVector::uniform(2).unwrap();
        for bad in [0.0, 1.0, -0.5, 1.5] {
            let cfg = SolverConfig::with_damping(bad);
            assert!(matches!(kernel.solve(&cfg, &teleport), Err(AlgoError::InvalidDamping(_))));
        }
        let cfg = SolverConfig { tolerance: 0.0, ..Default::default() };
        assert!(kernel.solve(&cfg, &teleport).is_err());
        let cfg = SolverConfig { max_iterations: 0, ..Default::default() };
        assert!(kernel.solve(&cfg, &teleport).is_err());
        // Mismatched teleport dimension.
        let wrong = TeleportVector::uniform(5).unwrap();
        assert!(kernel.solve(&SolverConfig::default(), &wrong).is_err());
    }

    #[test]
    fn compact_tier_solves_match_csr_bitwise() {
        // Unweighted graphs (and f32-exact weighted ones) decode to the
        // identical neighbor order, weight values, and weight sums, so
        // every scheme's float sequence — and with it scores, iteration
        // counts, and residuals — is reproduced exactly on the compact
        // tier.
        let g = random_graph(200, 1500, 31);
        let c = relgraph::CompactGraph::from_csr(&g);
        let n = g.node_count();
        let teleport = TeleportVector::uniform(n).unwrap();
        for scheme in Scheme::ALL {
            let cfg = SolverConfig::default().with_scheme(scheme).with_trace();
            let a = SweepKernel::new(g.view()).unwrap().solve(&cfg, &teleport).unwrap();
            let b = SweepKernel::new(c.view()).unwrap().solve(&cfg, &teleport).unwrap();
            assert_eq!(a.scores.as_slice(), b.scores.as_slice(), "{scheme}");
            assert_eq!(a.convergence, b.convergence, "{scheme}");
            assert_eq!(a.trace, b.trace, "{scheme}");
        }
        // Transposed orientation and fused batches dispatch identically.
        let teleports: Vec<TeleportVector> =
            (0..5).map(|s| TeleportVector::single(n, NodeId::new(s)).unwrap()).collect();
        let cfg = SolverConfig::default().with_threads(3);
        let ka = SweepKernel::new(g.transposed()).unwrap();
        let kb = SweepKernel::new(c.transposed()).unwrap();
        for (a, b) in ka
            .solve_batch(&cfg, &teleports)
            .unwrap()
            .iter()
            .zip(&kb.solve_batch(&cfg, &teleports).unwrap())
        {
            assert_eq!(a.scores.as_slice(), b.scores.as_slice());
            assert_eq!(a.convergence, b.convergence);
        }
    }

    #[test]
    fn f32_lane_matches_f64_within_tolerance() {
        let g = random_graph(300, 2500, 7);
        let n = g.node_count();
        let kernel = SweepKernel::new(g.view()).unwrap();
        for teleport in [
            TeleportVector::uniform(n).unwrap(),
            TeleportVector::single(n, NodeId::new(3)).unwrap(),
        ] {
            for scheme in Scheme::ALL {
                let full =
                    kernel.solve(&SolverConfig::default().with_scheme(scheme), &teleport).unwrap();
                let narrow = kernel
                    .solve(
                        &SolverConfig::default().with_scheme(scheme).with_precision(Precision::F32),
                        &teleport,
                    )
                    .unwrap();
                assert!(narrow.convergence.converged, "{scheme}: f32 lane must converge");
                assert!((narrow.scores.sum() - 1.0).abs() < 1e-4, "{scheme}");
                for u in g.nodes() {
                    assert!(
                        (full.scores.get(u) - narrow.scores.get(u)).abs() < 1e-5,
                        "{scheme} node {u:?}: f64 {} vs f32 {}",
                        full.scores.get(u),
                        narrow.scores.get(u)
                    );
                }
            }
        }
    }

    #[test]
    fn f32_lane_clamps_tolerance_to_floor() {
        // A tolerance below the f32 noise floor still converges (at the
        // floor) instead of spinning to the iteration cap.
        let g = random_graph(150, 1100, 9);
        let kernel = SweepKernel::new(g.view()).unwrap();
        let teleport = TeleportVector::uniform(g.node_count()).unwrap();
        let cfg = SolverConfig {
            tolerance: 1e-14,
            max_iterations: 2000,
            precision: Precision::F32,
            ..Default::default()
        };
        let out = kernel.solve(&cfg, &teleport).unwrap();
        assert!(out.convergence.converged);
        assert!(out.convergence.residual < F32_TOLERANCE_FLOOR);
        assert!(out.convergence.iterations < 2000);
    }

    #[test]
    fn f32_batch_falls_back_to_sequential_solves() {
        let g = random_graph(80, 500, 3);
        let n = g.node_count();
        let kernel = SweepKernel::new(g.view()).unwrap();
        let teleports: Vec<TeleportVector> =
            (0..4).map(|s| TeleportVector::single(n, NodeId::new(s)).unwrap()).collect();
        let cfg = SolverConfig::default().with_precision(Precision::F32);
        let batch = kernel.solve_batch(&cfg, &teleports).unwrap();
        assert_eq!(batch.len(), teleports.len());
        for (t, out) in teleports.iter().zip(&batch) {
            let single = kernel.solve(&cfg, t).unwrap();
            assert_eq!(single.scores.as_slice(), out.scores.as_slice());
            assert_eq!(single.convergence, out.convergence);
        }
    }

    #[test]
    fn precision_parse_roundtrip() {
        for p in Precision::ALL {
            assert_eq!(p.id().parse::<Precision>().unwrap(), p);
        }
        assert_eq!("single".parse::<Precision>().unwrap(), Precision::F32);
        assert_eq!("double".parse::<Precision>().unwrap(), Precision::F64);
        assert!("f16".parse::<Precision>().is_err());
        assert_eq!(Precision::default(), Precision::F64);
    }

    #[test]
    fn scheme_parse_roundtrip() {
        for scheme in Scheme::ALL {
            assert_eq!(scheme.id().parse::<Scheme>().unwrap(), scheme);
        }
        assert_eq!("gauss-seidel".parse::<Scheme>().unwrap(), Scheme::GaussSeidel);
        assert_eq!("gs".parse::<Scheme>().unwrap(), Scheme::GaussSeidel);
        assert_eq!("par".parse::<Scheme>().unwrap(), Scheme::Parallel);
        assert_eq!("Jacobi".parse::<Scheme>().unwrap(), Scheme::Power);
        assert!("quantum".parse::<Scheme>().is_err());
        assert_eq!(Scheme::default(), Scheme::Parallel);
    }

    #[test]
    fn solve_top_k_matches_full_solve_exactly() {
        let g = random_graph(250, 2000, 13);
        let kernel = SweepKernel::new(g.view()).unwrap();
        let n = g.node_count();
        for teleport in [
            TeleportVector::uniform(n).unwrap(),
            TeleportVector::single(n, NodeId::new(3)).unwrap(),
        ] {
            for scheme in Scheme::ALL {
                let cfg = SolverConfig::default().with_scheme(scheme).with_trace();
                let full = kernel.solve(&cfg, &teleport).unwrap();
                let topk = kernel.solve_top_k(&cfg, &teleport, 7).unwrap();
                assert_eq!(topk.top, full.scores.top_k(7), "{scheme}");
                assert_eq!(topk.convergence, full.convergence, "{scheme}");
                assert_eq!(topk.trace, full.trace, "{scheme}");
            }
        }
    }

    #[test]
    fn steady_state_top_k_solves_are_allocation_free() {
        use crate::arena::{with_arena, SolverArena};
        use std::sync::Arc;
        let g = random_graph(300, 2500, 9);
        let kernel = SweepKernel::new(g.view()).unwrap();
        let teleport = TeleportVector::single(g.node_count(), NodeId::new(5)).unwrap();
        let arena = Arc::new(SolverArena::new());
        for scheme in Scheme::ALL {
            let cfg = SolverConfig::default().with_scheme(scheme);
            with_arena(&arena, || {
                kernel.solve_top_k(&cfg, &teleport, 10).unwrap(); // warm-up
                let warmed = arena.allocations();
                for _ in 0..5 {
                    kernel.solve_top_k(&cfg, &teleport, 10).unwrap();
                }
                assert_eq!(
                    arena.allocations(),
                    warmed,
                    "{scheme}: steady-state top-k solves must not allocate score buffers"
                );
            });
        }
    }

    #[test]
    fn full_solve_detaches_exactly_one_buffer_per_call() {
        use crate::arena::{with_arena, SolverArena};
        use std::sync::Arc;
        let g = random_graph(200, 1500, 3);
        let kernel = SweepKernel::new(g.view()).unwrap();
        let teleport = TeleportVector::uniform(g.node_count()).unwrap();
        let arena = Arc::new(SolverArena::new());
        let cfg = SolverConfig::default();
        with_arena(&arena, || {
            kernel.solve(&cfg, &teleport).unwrap(); // warm-up
            let warmed = arena.allocations();
            for i in 1..=4u64 {
                kernel.solve(&cfg, &teleport).unwrap();
                // The escaping score vector is the only fresh buffer.
                assert_eq!(arena.allocations(), warmed + i);
            }
        });
    }

    #[test]
    fn warm_start_from_dense_teleport_is_bitwise_cold() {
        // Seeding the warm path with the dense teleport vector is the
        // exact cold iteration: identical scores, iteration counts, and
        // residual traces for every scheme.
        let g = random_graph(150, 1100, 23);
        let kernel = SweepKernel::new(g.view()).unwrap();
        let n = g.node_count();
        for teleport in [
            TeleportVector::uniform(n).unwrap(),
            TeleportVector::single(n, NodeId::new(7)).unwrap(),
        ] {
            let dense = teleport.dense();
            for scheme in Scheme::ALL {
                let cfg = SolverConfig::default().with_scheme(scheme).with_trace();
                let cold = kernel.solve(&cfg, &teleport).unwrap();
                let warm = kernel.solve_warm(&cfg, &teleport, &dense).unwrap();
                assert_eq!(cold.scores.as_slice(), warm.scores.as_slice(), "{scheme}");
                assert_eq!(cold.convergence, warm.convergence, "{scheme}");
                assert_eq!(cold.trace, warm.trace, "{scheme}");
            }
        }
    }

    #[test]
    fn warm_start_from_fixed_point_converges_in_fewer_sweeps() {
        let g = random_graph(200, 1500, 41);
        let kernel = SweepKernel::new(g.view()).unwrap();
        let teleport = TeleportVector::single(g.node_count(), NodeId::new(3)).unwrap();
        for scheme in Scheme::ALL {
            let cfg = SolverConfig::default().with_scheme(scheme);
            let cold = kernel.solve(&cfg, &teleport).unwrap();
            let warm = kernel.solve_warm(&cfg, &teleport, cold.scores.as_slice()).unwrap();
            assert!(warm.convergence.converged, "{scheme}");
            // The cold start is ‖t − x*‖ from the fixed point, the warm
            // start ~tolerance from it: the sweep count collapses.
            assert!(
                warm.convergence.iterations * 3 <= cold.convergence.iterations,
                "{scheme}: warm {} sweeps vs cold {}",
                warm.convergence.iterations,
                cold.convergence.iterations
            );
            for u in g.nodes() {
                assert!(
                    (warm.scores.get(u) - cold.scores.get(u)).abs() < 10.0 * cfg.tolerance,
                    "{scheme} node {u:?}"
                );
            }
        }
    }

    #[test]
    fn warm_top_k_matches_warm_full_solve() {
        let g = random_graph(120, 900, 77);
        let kernel = SweepKernel::new(g.view()).unwrap();
        let teleport = TeleportVector::single(g.node_count(), NodeId::new(5)).unwrap();
        let cfg = SolverConfig::default();
        let prev = kernel.solve(&cfg, &teleport).unwrap().scores;
        let full = kernel.solve_warm(&cfg, &teleport, prev.as_slice()).unwrap();
        let topk = kernel.solve_top_k_warm(&cfg, &teleport, prev.as_slice(), 6).unwrap();
        assert_eq!(topk.top, full.scores.top_k(6));
        assert_eq!(topk.convergence, full.convergence);
    }

    #[test]
    fn warm_start_dimension_mismatch_rejected() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 0)]);
        let kernel = SweepKernel::new(g.view()).unwrap();
        let teleport = TeleportVector::uniform(2).unwrap();
        let bad = vec![0.5; 5];
        assert!(kernel.solve_warm(&SolverConfig::default(), &teleport, &bad).is_err());
    }

    #[test]
    fn gauss_seidel_converges_in_comparable_sweeps() {
        let g = random_graph(500, 4000, 0x2545F4914F6CDD1D);
        let (_, p) = solve(&g, Scheme::Power, 1);
        let (_, gs) = solve(&g, Scheme::GaussSeidel, 1);
        assert!(p.converged && gs.converged);
        assert!(
            gs.iterations <= p.iterations * 4,
            "gs {} vs power {}",
            gs.iterations,
            p.iterations
        );
    }
}
