//! Legacy uniform dispatch layer (deprecated) and the shared parameter /
//! output types.
//!
//! The platform's invocation API now lives in three sibling modules:
//! [`crate::algorithm`] (the open `RelevanceAlgorithm` trait),
//! [`crate::registry`] (the id → implementation table), and
//! [`crate::query`] (the fluent `Query` front door). This module keeps the
//! serializable types the task JSON carries — [`Algorithm`], [`Solver`],
//! [`AlgorithmParams`], [`RelevanceOutput`] — plus [`run`], a deprecated
//! shim that delegates to the registry so pre-redesign callers keep
//! compiling.

use crate::cyclerank::CycleRankConfig;
use crate::error::AlgoError;
use crate::pagerank::{Convergence, PageRankConfig};
use crate::result::{RankedList, ScoreVector};
use crate::scoring::ScoringFunction;
use crate::solver::{ConvergenceTrace, Precision, Scheme, SolverConfig};
use relgraph::{DirectedGraph, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The seven algorithms showcased by the demo platform.
///
/// This enum remains the *serialization* tag used in task JSON
/// (`{"algorithm": "cycle_rank", ...}`) and a convenient way to iterate
/// the paper's set ([`Algorithm::ALL`]). Dispatch goes through the
/// [`crate::registry::AlgorithmRegistry`], which also accepts algorithms
/// outside this enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Algorithm {
    /// Global PageRank.
    PageRank,
    /// Personalized PageRank (requires a reference node).
    PersonalizedPageRank,
    /// CheiRank: PageRank on the transposed graph.
    CheiRank,
    /// Personalized CheiRank (requires a reference node).
    PersonalizedCheiRank,
    /// 2DRank: combined PageRank × CheiRank ranking.
    TwoDRank,
    /// Personalized 2DRank (requires a reference node).
    PersonalizedTwoDRank,
    /// CycleRank (requires a reference node).
    CycleRank,
}

impl Algorithm {
    /// All algorithms, in the order the paper lists them.
    pub const ALL: [Algorithm; 7] = [
        Algorithm::PageRank,
        Algorithm::PersonalizedPageRank,
        Algorithm::CheiRank,
        Algorithm::PersonalizedCheiRank,
        Algorithm::TwoDRank,
        Algorithm::PersonalizedTwoDRank,
        Algorithm::CycleRank,
    ];

    /// True if the algorithm needs a reference node.
    pub fn is_personalized(self) -> bool {
        matches!(
            self,
            Algorithm::PersonalizedPageRank
                | Algorithm::PersonalizedCheiRank
                | Algorithm::PersonalizedTwoDRank
                | Algorithm::CycleRank
        )
    }

    /// True if the algorithm produces per-node scores (2DRank variants
    /// produce only a ranking, as the paper notes).
    pub fn produces_scores(self) -> bool {
        !matches!(self, Algorithm::TwoDRank | Algorithm::PersonalizedTwoDRank)
    }

    /// True if the algorithm is a pure parameterization of the sweep
    /// kernel — one [`relgraph::GraphView`] orientation plus a teleport
    /// vector — and can therefore run on **any** graph representation
    /// through [`crate::execute_kernel_family`] (the engine's compact-tier
    /// serving path). The 2DRank variants combine two solves with
    /// CSR-resident rank bookkeeping and CycleRank is a cycle enumeration;
    /// those stay on the standard CSR.
    pub fn is_kernel_family(self) -> bool {
        matches!(
            self,
            Algorithm::PageRank
                | Algorithm::PersonalizedPageRank
                | Algorithm::CheiRank
                | Algorithm::PersonalizedCheiRank
        )
    }

    /// Display name matching the paper's tables.
    pub fn display_name(self) -> &'static str {
        match self {
            Algorithm::PageRank => "PageRank",
            Algorithm::PersonalizedPageRank => "Pers. PageRank",
            Algorithm::CheiRank => "CheiRank",
            Algorithm::PersonalizedCheiRank => "Pers. CheiRank",
            Algorithm::TwoDRank => "2DRank",
            Algorithm::PersonalizedTwoDRank => "Pers. 2DRank",
            Algorithm::CycleRank => "Cyclerank",
        }
    }

    /// Stable machine identifier (used in task JSON, the CLI, and the
    /// registry).
    pub fn id(self) -> &'static str {
        match self {
            Algorithm::PageRank => "pagerank",
            Algorithm::PersonalizedPageRank => "ppr",
            Algorithm::CheiRank => "cheirank",
            Algorithm::PersonalizedCheiRank => "pcheirank",
            Algorithm::TwoDRank => "2drank",
            Algorithm::PersonalizedTwoDRank => "p2drank",
            Algorithm::CycleRank => "cyclerank",
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.display_name())
    }
}

impl FromStr for Algorithm {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().replace(['-', '_', ' '], "").as_str() {
            "pagerank" | "pr" => Ok(Algorithm::PageRank),
            "ppr" | "personalizedpagerank" | "pers.pagerank" => Ok(Algorithm::PersonalizedPageRank),
            "cheirank" => Ok(Algorithm::CheiRank),
            "pcheirank" | "personalizedcheirank" => Ok(Algorithm::PersonalizedCheiRank),
            "2drank" | "twodrank" => Ok(Algorithm::TwoDRank),
            "p2drank" | "personalized2drank" | "personalizedtwodrank" => {
                Ok(Algorithm::PersonalizedTwoDRank)
            }
            "cyclerank" | "cr" => Ok(Algorithm::CycleRank),
            other => Err(format!("unknown algorithm {other:?}")),
        }
    }
}

/// Which numerical solver computes a PageRank-family score vector.
///
/// The demo's §II notes that "more efficient algorithms are available"
/// than plain power iteration; the platform exposes the choice as a task
/// parameter so the ablation benches can run through the same engine. The
/// three exact variants map onto the shared kernel's update schemes
/// ([`crate::solver::Scheme`]); the approximate local solvers keep their
/// own implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Solver {
    /// Exact sequential power iteration.
    Power,
    /// Exact Gauss–Seidel sweeps (in-place updates).
    GaussSeidel,
    /// Exact chunked multi-threaded pull iteration (the default:
    /// stationary distributions are parallel by default).
    #[default]
    Parallel,
    /// Andersen–Chung–Lang forward push (approximate, local; personalized
    /// algorithms only — global PageRank falls back to the exact kernel).
    Push,
    /// Terminated random walks (approximate; personalized only, global
    /// falls back to the exact kernel).
    MonteCarlo,
}

impl Solver {
    /// Stable machine identifier.
    pub fn id(self) -> &'static str {
        match self {
            Solver::Power => "power",
            Solver::GaussSeidel => "gauss_seidel",
            Solver::Parallel => "parallel",
            Solver::Push => "push",
            Solver::MonteCarlo => "monte_carlo",
        }
    }

    /// The kernel update scheme this solver maps onto; `None` for the
    /// approximate local solvers.
    pub fn scheme(self) -> Option<Scheme> {
        match self {
            Solver::Power => Some(Scheme::Power),
            Solver::GaussSeidel => Some(Scheme::GaussSeidel),
            Solver::Parallel => Some(Scheme::Parallel),
            Solver::Push | Solver::MonteCarlo => None,
        }
    }
}

impl From<Scheme> for Solver {
    fn from(scheme: Scheme) -> Self {
        match scheme {
            Scheme::Power => Solver::Power,
            Scheme::GaussSeidel => Solver::GaussSeidel,
            Scheme::Parallel => Solver::Parallel,
        }
    }
}

impl FromStr for Solver {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        // Exact-scheme spellings are owned by Scheme::from_str; only the
        // approximate local solvers are parsed here.
        if let Ok(scheme) = s.parse::<Scheme>() {
            return Ok(scheme.into());
        }
        match s.to_ascii_lowercase().replace(['-', '_'], "").as_str() {
            "push" | "acl" | "forwardpush" => Ok(Solver::Push),
            "montecarlo" | "mc" => Ok(Solver::MonteCarlo),
            other => Err(format!(
                "unknown solver {other:?} (expected power|gauss-seidel|parallel|push|monte-carlo)"
            )),
        }
    }
}

/// Serializable parameter payload for a task: which algorithm, with which
/// knobs. Mirrors the parameter fields of the demo's task-builder UI
/// (Fig. 2: α for the PageRank family, K and σ for CycleRank).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlgorithmParams {
    /// The algorithm to run.
    pub algorithm: Algorithm,
    /// Damping factor α for the PageRank family (ignored by CycleRank).
    #[serde(default = "default_damping")]
    pub damping: f64,
    /// Maximum cycle length K for CycleRank (ignored by others).
    #[serde(default = "default_k")]
    pub max_cycle_len: u32,
    /// Scoring function σ for CycleRank (ignored by others).
    #[serde(default)]
    pub scoring: ScoringFunction,
    /// Power-iteration tolerance for the PageRank family.
    #[serde(default = "default_tolerance")]
    pub tolerance: f64,
    /// Power-iteration cap for the PageRank family.
    #[serde(default = "default_max_iterations")]
    pub max_iterations: usize,
    /// Numerical solver for the PageRank family (CycleRank ignores it;
    /// 2DRank honors the exact kernel schemes and falls back to the
    /// default scheme for approximate solvers).
    #[serde(default)]
    pub solver: Solver,
    /// Worker threads for the parallel kernel scheme; 0 = all available
    /// cores (clamped to available parallelism and node count).
    #[serde(default)]
    // rellint: allow(cache-key) -- thread count changes wall time, never the result
    pub threads: usize,
    /// Record per-iteration residuals ([`ConvergenceTrace`]) in the
    /// output.
    #[serde(default)]
    pub record_trace: bool,
    /// Score-lane precision for the exact kernel schemes: `f64` (the
    /// default, bitwise-reproducible) or `f32` (half the solver memory
    /// traffic; results agree with f64 within the documented tolerance,
    /// and the effective convergence tolerance is clamped to
    /// [`crate::solver::F32_TOLERANCE_FLOOR`]). Approximate solvers and
    /// CycleRank ignore it.
    #[serde(default)]
    pub precision: Precision,
    /// Top-k-only serving mode for the stationary-distribution family:
    /// `Some(k)` makes the run produce only the `k` best `(node, score)`
    /// pairs ([`RelevanceOutput::top`]) instead of a full score vector —
    /// exact sweeps rank through a pruned heap-select straight out of the
    /// solver arena, and personalized runs first try the certified
    /// adaptive-push path ([`crate::topk`]). `None` (the default) keeps
    /// the classic full-rank output. CycleRank and 2DRank ignore it.
    #[serde(default)]
    pub top_k: Option<usize>,
}

fn default_damping() -> f64 {
    0.85
}
fn default_k() -> u32 {
    3
}
fn default_tolerance() -> f64 {
    1e-10
}
fn default_max_iterations() -> usize {
    200
}

impl AlgorithmParams {
    /// Defaults for `algorithm` (α = 0.85, K = 3, σ = exp).
    pub fn new(algorithm: Algorithm) -> Self {
        AlgorithmParams {
            algorithm,
            damping: default_damping(),
            max_cycle_len: default_k(),
            scoring: ScoringFunction::default(),
            tolerance: default_tolerance(),
            max_iterations: default_max_iterations(),
            solver: Solver::default(),
            threads: 0,
            record_trace: false,
            precision: Precision::default(),
            top_k: None,
        }
    }

    /// Sets the damping factor α.
    pub fn with_damping(mut self, damping: f64) -> Self {
        self.damping = damping;
        self
    }

    /// Sets CycleRank's maximum cycle length K.
    pub fn with_k(mut self, k: u32) -> Self {
        self.max_cycle_len = k;
        self
    }

    /// Sets CycleRank's scoring function σ.
    pub fn with_scoring(mut self, scoring: ScoringFunction) -> Self {
        self.scoring = scoring;
        self
    }

    /// Sets the PageRank-family solver.
    pub fn with_solver(mut self, solver: Solver) -> Self {
        self.solver = solver;
        self
    }

    /// Sets the kernel update scheme (a [`Scheme`] is the exact subset of
    /// [`Solver`]).
    pub fn with_scheme(mut self, scheme: Scheme) -> Self {
        self.solver = scheme.into();
        self
    }

    /// Sets the worker-thread count for the parallel scheme (0 = auto).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Requests a per-iteration residual trace in the output.
    pub fn with_trace(mut self, yes: bool) -> Self {
        self.record_trace = yes;
        self
    }

    /// Sets the score-lane precision for the exact kernel schemes
    /// (f64 default; f32 halves the vector footprint).
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Requests top-k-only serving mode (see [`AlgorithmParams::top_k`]).
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.top_k = Some(k);
        self
    }

    /// Human-readable parameter summary, as shown in the task builder
    /// (e.g. `k = 3, σ = exp` or `α = 0.3`). Delegates to the algorithm's
    /// registry entry so there is a single rendering to maintain.
    pub fn summary(&self) -> String {
        crate::registry::AlgorithmRegistry::global()
            .get(self.algorithm.id())
            .expect("built-in algorithms are always registered")
            .summarize(self)
    }

    /// The PageRank-family solver configuration these parameters describe.
    pub fn pagerank_config(&self) -> PageRankConfig {
        PageRankConfig {
            damping: self.damping,
            tolerance: self.tolerance,
            max_iterations: self.max_iterations,
        }
    }

    /// The shared-kernel configuration these parameters describe.
    /// Approximate solvers (push, Monte Carlo) have no kernel scheme and
    /// map to the default scheme — used when a global run falls back to
    /// the exact kernel.
    pub fn solver_config(&self) -> SolverConfig {
        SolverConfig {
            damping: self.damping,
            tolerance: self.tolerance,
            max_iterations: self.max_iterations,
            scheme: self.solver.scheme().unwrap_or_default(),
            threads: self.threads,
            record_trace: self.record_trace,
            precision: self.precision,
        }
    }

    /// The CycleRank configuration these parameters describe.
    pub fn cyclerank_config(&self) -> CycleRankConfig {
        CycleRankConfig {
            max_cycle_len: self.max_cycle_len,
            scoring: self.scoring,
            use_edge_weights: false,
        }
    }
}

/// The uniform output of every [`crate::algorithm::RelevanceAlgorithm`].
#[derive(Debug, Clone)]
pub struct RelevanceOutput {
    /// Id of the algorithm that produced this (e.g. `cyclerank`). A
    /// `String` rather than the closed [`Algorithm`] enum, so registered
    /// third-party algorithms use the same output type.
    pub algorithm: String,
    /// The ranking, most relevant first — all nodes for full-rank runs,
    /// exactly `k` entries in top-k serving mode.
    pub ranking: RankedList,
    /// Raw scores, when the algorithm produces them (not for 2DRank, and
    /// not in top-k serving mode, where the full vector intentionally
    /// never leaves the solver arena — see [`RelevanceOutput::top`]).
    pub scores: Option<ScoreVector>,
    /// Top-k `(node, score)` pairs, present exactly in top-k serving mode
    /// (`AlgorithmParams::top_k`).
    pub top: Option<Vec<(NodeId, f64)>>,
    /// Solver diagnostics (PageRank family only).
    pub convergence: Option<Convergence>,
    /// Per-iteration residuals, when the query requested tracing
    /// (PageRank family only).
    pub trace: Option<ConvergenceTrace>,
    /// Number of cycles found (CycleRank only).
    pub cycles_found: Option<u64>,
}

impl RelevanceOutput {
    /// Top-`k` entries as `(label, score)` pairs; ranking-only algorithms
    /// report `NaN`-free pseudo-scores of 0.
    pub fn top_k_labeled(&self, g: &DirectedGraph, k: usize) -> Vec<(String, f64)> {
        if let Some(top) = &self.top {
            return top.iter().take(k).map(|&(n, s)| (g.display_name(n), s)).collect();
        }
        match &self.scores {
            Some(s) => s.top_k_labeled(g, k),
            None => self.ranking.top_k_labeled(g, k).into_iter().map(|l| (l, 0.0)).collect(),
        }
    }
}

/// Runs `params.algorithm` on `g`, personalized at `reference` when the
/// algorithm requires it.
///
/// Returns [`AlgoError::MissingReference`] if a personalized algorithm is
/// invoked without a reference node; global algorithms ignore `reference`.
#[deprecated(
    since = "0.2.0",
    note = "use relcore::Query (fluent, registry-backed, supports custom algorithms) \
            or AlgorithmRegistry::global().get(id) directly"
)]
pub fn run(
    g: &DirectedGraph,
    params: &AlgorithmParams,
    reference: Option<NodeId>,
) -> Result<RelevanceOutput, AlgoError> {
    let algo = crate::registry::AlgorithmRegistry::global()
        .get(params.algorithm.id())
        .expect("built-in algorithms are always registered");
    let refn = if algo.is_personalized() {
        Some(reference.ok_or(AlgoError::MissingReference)?)
    } else {
        None
    };
    algo.validate(params)?;
    algo.execute(g, params, refn)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use relgraph::GraphBuilder;

    fn sample() -> DirectedGraph {
        GraphBuilder::from_edge_indices([(0, 1), (1, 0), (1, 2), (2, 1), (2, 0), (0, 2), (3, 0)])
    }

    #[test]
    fn run_all_algorithms() {
        let g = sample();
        for algo in Algorithm::ALL {
            let params = AlgorithmParams::new(algo);
            let out = run(&g, &params, Some(NodeId::new(0))).unwrap();
            assert_eq!(out.algorithm, algo.id());
            assert_eq!(out.ranking.len(), g.node_count());
            assert_eq!(out.scores.is_some(), algo.produces_scores());
        }
    }

    #[test]
    fn personalized_without_reference_fails() {
        let g = sample();
        for algo in Algorithm::ALL.into_iter().filter(|a| a.is_personalized()) {
            let params = AlgorithmParams::new(algo);
            assert!(matches!(run(&g, &params, None), Err(AlgoError::MissingReference)), "{algo}");
        }
    }

    #[test]
    fn global_algorithms_ignore_reference() {
        let g = sample();
        let params = AlgorithmParams::new(Algorithm::PageRank);
        let a = run(&g, &params, None).unwrap();
        let b = run(&g, &params, Some(NodeId::new(2))).unwrap();
        assert_eq!(a.ranking, b.ranking);
    }

    #[test]
    fn params_serde_roundtrip() {
        let p = AlgorithmParams::new(Algorithm::CycleRank)
            .with_k(5)
            .with_scoring(ScoringFunction::Inverse);
        let json = serde_json_string(&p);
        assert!(json.contains("cycle"));
        let back: AlgorithmParams = serde_json_parse(&json);
        assert_eq!(back, p);
    }

    // Tiny serde helpers without adding serde_json to this crate:
    // round-trip through the serde data model using serde's own test rig is
    // unavailable, so use a manual JSON writer via format! for the check.
    fn serde_json_string(p: &AlgorithmParams) -> String {
        // AlgorithmParams implements Serialize; emulate JSON through the
        // debug of serde's internal representation is brittle. Simplest:
        // rely on field order. Kept minimal: serialize manually.
        format!(
            "{{\"algorithm\":\"{}\",\"damping\":{},\"max_cycle_len\":{},\"scoring\":\"{}\",\"tolerance\":{},\"max_iterations\":{}}}",
            match p.algorithm {
                Algorithm::PageRank => "page_rank",
                Algorithm::PersonalizedPageRank => "personalized_page_rank",
                Algorithm::CheiRank => "chei_rank",
                Algorithm::PersonalizedCheiRank => "personalized_chei_rank",
                Algorithm::TwoDRank => "two_d_rank",
                Algorithm::PersonalizedTwoDRank => "personalized_two_d_rank",
                Algorithm::CycleRank => "cycle_rank",
            },
            p.damping,
            p.max_cycle_len,
            match p.scoring {
                ScoringFunction::Exponential => "exponential",
                ScoringFunction::Inverse => "inverse",
                ScoringFunction::QuadraticInverse => "quadratic_inverse",
                ScoringFunction::Constant => "constant",
            },
            p.tolerance,
            p.max_iterations
        )
    }

    fn serde_json_parse(s: &str) -> AlgorithmParams {
        // Minimal hand parser for the exact shape produced above.
        let get = |key: &str| -> String {
            let pat = format!("\"{key}\":");
            let start = s.find(&pat).unwrap() + pat.len();
            let rest = &s[start..];
            let end = rest.find([',', '}']).unwrap();
            rest[..end].trim_matches('"').to_string()
        };
        AlgorithmParams {
            algorithm: match get("algorithm").as_str() {
                "page_rank" => Algorithm::PageRank,
                "personalized_page_rank" => Algorithm::PersonalizedPageRank,
                "chei_rank" => Algorithm::CheiRank,
                "personalized_chei_rank" => Algorithm::PersonalizedCheiRank,
                "two_d_rank" => Algorithm::TwoDRank,
                "personalized_two_d_rank" => Algorithm::PersonalizedTwoDRank,
                _ => Algorithm::CycleRank,
            },
            damping: get("damping").parse().unwrap(),
            max_cycle_len: get("max_cycle_len").parse().unwrap(),
            scoring: match get("scoring").as_str() {
                "inverse" => ScoringFunction::Inverse,
                "quadratic_inverse" => ScoringFunction::QuadraticInverse,
                "constant" => ScoringFunction::Constant,
                _ => ScoringFunction::Exponential,
            },
            tolerance: get("tolerance").parse().unwrap(),
            max_iterations: get("max_iterations").parse().unwrap(),
            solver: Solver::default(),
            threads: 0,
            record_trace: false,
            precision: Precision::default(),
            top_k: None,
        }
    }

    #[test]
    fn algorithm_parse_roundtrip() {
        for a in Algorithm::ALL {
            assert_eq!(a.id().parse::<Algorithm>().unwrap(), a);
        }
        assert_eq!("PageRank".parse::<Algorithm>().unwrap(), Algorithm::PageRank);
        assert_eq!("2drank".parse::<Algorithm>().unwrap(), Algorithm::TwoDRank);
        assert!("nope".parse::<Algorithm>().is_err());
    }

    #[test]
    fn params_summary_matches_task_builder() {
        let cr = AlgorithmParams::new(Algorithm::CycleRank);
        assert_eq!(cr.summary(), "k = 3, σ = exp");
        let ppr = AlgorithmParams::new(Algorithm::PersonalizedPageRank).with_damping(0.3);
        assert_eq!(ppr.summary(), "α = 0.3");
    }

    #[test]
    fn cyclerank_output_has_cycle_count() {
        let g = sample();
        let out =
            run(&g, &AlgorithmParams::new(Algorithm::CycleRank), Some(NodeId::new(0))).unwrap();
        assert!(out.cycles_found.unwrap() > 0);
    }

    #[test]
    fn top_k_labeled_for_ranking_only() {
        let mut b = GraphBuilder::new();
        b.add_labeled_edge("A", "B");
        b.add_labeled_edge("B", "A");
        let g = b.build();
        let out = run(&g, &AlgorithmParams::new(Algorithm::TwoDRank), None).unwrap();
        let top = out.top_k_labeled(&g, 2);
        assert_eq!(top.len(), 2);
        assert!(top.iter().all(|(_, s)| *s == 0.0));
    }

    #[test]
    fn solvers_agree_on_exact_and_approximate() {
        let g = sample();
        let r = NodeId::new(0);
        let exact =
            run(&g, &AlgorithmParams::new(Algorithm::PersonalizedPageRank), Some(r)).unwrap();
        let exact_scores = exact.scores.as_ref().unwrap();
        for solver in [Solver::Power, Solver::GaussSeidel, Solver::Push, Solver::MonteCarlo] {
            let params = AlgorithmParams::new(Algorithm::PersonalizedPageRank).with_solver(solver);
            let out = run(&g, &params, Some(r)).unwrap();
            let s = out.scores.as_ref().unwrap();
            // Exact solvers match tightly; approximate ones loosely.
            let tol = match solver {
                Solver::Power | Solver::GaussSeidel => 1e-7,
                _ => 0.02,
            };
            for u in g.nodes() {
                assert!(
                    (s.get(u) - exact_scores.get(u)).abs() < tol,
                    "{solver:?} node {u:?}: {} vs {}",
                    s.get(u),
                    exact_scores.get(u)
                );
            }
        }
    }

    #[test]
    fn approximate_solvers_fall_back_for_global_pagerank() {
        let g = sample();
        for solver in [Solver::Push, Solver::MonteCarlo] {
            let params = AlgorithmParams::new(Algorithm::PageRank).with_solver(solver);
            let out = run(&g, &params, None).unwrap();
            // Fallback to power iteration: convergence info present.
            assert!(out.convergence.is_some(), "{solver:?}");
        }
    }

    #[test]
    fn solver_parse_roundtrip() {
        for solver in
            [Solver::Power, Solver::GaussSeidel, Solver::Parallel, Solver::Push, Solver::MonteCarlo]
        {
            assert_eq!(solver.id().parse::<Solver>().unwrap(), solver);
        }
        assert_eq!("gs".parse::<Solver>().unwrap(), Solver::GaussSeidel);
        assert_eq!("ACL".parse::<Solver>().unwrap(), Solver::Push);
        assert_eq!("par".parse::<Solver>().unwrap(), Solver::Parallel);
        assert!("quantum".parse::<Solver>().is_err());
        // Stationary distributions are parallel by default.
        assert_eq!(Solver::default(), Solver::Parallel);
        // Scheme <-> Solver round trip for the exact subset.
        for scheme in Scheme::ALL {
            assert_eq!(Solver::from(scheme).scheme(), Some(scheme));
        }
        assert_eq!(Solver::Push.scheme(), None);
        assert_eq!(Solver::MonteCarlo.scheme(), None);
    }

    #[test]
    fn invalid_reference_propagates() {
        let g = sample();
        let params = AlgorithmParams::new(Algorithm::CycleRank);
        assert!(matches!(
            run(&g, &params, Some(NodeId::new(99))),
            Err(AlgoError::InvalidReference { .. })
        ));
    }
}
