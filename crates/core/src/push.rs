//! Approximate Personalized PageRank by forward push
//! (Andersen–Chung–Lang, FOCS 2006).
//!
//! The demo paper remarks that for the PageRank family "more efficient
//! algorithms are available" than full power iteration. Forward push is the
//! classic local one: it maintains an *estimate* vector `p` and a *residual*
//! vector `r` with the invariant
//!
//! ```text
//! ppr(s) = p + Σ_u r[u] · ppr(e_u)
//! ```
//!
//! and repeatedly pushes residual mass above a threshold `ε·deg(u)` into the
//! estimate and the neighbors. It touches only the neighbourhood of the
//! seed — sublinear for small ε on big graphs — at the price of
//! approximation: every estimate is within `ε·deg` of the exact score.
//!
//! Originally this module existed for the ablation benchmark
//! (`ppr_methods`); it is now also a first-class serving path — the top-k
//! query layer ([`crate::topk`]) runs push adaptively and certifies its
//! results against the residual mass exposed by [`ppr_push_full`].

use crate::error::AlgoError;
use crate::result::ScoreVector;
use relgraph::{GraphView, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Parameters of the forward-push approximation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PushConfig {
    /// Teleport-continuation probability α, as in PageRank.
    pub damping: f64,
    /// Residual threshold: push while some node has residual > ε·out_deg.
    /// Smaller ε = more accurate and slower.
    pub epsilon: f64,
    /// Safety cap on the number of push operations.
    pub max_pushes: usize,
}

impl Default for PushConfig {
    fn default() -> Self {
        PushConfig { damping: 0.85, epsilon: 1e-7, max_pushes: 50_000_000 }
    }
}

impl PushConfig {
    fn validate(&self) -> Result<(), AlgoError> {
        if !(self.damping > 0.0 && self.damping < 1.0) {
            return Err(AlgoError::InvalidDamping(self.damping));
        }
        if self.epsilon <= 0.0 || self.epsilon.is_nan() {
            return Err(AlgoError::InvalidParameter {
                name: "epsilon",
                message: format!("must be > 0, got {}", self.epsilon),
            });
        }
        Ok(())
    }
}

/// Statistics of a push run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PushStats {
    /// Number of individual push operations performed.
    pub pushes: usize,
    /// Number of distinct nodes that ever held residual mass.
    pub touched: usize,
}

/// Approximate PPR from `seed` by forward push.
///
/// Returns un-normalized estimates `p` with
/// `|p[u] − ppr[u]| ≤ ε·out_degree(u)` for all `u` (dangling nodes treated
/// as pushing their mass back to the seed, matching the exact solver's
/// dangling redistribution).
pub fn ppr_push(
    view: GraphView<'_>,
    cfg: &PushConfig,
    seed: NodeId,
) -> Result<(ScoreVector, PushStats), AlgoError> {
    ppr_push_full(view, cfg, seed).map(|(p, _, stats)| (p, stats))
}

/// Like [`ppr_push`], but additionally returns the **residual mass**
/// `R = Σ_u |r[u]|` left at termination. By the push invariant
/// `ppr = p + Σ_u r[u]·ppr(e_u)` and `ppr_v(u) ∈ [0, 1]`, every exact
/// score lies in `[p[u], p[u] + R]` — the certificate the adaptive top-k
/// path ([`crate::topk`]) separates ranks with.
pub fn ppr_push_full(
    view: GraphView<'_>,
    cfg: &PushConfig,
    seed: NodeId,
) -> Result<(ScoreVector, f64, PushStats), AlgoError> {
    cfg.validate()?;
    let n = view.node_count();
    if n == 0 {
        return Err(AlgoError::EmptyGraph);
    }
    if seed.index() >= n {
        return Err(AlgoError::InvalidReference { node: seed.raw(), node_count: n });
    }
    let mut r = vec![0.0f64; n];
    r[seed.index()] = 1.0;
    Ok(push_core(view, cfg, seed, vec![0.0f64; n], r))
}

/// Forward push seeded from an existing estimate vector and a **signed**
/// sparse residual — the engine of incremental PPR refresh under graph
/// mutation ([`crate::topk::refresh_ppr`]).
///
/// `estimates` is a previous (near-)solution and `residuals` the signed
/// correction `r = (α/(1−α))·(P_new − P_old)·estimates` capturing how the
/// linear system moved under an edge event; the invariant
/// `ppr = p + Σ_u r[u]·ppr(e_u)` holds for signed `r` by linearity, so
/// pushing `|r|` below threshold leaves every estimate within
/// `Σ_u |r[u]|` (L1) of the exact new solution. Entries of `residuals`
/// must be in bounds; duplicates accumulate.
pub fn ppr_push_seeded(
    view: GraphView<'_>,
    cfg: &PushConfig,
    seed: NodeId,
    estimates: Vec<f64>,
    residuals: &[(NodeId, f64)],
) -> Result<(ScoreVector, f64, PushStats), AlgoError> {
    cfg.validate()?;
    let n = view.node_count();
    if n == 0 {
        return Err(AlgoError::EmptyGraph);
    }
    if seed.index() >= n {
        return Err(AlgoError::InvalidReference { node: seed.raw(), node_count: n });
    }
    if estimates.len() != n {
        return Err(AlgoError::InvalidParameter {
            name: "estimates",
            message: format!("estimate vector has {} entries for {n} nodes", estimates.len()),
        });
    }
    let mut r = vec![0.0f64; n];
    for &(u, ru) in residuals {
        if u.index() >= n {
            return Err(AlgoError::InvalidReference { node: u.raw(), node_count: n });
        }
        r[u.index()] += ru;
    }
    Ok(push_core(view, cfg, seed, estimates, r))
}

/// The shared push loop over **signed** residuals: pushes while some node
/// holds `|r[u]| > ε·deg(u)`. For the classic all-positive start
/// ([`ppr_push_full`]) this is exactly Andersen–Chung–Lang forward push;
/// signed residuals (incremental refresh) move estimate mass down as well
/// as up, with the same invariant and the same `Σ|r|` error bound.
fn push_core(
    view: GraphView<'_>,
    cfg: &PushConfig,
    seed: NodeId,
    mut p: Vec<f64>,
    mut r: Vec<f64>,
) -> (ScoreVector, f64, PushStats) {
    let n = view.node_count();
    let alpha = cfg.damping;
    let mut in_queue = vec![false; n];
    let mut touched = vec![false; n];
    let mut queue: VecDeque<NodeId> = VecDeque::new();

    for (i, &ri) in r.iter().enumerate() {
        if ri != 0.0 {
            touched[i] = true;
            let deg = view.out_degree(NodeId::from_usize(i)).max(1);
            if ri.abs() > cfg.epsilon * deg as f64 {
                in_queue[i] = true;
                queue.push_back(NodeId::from_usize(i));
            }
        }
    }

    let mut pushes = 0usize;

    while let Some(u) = queue.pop_front() {
        in_queue[u.index()] = false;
        let deg = view.out_degree(u).max(1);
        let ru = r[u.index()];
        if ru.abs() <= cfg.epsilon * deg as f64 {
            continue;
        }
        if pushes >= cfg.max_pushes {
            break;
        }
        pushes += 1;
        r[u.index()] = 0.0;
        p[u.index()] += (1.0 - alpha) * ru;

        let wsum = view.out_weight_sum(u);
        if wsum <= 0.0 {
            // Dangling: residual mass restarts at the seed, as the exact
            // solver redistributes dangling mass along the teleport vector.
            let si = seed.index();
            r[si] += alpha * ru;
            touched[si] = true;
            if !in_queue[si] && r[si].abs() > cfg.epsilon * view.out_degree(seed).max(1) as f64 {
                in_queue[si] = true;
                queue.push_back(seed);
            }
            continue;
        }

        let share = alpha * ru / wsum;
        let mut relax = |v: NodeId, w: f64| {
            let vi = v.index();
            r[vi] += share * w;
            touched[vi] = true;
            if !in_queue[vi] && r[vi].abs() > cfg.epsilon * view.out_degree(v).max(1) as f64 {
                in_queue[vi] = true;
                queue.push_back(v);
            }
        };
        match view.out_arrays(u) {
            Some((nbrs, Some(ws))) => {
                for (j, &v) in nbrs.iter().enumerate() {
                    relax(v, ws[j]);
                }
            }
            Some((nbrs, None)) => {
                for &v in nbrs {
                    relax(v, 1.0);
                }
            }
            // Compact tier: decode the stream (weight 1.0 when unweighted).
            None => {
                for (v, w) in view.out_edges(u) {
                    relax(v, w);
                }
            }
        }
    }

    let touched_count = touched.iter().filter(|&&t| t).count();
    let residual_mass: f64 = r.iter().map(|v| v.abs()).sum();
    (ScoreVector::new(p), residual_mass, PushStats { pushes, touched: touched_count })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank::PageRankConfig;
    use crate::ppr::personalized_pagerank;
    use relgraph::GraphBuilder;

    fn approx_matches_exact(g: &relgraph::DirectedGraph, seed: u32, eps: f64) {
        let cfg = PushConfig { damping: 0.85, epsilon: eps, max_pushes: usize::MAX };
        let (approx, _) = ppr_push(g.view(), &cfg, NodeId::new(seed)).unwrap();
        let (exact, _) = personalized_pagerank(
            g.view(),
            &PageRankConfig { damping: 0.85, tolerance: 1e-14, max_iterations: 2000 },
            NodeId::new(seed),
        )
        .unwrap();
        for u in g.nodes() {
            let bound = eps * g.out_degree(u).max(1) as f64 + 1e-9;
            let diff = (approx.get(u) - exact.get(u)).abs();
            assert!(
                diff <= bound,
                "node {u:?}: |{} - {}| = {diff} > {bound}",
                approx.get(u),
                exact.get(u)
            );
        }
    }

    #[test]
    fn matches_exact_on_cycle() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 2), (2, 0)]);
        approx_matches_exact(&g, 0, 1e-8);
    }

    #[test]
    fn matches_exact_on_star_with_backlinks() {
        let mut b = GraphBuilder::new();
        for i in 1..=6 {
            b.add_edge_indices(0, i);
            b.add_edge_indices(i, 0);
        }
        let g = b.build();
        approx_matches_exact(&g, 0, 1e-8);
        approx_matches_exact(&g, 3, 1e-8);
    }

    #[test]
    fn matches_exact_with_dangling() {
        // 0 -> 1 -> 2 (2 dangles), 1 -> 0.
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 2), (1, 0)]);
        approx_matches_exact(&g, 0, 1e-9);
    }

    #[test]
    fn locality_touches_few_nodes() {
        // Ring of 1000 nodes; with a loose epsilon the push should not
        // travel all the way around.
        let mut b = GraphBuilder::new();
        let n = 1000u32;
        for i in 0..n {
            b.add_edge_indices(i, (i + 1) % n);
        }
        let g = b.build();
        let cfg = PushConfig { damping: 0.5, epsilon: 1e-4, max_pushes: usize::MAX };
        let (_, stats) = ppr_push(g.view(), &cfg, NodeId::new(0)).unwrap();
        assert!(stats.touched < 100, "touched {} of {}", stats.touched, n);
    }

    #[test]
    fn estimates_sum_below_one() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 0), (1, 2), (2, 1)]);
        let (p, _) = ppr_push(g.view(), &PushConfig::default(), NodeId::new(0)).unwrap();
        assert!(p.sum() <= 1.0 + 1e-12);
        assert!(p.sum() > 0.9); // small graph, tight epsilon
    }

    #[test]
    fn invalid_inputs() {
        let g = GraphBuilder::from_edge_indices([(0, 1)]);
        let bad_eps = PushConfig { epsilon: 0.0, ..Default::default() };
        assert!(ppr_push(g.view(), &bad_eps, NodeId::new(0)).is_err());
        let bad_alpha = PushConfig { damping: 1.0, ..Default::default() };
        assert!(ppr_push(g.view(), &bad_alpha, NodeId::new(0)).is_err());
        assert!(ppr_push(g.view(), &PushConfig::default(), NodeId::new(9)).is_err());
        let empty = GraphBuilder::new().build();
        assert!(ppr_push(empty.view(), &PushConfig::default(), NodeId::new(0)).is_err());
    }

    #[test]
    fn max_pushes_caps_work() {
        let mut b = GraphBuilder::new();
        for i in 0..50 {
            for j in 0..50 {
                if i != j {
                    b.add_edge_indices(i, j);
                }
            }
        }
        let g = b.build();
        let cfg = PushConfig { damping: 0.85, epsilon: 1e-12, max_pushes: 10 };
        let (_, stats) = ppr_push(g.view(), &cfg, NodeId::new(0)).unwrap();
        assert!(stats.pushes <= 10);
    }
}
