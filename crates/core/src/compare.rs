//! Ranking-comparison metrics.
//!
//! The demo's *algorithm comparison* use case puts the outputs of several
//! algorithms side by side (Tables I–II of the paper). These metrics
//! quantify that comparison: how much do two top-k lists overlap, and how
//! similarly do two algorithms order the graph?
//!
//! * [`jaccard_at_k`] — set overlap of the two top-k lists;
//! * [`kendall_tau`] — pairwise order agreement in [−1, 1] over a common
//!   universe of nodes;
//! * [`rank_biased_overlap`] — top-weighted similarity of indefinite
//!   rankings (Webber et al., 2010), the standard choice when only list
//!   prefixes matter;
//! * [`spearman_footrule`] — normalized total displacement between two
//!   permutations.

use crate::result::RankedList;
use relgraph::NodeId;
use std::collections::HashSet;

/// Jaccard similarity |A∩B| / |A∪B| of the two top-`k` prefixes.
///
/// Returns 1.0 when both prefixes are empty.
pub fn jaccard_at_k(a: &RankedList, b: &RankedList, k: usize) -> f64 {
    let sa: HashSet<NodeId> = a.top_k(k).iter().copied().collect();
    let sb: HashSet<NodeId> = b.top_k(k).iter().copied().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    inter / union
}

/// Kendall rank-correlation τ between two rankings, computed over the nodes
/// present in **both** lists. Returns a value in [−1, 1]; 1 = identical
/// order, −1 = reversed. Returns 1.0 when fewer than 2 common nodes exist.
///
/// O(c²) over the common count `c` — fine for the top-k lists the demo
/// compares (k ≤ a few hundred).
pub fn kendall_tau(a: &RankedList, b: &RankedList) -> f64 {
    let in_b: HashSet<NodeId> = b.as_slice().iter().copied().collect();
    let common: Vec<NodeId> = a.as_slice().iter().copied().filter(|n| in_b.contains(n)).collect();
    let c = common.len();
    if c < 2 {
        return 1.0;
    }
    // Position of each common node in b's order.
    let pos_b: std::collections::HashMap<NodeId, usize> =
        b.as_slice().iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..c {
        for j in (i + 1)..c {
            // In a's order, common[i] precedes common[j].
            let (bi, bj) = (pos_b[&common[i]], pos_b[&common[j]]);
            if bi < bj {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    (concordant - discordant) as f64 / (concordant + discordant) as f64
}

/// Rank-biased overlap (RBO) with persistence `p ∈ (0, 1)`, evaluated to the
/// depth of the shorter list (extrapolated base variant).
///
/// RBO ≈ Σ_d p^{d−1}·(overlap@d / d) · (1−p); higher `p` weights deeper
/// prefixes more. `p = 0.9` is the conventional default.
pub fn rank_biased_overlap(a: &RankedList, b: &RankedList, p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "persistence p must be in (0,1)");
    let depth = a.len().min(b.len());
    if depth == 0 {
        return 1.0;
    }
    let mut seen_a: HashSet<NodeId> = HashSet::with_capacity(depth);
    let mut seen_b: HashSet<NodeId> = HashSet::with_capacity(depth);
    let mut overlap = 0usize;
    let mut sum = 0.0;
    let mut weight = 1.0 - p; // (1-p)·p^{d-1} at d=1
    let mut total_weight = 0.0;
    for d in 0..depth {
        let (na, nb) = (a.as_slice()[d], b.as_slice()[d]);
        if na == nb {
            overlap += 1;
        } else {
            if seen_b.contains(&na) {
                overlap += 1;
            }
            if seen_a.contains(&nb) {
                overlap += 1;
            }
            seen_a.insert(na);
            seen_b.insert(nb);
        }
        sum += weight * overlap as f64 / (d + 1) as f64;
        total_weight += weight;
        weight *= p;
    }
    // Normalize by the weight actually distributed over the finite depth so
    // identical finite lists score exactly 1.
    sum / total_weight
}

/// Normalized discounted cumulative gain of `ranking` against graded
/// relevance `gains` (indexed by node id), evaluated at depth `k`.
///
/// `NDCG@k = DCG@k / IDCG@k` with `DCG@k = Σ_{i<k} gain(r_i)/log2(i+2)`;
/// 1.0 means the ranking puts the highest-gain nodes first. Used by the
/// ablation benches to score approximate PPR solvers against the exact
/// scores. Returns 1.0 when all gains are zero.
pub fn ndcg_at_k(ranking: &RankedList, gains: &[f64], k: usize) -> f64 {
    let k = k.min(gains.len());
    let discount = |i: usize| 1.0 / ((i + 2) as f64).log2();
    let dcg: f64 = ranking
        .top_k(k)
        .iter()
        .enumerate()
        .map(|(i, n)| gains.get(n.index()).copied().unwrap_or(0.0) * discount(i))
        .sum();
    let mut ideal: Vec<f64> = gains.to_vec();
    ideal.sort_by(|a, b| b.total_cmp(a));
    let idcg: f64 = ideal.iter().take(k).enumerate().map(|(i, g)| g * discount(i)).sum();
    if idcg == 0.0 {
        1.0
    } else {
        dcg / idcg
    }
}

/// Normalized Spearman footrule distance between two rankings of the same
/// node set: `1 − (Σ|posA − posB|) / max`, so 1 = identical, 0 = maximally
/// displaced. Nodes missing from either list are ignored.
pub fn spearman_footrule(a: &RankedList, b: &RankedList) -> f64 {
    let pos_b: std::collections::HashMap<NodeId, usize> =
        b.as_slice().iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let mut displacement = 0u64;
    let mut count = 0u64;
    for (i, n) in a.as_slice().iter().enumerate() {
        if let Some(&j) = pos_b.get(n) {
            displacement += (i as i64 - j as i64).unsigned_abs();
            count += 1;
        }
    }
    if count < 2 {
        return 1.0;
    }
    // Maximum footrule for m items is floor(m²/2).
    let max = count * count / 2;
    1.0 - displacement as f64 / max as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rl(ids: &[u32]) -> RankedList {
        RankedList::new(ids.iter().map(|&i| NodeId::new(i)).collect())
    }

    #[test]
    fn jaccard_identical_and_disjoint() {
        let a = rl(&[0, 1, 2, 3]);
        let b = rl(&[0, 1, 2, 3]);
        assert_eq!(jaccard_at_k(&a, &b, 4), 1.0);
        let c = rl(&[4, 5, 6, 7]);
        assert_eq!(jaccard_at_k(&a, &c, 4), 0.0);
    }

    #[test]
    fn jaccard_partial() {
        let a = rl(&[0, 1, 2]);
        let b = rl(&[1, 2, 3]);
        // intersection {1,2}, union {0,1,2,3}
        assert_eq!(jaccard_at_k(&a, &b, 3), 0.5);
    }

    #[test]
    fn jaccard_k_smaller_than_lists() {
        let a = rl(&[0, 1, 9, 9, 9]);
        let b = rl(&[1, 0, 8, 8, 8]);
        assert_eq!(jaccard_at_k(&a, &b, 2), 1.0);
    }

    #[test]
    fn jaccard_empty() {
        assert_eq!(jaccard_at_k(&rl(&[]), &rl(&[]), 5), 1.0);
    }

    #[test]
    fn kendall_identical_reversed() {
        let a = rl(&[0, 1, 2, 3]);
        assert_eq!(kendall_tau(&a, &a), 1.0);
        let r = rl(&[3, 2, 1, 0]);
        assert_eq!(kendall_tau(&a, &r), -1.0);
    }

    #[test]
    fn kendall_single_swap() {
        let a = rl(&[0, 1, 2, 3]);
        let b = rl(&[1, 0, 2, 3]);
        // 6 pairs, 1 discordant: (5-1)/6
        assert!((kendall_tau(&a, &b) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_restricted_to_common() {
        let a = rl(&[0, 1, 2]);
        let b = rl(&[2, 0, 9, 8]);
        // Common {0, 2}: a orders 0<2, b orders 2<0 -> one discordant pair.
        assert_eq!(kendall_tau(&a, &b), -1.0);
    }

    #[test]
    fn kendall_too_few_common() {
        assert_eq!(kendall_tau(&rl(&[0]), &rl(&[0])), 1.0);
        assert_eq!(kendall_tau(&rl(&[0, 1]), &rl(&[2, 3])), 1.0);
    }

    #[test]
    fn rbo_identical_is_one() {
        let a = rl(&[0, 1, 2, 3, 4]);
        assert!((rank_biased_overlap(&a, &a, 0.9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rbo_disjoint_is_zero() {
        let a = rl(&[0, 1, 2]);
        let b = rl(&[3, 4, 5]);
        assert_eq!(rank_biased_overlap(&a, &b, 0.9), 0.0);
    }

    #[test]
    fn rbo_top_weighted() {
        // Agreement at the top should score higher than the same agreement
        // at the bottom.
        let base = rl(&[0, 1, 2, 3]);
        let top_agree = rl(&[0, 1, 9, 8]);
        let bottom_agree = rl(&[9, 8, 2, 3]);
        let hi = rank_biased_overlap(&base, &top_agree, 0.9);
        let lo = rank_biased_overlap(&base, &bottom_agree, 0.9);
        assert!(hi > lo, "{hi} vs {lo}");
    }

    #[test]
    #[should_panic(expected = "persistence")]
    fn rbo_invalid_p_panics() {
        rank_biased_overlap(&rl(&[0]), &rl(&[0]), 1.0);
    }

    #[test]
    fn ndcg_perfect_and_worst() {
        let gains = [3.0, 2.0, 1.0, 0.0];
        let perfect = rl(&[0, 1, 2, 3]);
        assert!((ndcg_at_k(&perfect, &gains, 4) - 1.0).abs() < 1e-12);
        let reversed = rl(&[3, 2, 1, 0]);
        let v = ndcg_at_k(&reversed, &gains, 4);
        assert!(v < 0.8 && v > 0.0, "{v}");
        // Perfect beats any permutation.
        let mixed = rl(&[1, 0, 2, 3]);
        assert!(ndcg_at_k(&mixed, &gains, 4) < 1.0);
    }

    #[test]
    fn ndcg_depth_and_zero_gain() {
        let gains = [1.0, 1.0, 0.0];
        // At depth 2, ranking the two gain-1 nodes first is perfect.
        assert_eq!(ndcg_at_k(&rl(&[1, 0, 2]), &gains, 2), 1.0);
        assert_eq!(ndcg_at_k(&rl(&[0, 1, 2]), &[0.0, 0.0, 0.0], 3), 1.0);
    }

    #[test]
    fn footrule_identity_and_reverse() {
        let a = rl(&[0, 1, 2, 3]);
        assert_eq!(spearman_footrule(&a, &a), 1.0);
        let r = rl(&[3, 2, 1, 0]);
        assert!(spearman_footrule(&a, &r) < 0.01);
    }

    #[test]
    fn footrule_ignores_missing() {
        let a = rl(&[0, 1, 2]);
        let b = rl(&[0, 1, 9]);
        // Common {0,1} at identical positions -> 1.0
        assert_eq!(spearman_footrule(&a, &b), 1.0);
    }
}
