//! Top-k personalized serving: adaptive forward push with a separation
//! certificate.
//!
//! A top-k query (`Query::top_k(k)`) only consumes `k` entries, which is
//! exactly the situation where Andersen–Chung–Lang forward push
//! ([`crate::push`]) beats a full stationary solve: it touches the seed's
//! neighbourhood instead of sweeping every edge. The catch is that push is
//! an *approximation*, so this module only serves a push result when it
//! can **prove** the approximate top-k set equals the exact one.
//!
//! The proof uses the push invariant `ppr = p + Σ_v r[v]·ppr_v`: since
//! every `ppr_v(u) ∈ [0, 1]`, the exact score of any node lies in
//! `[p[u], p[u] + R]` where `R = Σ_v r[v]` is the residual mass left at
//! termination. Sorting the estimates descending, the top-k set is
//! certified exact as soon as
//!
//! ```text
//! p_(k) − p_(k+1) > R
//! ```
//!
//! (the k-th estimate's lower bound clears the (k+1)-th — and with it every
//! lower-ranked node's — upper bound). [`push_top_k`] runs push with an ε
//! derived from `k` and the graph size, then *refines* adaptively:
//! whenever the certificate fails, ε shrinks by [`EPS_REFINE_FACTOR`] and
//! push reruns, up to [`MAX_REFINE_ROUNDS`] rounds. If rank k and k+1
//! still cannot be separated (e.g. they are exactly tied), it returns
//! `None` and the caller falls back to the exact kernel — so the returned
//! set is always exactly the full run's top-k. Scores and the order
//! *within* the set are estimate-accurate (each within `R` of exact,
//! under-approximating), which is the documented contract of the top-k
//! serving path.
//!
//! Refinement is **work-bounded** so a near-tied seed cannot make the
//! serving path slower than the kernel it is trying to beat: each round's
//! push count is capped at a small multiple of `|V| + |E|` (comparable to
//! a handful of exact sweeps), and the loop gives up immediately — rather
//! than tightening ε further — once a round hits that cap or stops being
//! local (residual mass reached every node). The worst case is therefore
//! a bounded constant factor over the exact fallback, not the unbounded
//! `1/ε` cost of uncapped push.

use crate::error::AlgoError;
use crate::push::{ppr_push_full, ppr_push_seeded, PushConfig, PushStats};
use crate::result::{top_k_pairs, ScoreVector};
use relgraph::{EdgeMutation, GraphView, NodeId};

/// Refinement rounds before giving up on a certificate.
pub const MAX_REFINE_ROUNDS: usize = 4;

/// ε shrink factor between refinement rounds.
pub const EPS_REFINE_FACTOR: f64 = 100.0;

/// A certified top-k push result.
#[derive(Debug, Clone)]
pub struct PushTopK {
    /// The exact top-`k` node set, ordered by push estimate (descending,
    /// ties by ascending id); each score under-approximates the exact
    /// stationary score by at most `residual_mass`.
    pub top: Vec<(NodeId, f64)>,
    /// Push-operation counts of the final (certifying) round.
    pub stats: PushStats,
    /// The ε the certifying round ran at.
    pub epsilon: f64,
    /// Residual mass `R` left by the certifying round — the per-node
    /// score error bound.
    pub residual_mass: f64,
    /// Rounds of adaptive refinement used (1 = first ε sufficed).
    pub rounds: usize,
}

/// Attempts to answer a top-`k` personalized query by adaptive forward
/// push. Returns `Ok(None)` when no certificate could be established
/// within [`MAX_REFINE_ROUNDS`] (caller falls back to the exact kernel),
/// or when pruning cannot help (`k ≥ n`).
pub fn push_top_k(
    view: GraphView<'_>,
    damping: f64,
    seed: NodeId,
    k: usize,
) -> Result<Option<PushTopK>, AlgoError> {
    let n = view.node_count();
    if n == 0 {
        return Err(AlgoError::EmptyGraph);
    }
    if k == 0 {
        return Ok(Some(PushTopK {
            top: Vec::new(),
            stats: PushStats { pushes: 0, touched: 0 },
            epsilon: 0.0,
            residual_mass: 1.0,
            rounds: 0,
        }));
    }
    if k >= n {
        // Nothing to prune away; the exact kernel is the right tool.
        return Ok(None);
    }

    // First-round ε: the k-th PPR score is at most 1/k, so aim the
    // worst-case residual mass ε·(|E|+|V|) two orders of magnitude below
    // that; refinement shrinks from there when the actual gap is tighter.
    let size = (view.edge_count() + n) as f64;
    let mut epsilon = (0.01 / (k as f64 * size)).min(1e-4);
    // Per-round work cap: ~a few exact sweeps' worth of push operations.
    // A round that exhausts it cannot certify affordably, so the caller's
    // exact kernel is the cheaper tool.
    let push_budget = (8 * (n + view.edge_count())).max(4096);

    for round in 1..=MAX_REFINE_ROUNDS {
        let cfg = PushConfig { damping, epsilon, max_pushes: push_budget };
        let (p, residual_mass, stats) = ppr_push_full(view, &cfg, seed)?;
        let mut pairs = top_k_pairs(p.as_slice(), k + 1);
        let gap = pairs[k - 1].1 - pairs[k].1;
        if gap > residual_mass {
            pairs.truncate(k);
            return Ok(Some(PushTopK { top: pairs, stats, epsilon, residual_mass, rounds: round }));
        }
        if stats.pushes >= push_budget || stats.touched >= n {
            // Out of budget, or no locality left to exploit: a tighter ε
            // would only cost more than the exact fallback.
            return Ok(None);
        }
        epsilon /= EPS_REFINE_FACTOR;
        if epsilon < 1e-15 {
            break;
        }
    }
    Ok(None)
}

// --------------------------------------------------- incremental refresh

/// The outcome of one [`refresh_ppr`]: refreshed scores plus the error
/// certificate.
#[derive(Debug, Clone)]
pub struct PprRefresh {
    /// The refreshed PPR estimates on the mutated graph. L1 distance to
    /// the exact new solution is at most `residual_mass` plus whatever
    /// residual the *previous* solution carried.
    pub scores: ScoreVector,
    /// Σ|r| left below the push threshold — the refresh's own error bound.
    pub residual_mass: f64,
    /// Push-operation counts of the refresh.
    pub stats: PushStats,
}

/// Incrementally refreshes a PPR vector after a **single-edge event**,
/// by residual push — the dynamic-graph serving path.
///
/// `prev` must be a converged PPR vector for (`seed`, `cfg.damping`) on
/// the graph *before* the event; `view` is the forward view of the graph
/// *after* it, and `event` the applied mutation (as reported by
/// `relgraph::DynamicGraph::insert_edge` / `remove_edge`). Only the
/// transition column of `event.source` changed, so the correction
/// residual `r = (α/(1−α))·(P_new − P_old)·prev` has support on that node's old
/// and new out-rows (plus the seed, for dangling transitions) and is
/// computed in `O(out_degree(source))`; a signed forward push
/// ([`ppr_push_seeded`]) then drains it locally instead of re-sweeping
/// the whole graph. The *push work* is proportional to how far the fixed
/// point actually moved — near zero for edges far from the seed's
/// neighbourhood — on top of one `O(n)` pass of dense bookkeeping
/// (estimate copy + residual/queue vectors), so the refresh costs about
/// one sweep's worth of memory traffic where a cold solve costs
/// `iterations × (n + m)`.
///
/// All three single-edge event shapes are supported — fresh insert,
/// weight update (`event.previous_weight` reconstructs the old row), and
/// removal. Events inconsistent with the new graph (an "inserted" edge
/// that is absent, a "removed" edge still present, mismatched weights)
/// return [`AlgoError::InvalidParameter`]; for multi-edge batches use
/// [`crate::solver::SweepKernel::solve_warm`] instead.
pub fn refresh_ppr(
    view: GraphView<'_>,
    cfg: &PushConfig,
    seed: NodeId,
    prev: &[f64],
    event: &EdgeMutation,
) -> Result<PprRefresh, AlgoError> {
    let n = view.node_count();
    if prev.len() > n {
        return Err(AlgoError::InvalidParameter {
            name: "prev",
            message: format!("previous scores have {} entries for {n} nodes", prev.len()),
        });
    }
    let u = event.source;
    if u.index() >= n || event.target.index() >= n {
        return Err(AlgoError::InvalidReference {
            node: u.raw().max(event.target.raw()),
            node_count: n,
        });
    }
    // Mutation may have grown the graph; new nodes carry zero prior mass.
    let mut estimates = prev.to_vec();
    estimates.resize(n, 0.0);
    let xu = estimates[u.index()];

    // New out-row of the changed source, and the old row reconstructed
    // from it by undoing the event.
    let new_row: Vec<(NodeId, f64)> = view.out_edges(u).collect();
    let mut old_row = new_row.clone();
    if event.inserted {
        match old_row.iter().position(|&(v, _)| v == event.target) {
            Some(pos) => {
                if old_row[pos].1 != event.weight {
                    return Err(AlgoError::InvalidParameter {
                        name: "event",
                        message: format!(
                            "edge {}->{} does not carry the event weight on the new graph",
                            u.raw(),
                            event.target.raw()
                        ),
                    });
                }
                // Undo the event: a fresh insert vanishes from the old
                // row, a weight update reverts to its previous weight.
                match event.previous_weight {
                    Some(pw) => old_row[pos].1 = pw,
                    None => {
                        old_row.remove(pos);
                    }
                }
            }
            None => {
                return Err(AlgoError::InvalidParameter {
                    name: "event",
                    message: format!(
                        "inserted edge {}->{} is absent from the new graph",
                        u.raw(),
                        event.target.raw()
                    ),
                })
            }
        }
    } else {
        if new_row.iter().any(|&(v, _)| v == event.target) {
            return Err(AlgoError::InvalidParameter {
                name: "event",
                message: format!(
                    "removed edge {}->{} is still present on the new graph",
                    u.raw(),
                    event.target.raw()
                ),
            });
        }
        old_row.push((event.target, event.weight));
    }

    // r = α/(1−α) · x[u] · (col_new(u) − col_old(u)): with the push
    // invariant `ppr = p + Σ_u r[u]·ppr(e_u)` and `ppr(e_u) =
    // (1−α)(I − αP)⁻¹ e_u`, the residual that makes the invariant hold at
    // p = x_prev is r = (α/(1−α))·(P_new − P_old)·x_prev — supported on
    // the changed column only. A dangling column redistributes to the
    // seed, matching both the exact kernel and the push loop.
    let alpha = cfg.damping;
    let c = alpha * xu / (1.0 - alpha);
    let mut residuals: Vec<(NodeId, f64)> = Vec::with_capacity(new_row.len() + old_row.len() + 2);
    if c != 0.0 {
        let w_new: f64 = new_row.iter().map(|&(_, w)| w).sum();
        let w_old: f64 = old_row.iter().map(|&(_, w)| w).sum();
        if w_new > 0.0 {
            for &(v, w) in &new_row {
                residuals.push((v, c * w / w_new));
            }
        } else {
            residuals.push((seed, c));
        }
        if w_old > 0.0 {
            for &(v, w) in &old_row {
                residuals.push((v, -c * w / w_old));
            }
        } else {
            residuals.push((seed, -c));
        }
    }

    let (scores, residual_mass, stats) = ppr_push_seeded(view, cfg, seed, estimates, &residuals)?;
    Ok(PprRefresh { scores, residual_mass, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank::PageRankConfig;
    use crate::ppr::personalized_pagerank;
    use relgraph::GraphBuilder;

    fn exact_top(g: &relgraph::DirectedGraph, seed: u32, k: usize) -> Vec<NodeId> {
        let (s, _) = personalized_pagerank(
            g.view(),
            &PageRankConfig { damping: 0.85, tolerance: 1e-14, max_iterations: 5000 },
            NodeId::new(seed),
        )
        .unwrap();
        s.top_k(k).into_iter().map(|(n, _)| n).collect()
    }

    fn community_graph() -> relgraph::DirectedGraph {
        // Two communities bridged by one edge; no exact ties near any
        // small k when seeded inside a community.
        let mut b = GraphBuilder::new();
        for i in 0..8u32 {
            b.add_edge_indices(i, (i + 1) % 8);
            b.add_edge_indices((i + 1) % 8, i);
            b.add_edge_indices(0, i); // seed-side hub asymmetry
        }
        b.add_edge_indices(7, 8);
        for i in 8..20u32 {
            b.add_edge_indices(i, 8 + (i + 1) % 12);
        }
        b.build()
    }

    #[test]
    fn certified_set_matches_exact_top_k() {
        let g = community_graph();
        for k in [1usize, 3, 5] {
            let out = push_top_k(g.view(), 0.85, NodeId::new(1), k).unwrap();
            let Some(out) = out else { panic!("no certificate for k={k}") };
            let mut got: Vec<NodeId> = out.top.iter().map(|&(n, _)| n).collect();
            let mut want = exact_top(&g, 1, k);
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "k={k}");
            assert!(out.residual_mass < 1.0);
            assert!(out.rounds >= 1);
        }
    }

    #[test]
    fn scores_within_residual_mass_of_exact() {
        let g = community_graph();
        let out = push_top_k(g.view(), 0.85, NodeId::new(2), 4).unwrap().unwrap();
        let (exact, _) = personalized_pagerank(
            g.view(),
            &PageRankConfig { damping: 0.85, tolerance: 1e-14, max_iterations: 5000 },
            NodeId::new(2),
        )
        .unwrap();
        for &(u, score) in &out.top {
            let e = exact.get(u);
            assert!(score <= e + 1e-12, "push over-estimated {u:?}");
            assert!(e - score <= out.residual_mass + 1e-12, "error exceeds R at {u:?}");
        }
    }

    #[test]
    fn exact_ties_yield_no_certificate() {
        // A perfectly symmetric star: every leaf has the same exact score,
        // so rank k and k+1 tie and no ε can separate them.
        let mut b = GraphBuilder::new();
        for i in 1..=6u32 {
            b.add_edge_indices(0, i);
            b.add_edge_indices(i, 0);
        }
        let g = b.build();
        let out = push_top_k(g.view(), 0.85, NodeId::new(0), 3).unwrap();
        assert!(out.is_none(), "tied ranks must fall back to the exact kernel");
    }

    #[test]
    fn degenerate_ks() {
        let g = community_graph();
        let empty = push_top_k(g.view(), 0.85, NodeId::new(0), 0).unwrap().unwrap();
        assert!(empty.top.is_empty());
        // k >= n: pruning can't help.
        assert!(push_top_k(g.view(), 0.85, NodeId::new(0), g.node_count()).unwrap().is_none());
    }

    #[test]
    fn invalid_inputs_propagate() {
        let g = GraphBuilder::from_edge_indices([(0, 1)]);
        assert!(push_top_k(g.view(), 1.5, NodeId::new(0), 1).is_err());
        let empty = GraphBuilder::new().build();
        assert!(push_top_k(empty.view(), 0.85, NodeId::new(0), 1).is_err());
    }

    // ----------------------------------------------- incremental refresh

    fn exact_ppr(g: &relgraph::DirectedGraph, seed: u32) -> crate::result::ScoreVector {
        personalized_pagerank(
            g.view(),
            &PageRankConfig { damping: 0.85, tolerance: 1e-14, max_iterations: 5000 },
            NodeId::new(seed),
        )
        .unwrap()
        .0
    }

    fn refresh_cfg() -> PushConfig {
        PushConfig { damping: 0.85, epsilon: 1e-10, max_pushes: usize::MAX }
    }

    /// Applies `mutate` to a dynamic copy of `g`, refreshes the seed's PPR
    /// incrementally, and checks it against a cold exact solve on the
    /// mutated graph within the certified residual mass.
    fn assert_refresh_matches_cold(
        g: relgraph::DirectedGraph,
        seed: u32,
        mutate: impl FnOnce(&mut relgraph::DynamicGraph) -> relgraph::EdgeMutation,
    ) {
        let prev = exact_ppr(&g, seed);
        let mut dynamic = relgraph::DynamicGraph::new(g);
        let event = mutate(&mut dynamic);
        let mutated = dynamic.snapshot();
        let refreshed =
            refresh_ppr(mutated.view(), &refresh_cfg(), NodeId::new(seed), prev.as_slice(), &event)
                .unwrap();
        let cold = exact_ppr(&mutated, seed);
        let l1: f64 = mutated.nodes().map(|u| (refreshed.scores.get(u) - cold.get(u)).abs()).sum();
        assert!(
            l1 <= refreshed.residual_mass + 1e-7,
            "refresh L1 error {l1} exceeds certificate {}",
            refreshed.residual_mass
        );
        assert!(l1 < 1e-6, "refresh drifted from the cold solve: L1 {l1}");
    }

    #[test]
    fn refresh_matches_cold_solve_after_insert() {
        assert_refresh_matches_cold(community_graph(), 1, |d| {
            d.insert_edge(NodeId::new(2), NodeId::new(9), 1.0).unwrap().unwrap()
        });
    }

    #[test]
    fn refresh_matches_cold_solve_after_remove() {
        assert_refresh_matches_cold(community_graph(), 1, |d| {
            d.remove_edge(NodeId::new(0), NodeId::new(3)).unwrap().unwrap()
        });
    }

    #[test]
    fn refresh_matches_cold_solve_after_weight_update() {
        let mut b = GraphBuilder::new();
        b.add_weighted_edge(NodeId::new(0), NodeId::new(1), 2.0);
        b.add_weighted_edge(NodeId::new(1), NodeId::new(0), 1.0);
        b.add_weighted_edge(NodeId::new(1), NodeId::new(2), 1.5);
        b.add_weighted_edge(NodeId::new(2), NodeId::new(0), 1.0);
        assert_refresh_matches_cold(b.build(), 0, |d| {
            // Upsert: 1 -> 2 goes from weight 1.5 to 4.0.
            d.insert_edge(NodeId::new(1), NodeId::new(2), 4.0).unwrap().unwrap()
        });
    }

    #[test]
    fn refresh_handles_dangling_transitions() {
        // 0 <-> 1, 1 -> 2 (2 dangles).
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 0), (1, 2)]);
        // Removing 1's edges one at a time eventually leaves it dangling;
        // inserting out of the dangling node 2 un-dangles it.
        assert_refresh_matches_cold(g.clone(), 0, |d| {
            d.insert_edge(NodeId::new(2), NodeId::new(0), 1.0).unwrap().unwrap()
        });
        let mut b = GraphBuilder::new();
        b.add_edge_indices(0, 1);
        b.add_edge_indices(1, 0);
        b.add_edge_indices(1, 2);
        b.add_edge_indices(2, 0);
        assert_refresh_matches_cold(b.build(), 0, |d| {
            // 2 loses its only out-edge and becomes dangling.
            d.remove_edge(NodeId::new(2), NodeId::new(0)).unwrap().unwrap()
        });
    }

    #[test]
    fn refresh_far_from_seed_is_near_free() {
        // A long directed path away from the seed: mutating its far end
        // moves (almost) no probability mass, so the refresh pushes
        // (almost) nothing.
        let mut b = GraphBuilder::new();
        b.add_edge_indices(0, 1);
        b.add_edge_indices(1, 0);
        for i in 1..60u32 {
            b.add_edge_indices(i, i + 1);
        }
        let g = b.build();
        let prev = exact_ppr(&g, 0);
        let mut d = relgraph::DynamicGraph::new(g);
        let event = d.insert_edge(NodeId::new(59), NodeId::new(5), 1.0).unwrap().unwrap();
        let mutated = d.snapshot();
        let refreshed =
            refresh_ppr(mutated.view(), &refresh_cfg(), NodeId::new(0), prev.as_slice(), &event)
                .unwrap();
        // The changed node held ~no mass: the correction drains in far
        // fewer operations than a cold solve's sweep count (~140
        // iterations × 61 nodes ≈ 8,500 node updates at this tolerance).
        assert!(refreshed.stats.pushes < 1_500, "pushes {}", refreshed.stats.pushes);
        let cold = exact_ppr(&mutated, 0);
        for u in mutated.nodes() {
            assert!((refreshed.scores.get(u) - cold.get(u)).abs() < 1e-6, "{u:?}");
        }
    }

    #[test]
    fn refresh_grown_graph_extends_prev_with_zeros() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 0)]);
        let prev = exact_ppr(&g, 0);
        let mut d = relgraph::DynamicGraph::new(g);
        // Edge to a brand-new node.
        let event = d.insert_edge(NodeId::new(1), NodeId::new(4), 1.0).unwrap().unwrap();
        let mutated = d.snapshot();
        assert_eq!(mutated.node_count(), 5);
        let refreshed =
            refresh_ppr(mutated.view(), &refresh_cfg(), NodeId::new(0), prev.as_slice(), &event)
                .unwrap();
        let cold = exact_ppr(&mutated, 0);
        for u in mutated.nodes() {
            assert!((refreshed.scores.get(u) - cold.get(u)).abs() < 1e-6, "{u:?}");
        }
    }

    #[test]
    fn refresh_rejects_inconsistent_events() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 0), (1, 2), (2, 0)]);
        let prev = exact_ppr(&g, 0);
        let cfg = refresh_cfg();
        // "Inserted" an edge the graph does not carry.
        let bogus = relgraph::EdgeMutation {
            source: NodeId::new(2),
            target: NodeId::new(1),
            weight: 1.0,
            previous_weight: None,
            inserted: true,
        };
        assert!(refresh_ppr(g.view(), &cfg, NodeId::new(0), prev.as_slice(), &bogus).is_err());
        // "Removed" an edge that is still present.
        let bogus = relgraph::EdgeMutation {
            source: NodeId::new(0),
            target: NodeId::new(1),
            weight: 1.0,
            previous_weight: None,
            inserted: false,
        };
        assert!(refresh_ppr(g.view(), &cfg, NodeId::new(0), prev.as_slice(), &bogus).is_err());
        // Weight update (event weight diverges from the graph's).
        let bogus = relgraph::EdgeMutation {
            source: NodeId::new(0),
            target: NodeId::new(1),
            weight: 2.0,
            previous_weight: None,
            inserted: true,
        };
        assert!(refresh_ppr(g.view(), &cfg, NodeId::new(0), prev.as_slice(), &bogus).is_err());
        // Out-of-range endpoints.
        let bogus = relgraph::EdgeMutation {
            source: NodeId::new(9),
            target: NodeId::new(0),
            weight: 1.0,
            previous_weight: None,
            inserted: true,
        };
        assert!(refresh_ppr(g.view(), &cfg, NodeId::new(0), prev.as_slice(), &bogus).is_err());
    }
}
