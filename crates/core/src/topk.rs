//! Top-k personalized serving: adaptive forward push with a separation
//! certificate.
//!
//! A top-k query (`Query::top_k(k)`) only consumes `k` entries, which is
//! exactly the situation where Andersen–Chung–Lang forward push
//! ([`crate::push`]) beats a full stationary solve: it touches the seed's
//! neighbourhood instead of sweeping every edge. The catch is that push is
//! an *approximation*, so this module only serves a push result when it
//! can **prove** the approximate top-k set equals the exact one.
//!
//! The proof uses the push invariant `ppr = p + Σ_v r[v]·ppr_v`: since
//! every `ppr_v(u) ∈ [0, 1]`, the exact score of any node lies in
//! `[p[u], p[u] + R]` where `R = Σ_v r[v]` is the residual mass left at
//! termination. Sorting the estimates descending, the top-k set is
//! certified exact as soon as
//!
//! ```text
//! p_(k) − p_(k+1) > R
//! ```
//!
//! (the k-th estimate's lower bound clears the (k+1)-th — and with it every
//! lower-ranked node's — upper bound). [`push_top_k`] runs push with an ε
//! derived from `k` and the graph size, then *refines* adaptively:
//! whenever the certificate fails, ε shrinks by [`EPS_REFINE_FACTOR`] and
//! push reruns, up to [`MAX_REFINE_ROUNDS`] rounds. If rank k and k+1
//! still cannot be separated (e.g. they are exactly tied), it returns
//! `None` and the caller falls back to the exact kernel — so the returned
//! set is always exactly the full run's top-k. Scores and the order
//! *within* the set are estimate-accurate (each within `R` of exact,
//! under-approximating), which is the documented contract of the top-k
//! serving path.
//!
//! Refinement is **work-bounded** so a near-tied seed cannot make the
//! serving path slower than the kernel it is trying to beat: each round's
//! push count is capped at a small multiple of `|V| + |E|` (comparable to
//! a handful of exact sweeps), and the loop gives up immediately — rather
//! than tightening ε further — once a round hits that cap or stops being
//! local (residual mass reached every node). The worst case is therefore
//! a bounded constant factor over the exact fallback, not the unbounded
//! `1/ε` cost of uncapped push.

use crate::error::AlgoError;
use crate::push::{ppr_push_full, PushConfig, PushStats};
use crate::result::top_k_pairs;
use relgraph::{GraphView, NodeId};

/// Refinement rounds before giving up on a certificate.
pub const MAX_REFINE_ROUNDS: usize = 4;

/// ε shrink factor between refinement rounds.
pub const EPS_REFINE_FACTOR: f64 = 100.0;

/// A certified top-k push result.
#[derive(Debug, Clone)]
pub struct PushTopK {
    /// The exact top-`k` node set, ordered by push estimate (descending,
    /// ties by ascending id); each score under-approximates the exact
    /// stationary score by at most `residual_mass`.
    pub top: Vec<(NodeId, f64)>,
    /// Push-operation counts of the final (certifying) round.
    pub stats: PushStats,
    /// The ε the certifying round ran at.
    pub epsilon: f64,
    /// Residual mass `R` left by the certifying round — the per-node
    /// score error bound.
    pub residual_mass: f64,
    /// Rounds of adaptive refinement used (1 = first ε sufficed).
    pub rounds: usize,
}

/// Attempts to answer a top-`k` personalized query by adaptive forward
/// push. Returns `Ok(None)` when no certificate could be established
/// within [`MAX_REFINE_ROUNDS`] (caller falls back to the exact kernel),
/// or when pruning cannot help (`k ≥ n`).
pub fn push_top_k(
    view: GraphView<'_>,
    damping: f64,
    seed: NodeId,
    k: usize,
) -> Result<Option<PushTopK>, AlgoError> {
    let n = view.node_count();
    if n == 0 {
        return Err(AlgoError::EmptyGraph);
    }
    if k == 0 {
        return Ok(Some(PushTopK {
            top: Vec::new(),
            stats: PushStats { pushes: 0, touched: 0 },
            epsilon: 0.0,
            residual_mass: 1.0,
            rounds: 0,
        }));
    }
    if k >= n {
        // Nothing to prune away; the exact kernel is the right tool.
        return Ok(None);
    }

    // First-round ε: the k-th PPR score is at most 1/k, so aim the
    // worst-case residual mass ε·(|E|+|V|) two orders of magnitude below
    // that; refinement shrinks from there when the actual gap is tighter.
    let size = (view.edge_count() + n) as f64;
    let mut epsilon = (0.01 / (k as f64 * size)).min(1e-4);
    // Per-round work cap: ~a few exact sweeps' worth of push operations.
    // A round that exhausts it cannot certify affordably, so the caller's
    // exact kernel is the cheaper tool.
    let push_budget = (8 * (n + view.edge_count())).max(4096);

    for round in 1..=MAX_REFINE_ROUNDS {
        let cfg = PushConfig { damping, epsilon, max_pushes: push_budget };
        let (p, residual_mass, stats) = ppr_push_full(view, &cfg, seed)?;
        let mut pairs = top_k_pairs(p.as_slice(), k + 1);
        let gap = pairs[k - 1].1 - pairs[k].1;
        if gap > residual_mass {
            pairs.truncate(k);
            return Ok(Some(PushTopK { top: pairs, stats, epsilon, residual_mass, rounds: round }));
        }
        if stats.pushes >= push_budget || stats.touched >= n {
            // Out of budget, or no locality left to exploit: a tighter ε
            // would only cost more than the exact fallback.
            return Ok(None);
        }
        epsilon /= EPS_REFINE_FACTOR;
        if epsilon < 1e-15 {
            break;
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank::PageRankConfig;
    use crate::ppr::personalized_pagerank;
    use relgraph::GraphBuilder;

    fn exact_top(g: &relgraph::DirectedGraph, seed: u32, k: usize) -> Vec<NodeId> {
        let (s, _) = personalized_pagerank(
            g.view(),
            &PageRankConfig { damping: 0.85, tolerance: 1e-14, max_iterations: 5000 },
            NodeId::new(seed),
        )
        .unwrap();
        s.top_k(k).into_iter().map(|(n, _)| n).collect()
    }

    fn community_graph() -> relgraph::DirectedGraph {
        // Two communities bridged by one edge; no exact ties near any
        // small k when seeded inside a community.
        let mut b = GraphBuilder::new();
        for i in 0..8u32 {
            b.add_edge_indices(i, (i + 1) % 8);
            b.add_edge_indices((i + 1) % 8, i);
            b.add_edge_indices(0, i); // seed-side hub asymmetry
        }
        b.add_edge_indices(7, 8);
        for i in 8..20u32 {
            b.add_edge_indices(i, 8 + (i + 1) % 12);
        }
        b.build()
    }

    #[test]
    fn certified_set_matches_exact_top_k() {
        let g = community_graph();
        for k in [1usize, 3, 5] {
            let out = push_top_k(g.view(), 0.85, NodeId::new(1), k).unwrap();
            let Some(out) = out else { panic!("no certificate for k={k}") };
            let mut got: Vec<NodeId> = out.top.iter().map(|&(n, _)| n).collect();
            let mut want = exact_top(&g, 1, k);
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "k={k}");
            assert!(out.residual_mass < 1.0);
            assert!(out.rounds >= 1);
        }
    }

    #[test]
    fn scores_within_residual_mass_of_exact() {
        let g = community_graph();
        let out = push_top_k(g.view(), 0.85, NodeId::new(2), 4).unwrap().unwrap();
        let (exact, _) = personalized_pagerank(
            g.view(),
            &PageRankConfig { damping: 0.85, tolerance: 1e-14, max_iterations: 5000 },
            NodeId::new(2),
        )
        .unwrap();
        for &(u, score) in &out.top {
            let e = exact.get(u);
            assert!(score <= e + 1e-12, "push over-estimated {u:?}");
            assert!(e - score <= out.residual_mass + 1e-12, "error exceeds R at {u:?}");
        }
    }

    #[test]
    fn exact_ties_yield_no_certificate() {
        // A perfectly symmetric star: every leaf has the same exact score,
        // so rank k and k+1 tie and no ε can separate them.
        let mut b = GraphBuilder::new();
        for i in 1..=6u32 {
            b.add_edge_indices(0, i);
            b.add_edge_indices(i, 0);
        }
        let g = b.build();
        let out = push_top_k(g.view(), 0.85, NodeId::new(0), 3).unwrap();
        assert!(out.is_none(), "tied ranks must fall back to the exact kernel");
    }

    #[test]
    fn degenerate_ks() {
        let g = community_graph();
        let empty = push_top_k(g.view(), 0.85, NodeId::new(0), 0).unwrap().unwrap();
        assert!(empty.top.is_empty());
        // k >= n: pruning can't help.
        assert!(push_top_k(g.view(), 0.85, NodeId::new(0), g.node_count()).unwrap().is_none());
    }

    #[test]
    fn invalid_inputs_propagate() {
        let g = GraphBuilder::from_edge_indices([(0, 1)]);
        assert!(push_top_k(g.view(), 1.5, NodeId::new(0), 1).is_err());
        let empty = GraphBuilder::new().build();
        assert!(push_top_k(empty.view(), 0.85, NodeId::new(0), 1).is_err());
    }
}
