//! Monte-Carlo Personalized PageRank estimation.
//!
//! The third member of the PPR-solver ablation: simulate `walks` random
//! walks from the seed, each terminating with probability `1 − α` per step
//! (and immediately upon reaching a dangling node, where the surfer would
//! restart). The fraction of walk *endpoints* that land on node `u` is an
//! unbiased estimator of `ppr(u)` — a classic result (Avrachenkov et al.,
//! 2007; Fogaras et al., 2005).
//!
//! Accuracy grows as `O(1/√walks)`, making Monte-Carlo attractive for
//! top-k queries on huge graphs where only the high-mass nodes matter —
//! exactly the demo platform's use case of showing the top-5 table.

use crate::error::AlgoError;
use crate::result::ScoreVector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relgraph::{GraphView, NodeId};
use serde::{Deserialize, Serialize};

/// Parameters of the Monte-Carlo PPR estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloConfig {
    /// Continuation probability α, as in PageRank.
    pub damping: f64,
    /// Number of random walks to simulate.
    pub walks: usize,
    /// RNG seed (estimates are deterministic given the seed).
    pub rng_seed: u64,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig { damping: 0.85, walks: 100_000, rng_seed: 0xC1C1E5EED }
    }
}

impl MonteCarloConfig {
    fn validate(&self) -> Result<(), AlgoError> {
        if !(self.damping > 0.0 && self.damping < 1.0) {
            return Err(AlgoError::InvalidDamping(self.damping));
        }
        if self.walks == 0 {
            return Err(AlgoError::InvalidParameter {
                name: "walks",
                message: "must be >= 1".into(),
            });
        }
        Ok(())
    }
}

/// Estimates PPR from `seed` with terminated random walks.
///
/// The returned vector sums to exactly 1 (every walk ends somewhere).
pub fn ppr_monte_carlo(
    view: GraphView<'_>,
    cfg: &MonteCarloConfig,
    seed: NodeId,
) -> Result<ScoreVector, AlgoError> {
    cfg.validate()?;
    let n = view.node_count();
    if n == 0 {
        return Err(AlgoError::EmptyGraph);
    }
    if seed.index() >= n {
        return Err(AlgoError::InvalidReference { node: seed.raw(), node_count: n });
    }

    let mut rng = StdRng::seed_from_u64(cfg.rng_seed);
    let mut hits = vec![0u64; n];

    for _ in 0..cfg.walks {
        let mut u = seed;
        loop {
            // Terminate with probability 1 − α.
            if rng.gen::<f64>() >= cfg.damping {
                break;
            }
            let neighbors = view.out_neighbors(u);
            if neighbors.is_empty() {
                // Dangling: the surfer restarts at the seed; for endpoint
                // counting this is equivalent to starting a fresh walk, so
                // we continue from the seed without terminating.
                u = seed;
                continue;
            }
            u = match view.out_weights(u) {
                None => neighbors[rng.gen_range(0..neighbors.len())],
                Some(ws) => {
                    // Weighted choice proportional to edge weight.
                    let total: f64 = ws.iter().sum();
                    let mut t = rng.gen::<f64>() * total;
                    let mut chosen = neighbors[neighbors.len() - 1];
                    for (j, &w) in ws.iter().enumerate() {
                        if t < w {
                            chosen = neighbors[j];
                            break;
                        }
                        t -= w;
                    }
                    chosen
                }
            };
        }
        hits[u.index()] += 1;
    }

    let scale = 1.0 / cfg.walks as f64;
    Ok(ScoreVector::new(hits.into_iter().map(|h| h as f64 * scale).collect()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank::PageRankConfig;
    use crate::ppr::personalized_pagerank;
    use relgraph::GraphBuilder;

    #[test]
    fn estimates_sum_to_one() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 2), (2, 0)]);
        let cfg = MonteCarloConfig { walks: 10_000, ..Default::default() };
        let s = ppr_monte_carlo(g.view(), &cfg, NodeId::new(0)).unwrap();
        assert!((s.sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 0), (1, 2), (2, 0)]);
        let cfg = MonteCarloConfig { walks: 5000, rng_seed: 7, ..Default::default() };
        let a = ppr_monte_carlo(g.view(), &cfg, NodeId::new(0)).unwrap();
        let b = ppr_monte_carlo(g.view(), &cfg, NodeId::new(0)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn converges_to_exact() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 0), (1, 2), (2, 1), (2, 0), (0, 2)]);
        let cfg = MonteCarloConfig { walks: 400_000, damping: 0.85, rng_seed: 42 };
        let est = ppr_monte_carlo(g.view(), &cfg, NodeId::new(0)).unwrap();
        let (exact, _) =
            personalized_pagerank(g.view(), &PageRankConfig::default(), NodeId::new(0)).unwrap();
        for u in g.nodes() {
            assert!(
                (est.get(u) - exact.get(u)).abs() < 0.01,
                "node {u:?}: {} vs {}",
                est.get(u),
                exact.get(u)
            );
        }
    }

    #[test]
    fn unreachable_nodes_score_zero() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 0), (2, 0)]);
        let s = ppr_monte_carlo(g.view(), &MonteCarloConfig::default(), NodeId::new(0)).unwrap();
        assert_eq!(s.get(NodeId::new(2)), 0.0);
    }

    #[test]
    fn dangling_restart_keeps_walks_near_seed() {
        // 0 -> 1, 1 dangles: all mass stays on {0, 1}.
        let g = GraphBuilder::from_edge_indices([(0, 1)]);
        let s = ppr_monte_carlo(g.view(), &MonteCarloConfig::default(), NodeId::new(0)).unwrap();
        assert!((s.get(NodeId::new(0)) + s.get(NodeId::new(1)) - 1.0).abs() < 1e-12);
        assert!(s.get(NodeId::new(0)) > 0.0);
        assert!(s.get(NodeId::new(1)) > 0.0);
    }

    #[test]
    fn weighted_walks_follow_heavy_edges() {
        let mut b = GraphBuilder::new();
        b.add_weighted_edge(NodeId::new(0), NodeId::new(1), 99.0);
        b.add_weighted_edge(NodeId::new(0), NodeId::new(2), 1.0);
        b.add_weighted_edge(NodeId::new(1), NodeId::new(0), 1.0);
        b.add_weighted_edge(NodeId::new(2), NodeId::new(0), 1.0);
        let g = b.build();
        let cfg = MonteCarloConfig { walks: 50_000, ..Default::default() };
        let s = ppr_monte_carlo(g.view(), &cfg, NodeId::new(0)).unwrap();
        assert!(s.get(NodeId::new(1)) > 10.0 * s.get(NodeId::new(2)));
    }

    #[test]
    fn invalid_inputs() {
        let g = GraphBuilder::from_edge_indices([(0, 1)]);
        let cfg = MonteCarloConfig { walks: 0, ..Default::default() };
        assert!(ppr_monte_carlo(g.view(), &cfg, NodeId::new(0)).is_err());
        let cfg = MonteCarloConfig { damping: 0.0, ..Default::default() };
        assert!(ppr_monte_carlo(g.view(), &cfg, NodeId::new(0)).is_err());
        assert!(ppr_monte_carlo(g.view(), &MonteCarloConfig::default(), NodeId::new(9)).is_err());
    }
}
