//! Monte-Carlo Personalized PageRank estimation.
//!
//! The third member of the PPR-solver ablation: simulate `walks` random
//! walks from the seed, each terminating with probability `1 − α` per step
//! (and immediately upon reaching a dangling node, where the surfer would
//! restart). The fraction of walk *endpoints* that land on node `u` is an
//! unbiased estimator of `ppr(u)` — a classic result (Avrachenkov et al.,
//! 2007; Fogaras et al., 2005).
//!
//! Accuracy grows as `O(1/√walks)`, making Monte-Carlo attractive for
//! top-k queries on huge graphs where only the high-mass nodes matter —
//! exactly the demo platform's use case of showing the top-5 table.
//!
//! Walks are embarrassingly parallel: they split into fixed-size chunks
//! ([`WALK_CHUNK`]), each with its own RNG stream derived deterministically
//! from `rng_seed` and the chunk index, and the per-chunk endpoint counts
//! merge by addition. The chunk layout depends only on `walks` — never on
//! the thread count — so a fixed seed reproduces the same estimate whether
//! the run uses 1 thread or 16. Weighted steps sample by binary search
//! over per-node cumulative weights precomputed once per run (the seed
//! implementation summed the weight list on every step).

use crate::error::AlgoError;
use crate::result::ScoreVector;
use crate::solver::effective_threads;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relgraph::{GraphView, NodeId};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Walks per RNG stream: the reproducibility unit of a Monte-Carlo run.
/// Fixed (not derived from the thread count) so estimates depend only on
/// `rng_seed` and `walks`.
pub const WALK_CHUNK: usize = 8192;

/// Parameters of the Monte-Carlo PPR estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloConfig {
    /// Continuation probability α, as in PageRank.
    pub damping: f64,
    /// Number of random walks to simulate.
    pub walks: usize,
    /// RNG seed (estimates are deterministic given the seed, for any
    /// thread count).
    pub rng_seed: u64,
    /// Worker threads; `0` means "all available cores".
    #[serde(default)]
    pub threads: usize,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig { damping: 0.85, walks: 100_000, rng_seed: 0xC1C1E5EED, threads: 0 }
    }
}

impl MonteCarloConfig {
    fn validate(&self) -> Result<(), AlgoError> {
        if !(self.damping > 0.0 && self.damping < 1.0) {
            return Err(AlgoError::InvalidDamping(self.damping));
        }
        if self.walks == 0 {
            return Err(AlgoError::InvalidParameter {
                name: "walks",
                message: "must be >= 1".into(),
            });
        }
        Ok(())
    }
}

/// The RNG seed of walk chunk `chunk`: a SplitMix64 scramble of the run
/// seed offset by the chunk index, so consecutive chunks get decorrelated
/// streams while remaining a pure function of `(rng_seed, chunk)`.
fn stream_seed(rng_seed: u64, chunk: u64) -> u64 {
    let mut z = rng_seed.wrapping_add(chunk.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-node cumulative out-weights of a weighted view, precomputed once
/// per run so each weighted step is a binary search instead of an O(deg)
/// scan over the weight list.
struct CumulativeWeights {
    /// `offsets[u]..offsets[u + 1]` is node `u`'s slice of `cum`.
    offsets: Vec<usize>,
    /// Running weight totals within each node's out-edge list.
    cum: Vec<f64>,
}

impl CumulativeWeights {
    fn build(view: GraphView<'_>) -> Option<Self> {
        if !view.is_weighted() {
            return None;
        }
        let n = view.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut cum = Vec::with_capacity(view.edge_count());
        offsets.push(0);
        for i in 0..n {
            let u = NodeId::from_usize(i);
            if let Some((_, Some(ws))) = view.out_arrays(u) {
                let mut running = 0.0;
                for &w in ws {
                    running += w;
                    cum.push(running);
                }
            }
            offsets.push(cum.len());
        }
        Some(CumulativeWeights { offsets, cum })
    }

    /// Draws an out-edge index of `u` proportional to edge weight, given a
    /// uniform draw `r ∈ [0, 1)`. Zero-weight edges are never chosen,
    /// matching the old linear scan.
    #[inline]
    fn sample(&self, u: NodeId, degree: usize, r: f64) -> usize {
        let slice = &self.cum[self.offsets[u.index()]..self.offsets[u.index() + 1]];
        let t = r * slice[slice.len() - 1];
        slice.partition_point(|&c| c <= t).min(degree - 1)
    }
}

/// Estimates PPR from `seed` with terminated random walks.
///
/// The returned vector sums to exactly 1 (every walk ends somewhere).
/// Deterministic for a fixed `rng_seed` and `walks`, independent of
/// `threads`.
pub fn ppr_monte_carlo(
    view: GraphView<'_>,
    cfg: &MonteCarloConfig,
    seed: NodeId,
) -> Result<ScoreVector, AlgoError> {
    cfg.validate()?;
    let n = view.node_count();
    if n == 0 {
        return Err(AlgoError::EmptyGraph);
    }
    if seed.index() >= n {
        return Err(AlgoError::InvalidReference { node: seed.raw(), node_count: n });
    }
    // Each walk step draws a uniformly random out-neighbor, which needs
    // O(1) indexed access into the adjacency — only the CSR tier has it.
    if view.as_csr().is_none() {
        return Err(AlgoError::UnsupportedTier { algorithm: "monte_carlo" });
    }

    let cum = CumulativeWeights::build(view);
    let chunks = cfg.walks.div_ceil(WALK_CHUNK);
    let threads = effective_threads(cfg.threads, chunks);

    let hits = if threads == 1 {
        let mut hits = vec![0u64; n];
        for chunk in 0..chunks {
            simulate_chunk(view, cfg, seed, cum.as_ref(), chunk, &mut hits);
        }
        hits
    } else {
        // Chunks are claimed from a shared counter; which thread runs a
        // chunk is racy, but each chunk's stream is a pure function of its
        // index, and u64 endpoint counts merge commutatively — so the
        // estimate is identical for every thread count.
        let next = AtomicUsize::new(0);
        let cum = cum.as_ref();
        let partials = crossbeam::thread::scope(|s| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    let next = &next;
                    s.spawn(move |_| {
                        let mut local = vec![0u64; n];
                        loop {
                            let chunk = next.fetch_add(1, Ordering::Relaxed);
                            if chunk >= chunks {
                                break;
                            }
                            simulate_chunk(view, cfg, seed, cum, chunk, &mut local);
                        }
                        local
                    })
                })
                .collect();
            workers.into_iter().map(|w| w.join().expect("walker panicked")).collect::<Vec<_>>()
        })
        .expect("walker thread panicked");
        let mut hits = vec![0u64; n];
        for local in partials {
            for (h, l) in hits.iter_mut().zip(local) {
                *h += l;
            }
        }
        hits
    };

    let scale = 1.0 / cfg.walks as f64;
    Ok(ScoreVector::new(hits.into_iter().map(|h| h as f64 * scale).collect()))
}

/// Simulates walk chunk `chunk` (walks `chunk · WALK_CHUNK` up to the run
/// total) on its own RNG stream, accumulating endpoint counts into `hits`.
fn simulate_chunk(
    view: GraphView<'_>,
    cfg: &MonteCarloConfig,
    seed: NodeId,
    cum: Option<&CumulativeWeights>,
    chunk: usize,
    hits: &mut [u64],
) {
    let walks = WALK_CHUNK.min(cfg.walks - chunk * WALK_CHUNK);
    let mut rng = StdRng::seed_from_u64(stream_seed(cfg.rng_seed, chunk as u64));
    for _ in 0..walks {
        let mut u = seed;
        loop {
            // Terminate with probability 1 − α.
            if rng.gen::<f64>() >= cfg.damping {
                break;
            }
            let (neighbors, _) = view.out_arrays(u).expect("monte carlo runs on the CSR tier");
            if neighbors.is_empty() {
                // Dangling: the surfer restarts at the seed; for endpoint
                // counting this is equivalent to starting a fresh walk, so
                // we continue from the seed without terminating.
                u = seed;
                continue;
            }
            u = match cum {
                None => neighbors[rng.gen_range(0..neighbors.len())],
                Some(cum) => neighbors[cum.sample(u, neighbors.len(), rng.gen::<f64>())],
            };
        }
        hits[u.index()] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank::PageRankConfig;
    use crate::ppr::personalized_pagerank;
    use relgraph::GraphBuilder;

    #[test]
    fn estimates_sum_to_one() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 2), (2, 0)]);
        let cfg = MonteCarloConfig { walks: 10_000, ..Default::default() };
        let s = ppr_monte_carlo(g.view(), &cfg, NodeId::new(0)).unwrap();
        assert!((s.sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 0), (1, 2), (2, 0)]);
        let cfg = MonteCarloConfig { walks: 5000, rng_seed: 7, ..Default::default() };
        let a = ppr_monte_carlo(g.view(), &cfg, NodeId::new(0)).unwrap();
        let b = ppr_monte_carlo(g.view(), &cfg, NodeId::new(0)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn converges_to_exact() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 0), (1, 2), (2, 1), (2, 0), (0, 2)]);
        let cfg = MonteCarloConfig { walks: 400_000, damping: 0.85, rng_seed: 42, threads: 0 };
        let est = ppr_monte_carlo(g.view(), &cfg, NodeId::new(0)).unwrap();
        let (exact, _) =
            personalized_pagerank(g.view(), &PageRankConfig::default(), NodeId::new(0)).unwrap();
        for u in g.nodes() {
            assert!(
                (est.get(u) - exact.get(u)).abs() < 0.01,
                "node {u:?}: {} vs {}",
                est.get(u),
                exact.get(u)
            );
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        // The reproducibility contract: chunk layout and streams depend
        // only on (rng_seed, walks), so any thread count gives the same
        // estimate. 3 · WALK_CHUNK + 17 walks exercises an uneven tail.
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 0), (1, 2), (2, 0), (2, 1)]);
        let walks = 3 * WALK_CHUNK + 17;
        let base = ppr_monte_carlo(
            g.view(),
            &MonteCarloConfig { walks, threads: 1, ..Default::default() },
            NodeId::new(0),
        )
        .unwrap();
        for threads in [2, 3, 8] {
            let s = ppr_monte_carlo(
                g.view(),
                &MonteCarloConfig { walks, threads, ..Default::default() },
                NodeId::new(0),
            )
            .unwrap();
            assert_eq!(base, s, "threads={threads}");
        }
        assert!((base.sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chunk_streams_are_decorrelated() {
        // Different chunks must not replay the same walks: with a single
        // shared stream split into chunks, identical seeds would make the
        // sub-estimates identical. Compare two disjoint single-chunk runs
        // via distinct chunk-derived seeds.
        assert_ne!(stream_seed(7, 0), stream_seed(7, 1));
        assert_ne!(stream_seed(7, 1), stream_seed(8, 1));
        // And the estimator actually mixes them: a two-chunk run differs
        // from doubling one chunk.
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 0), (1, 2), (2, 0)]);
        let one = ppr_monte_carlo(
            g.view(),
            &MonteCarloConfig { walks: WALK_CHUNK, ..Default::default() },
            NodeId::new(0),
        )
        .unwrap();
        let two = ppr_monte_carlo(
            g.view(),
            &MonteCarloConfig { walks: 2 * WALK_CHUNK, ..Default::default() },
            NodeId::new(0),
        )
        .unwrap();
        assert_ne!(one, two);
    }

    #[test]
    fn cumulative_sampler_matches_weight_proportions() {
        // Binary-searched steps hit edges in weight proportion (loose
        // statistical bound on a 3:1 split).
        let mut b = GraphBuilder::new();
        b.add_weighted_edge(NodeId::new(0), NodeId::new(1), 3.0);
        b.add_weighted_edge(NodeId::new(0), NodeId::new(2), 1.0);
        b.add_weighted_edge(NodeId::new(1), NodeId::new(0), 1.0);
        b.add_weighted_edge(NodeId::new(2), NodeId::new(0), 1.0);
        let g = b.build();
        let cfg = MonteCarloConfig { walks: 60_000, ..Default::default() };
        let s = ppr_monte_carlo(g.view(), &cfg, NodeId::new(0)).unwrap();
        let ratio = s.get(NodeId::new(1)) / s.get(NodeId::new(2));
        assert!((2.0..4.0).contains(&ratio), "3:1 weights, got ratio {ratio}");
    }

    #[test]
    fn unreachable_nodes_score_zero() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 0), (2, 0)]);
        let s = ppr_monte_carlo(g.view(), &MonteCarloConfig::default(), NodeId::new(0)).unwrap();
        assert_eq!(s.get(NodeId::new(2)), 0.0);
    }

    #[test]
    fn dangling_restart_keeps_walks_near_seed() {
        // 0 -> 1, 1 dangles: all mass stays on {0, 1}.
        let g = GraphBuilder::from_edge_indices([(0, 1)]);
        let s = ppr_monte_carlo(g.view(), &MonteCarloConfig::default(), NodeId::new(0)).unwrap();
        assert!((s.get(NodeId::new(0)) + s.get(NodeId::new(1)) - 1.0).abs() < 1e-12);
        assert!(s.get(NodeId::new(0)) > 0.0);
        assert!(s.get(NodeId::new(1)) > 0.0);
    }

    #[test]
    fn weighted_walks_follow_heavy_edges() {
        let mut b = GraphBuilder::new();
        b.add_weighted_edge(NodeId::new(0), NodeId::new(1), 99.0);
        b.add_weighted_edge(NodeId::new(0), NodeId::new(2), 1.0);
        b.add_weighted_edge(NodeId::new(1), NodeId::new(0), 1.0);
        b.add_weighted_edge(NodeId::new(2), NodeId::new(0), 1.0);
        let g = b.build();
        let cfg = MonteCarloConfig { walks: 50_000, ..Default::default() };
        let s = ppr_monte_carlo(g.view(), &cfg, NodeId::new(0)).unwrap();
        assert!(s.get(NodeId::new(1)) > 10.0 * s.get(NodeId::new(2)));
    }

    #[test]
    fn invalid_inputs() {
        let g = GraphBuilder::from_edge_indices([(0, 1)]);
        let cfg = MonteCarloConfig { walks: 0, ..Default::default() };
        assert!(ppr_monte_carlo(g.view(), &cfg, NodeId::new(0)).is_err());
        let cfg = MonteCarloConfig { damping: 0.0, ..Default::default() };
        assert!(ppr_monte_carlo(g.view(), &cfg, NodeId::new(0)).is_err());
        assert!(ppr_monte_carlo(g.view(), &MonteCarloConfig::default(), NodeId::new(9)).is_err());
    }
}
