//! Score vectors and ranked result lists.
//!
//! Score-producing algorithms (PageRank family, CycleRank) return a
//! [`ScoreVector`]; ranking-only algorithms (2DRank) return a [`RankedList`]
//! directly. A `ScoreVector` converts into a `RankedList` by sorting scores
//! descending with node-index tie-breaking, which makes every algorithm's
//! output comparable through the metrics in [`crate::compare`].

use relgraph::{DirectedGraph, NodeId};
use serde::{Deserialize, Serialize};

/// A dense per-node score assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoreVector {
    values: Vec<f64>,
}

impl ScoreVector {
    /// Wraps a dense score vector (index = node id).
    pub fn new(values: Vec<f64>) -> Self {
        ScoreVector { values }
    }

    /// All-zero scores for `n` nodes.
    pub fn zeros(n: usize) -> Self {
        ScoreVector { values: vec![0.0; n] }
    }

    /// Number of nodes scored.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no nodes are scored.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Score of `u`.
    #[inline]
    pub fn get(&self, u: NodeId) -> f64 {
        self.values[u.index()]
    }

    /// Mutable score of `u`.
    #[inline]
    pub fn get_mut(&mut self, u: NodeId) -> &mut f64 {
        &mut self.values[u.index()]
    }

    /// Raw slice view.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Consumes into the raw vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.values
    }

    /// Sum of all scores.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// L1-normalizes in place so scores sum to 1 (no-op on an all-zero
    /// vector).
    pub fn normalize(&mut self) {
        let s = self.sum();
        if s > 0.0 {
            for v in &mut self.values {
                *v /= s;
            }
        }
    }

    /// Node with the maximum score (ties broken by lowest index); `None`
    /// for an empty vector.
    pub fn argmax(&self) -> Option<NodeId> {
        let mut best: Option<(usize, f64)> = None;
        for (i, &v) in self.values.iter().enumerate() {
            match best {
                Some((_, bv)) if v <= bv => {}
                _ => best = Some((i, v)),
            }
        }
        best.map(|(i, _)| NodeId::from_usize(i))
    }

    /// Top-`k` nodes by score (descending, ties by ascending node id).
    ///
    /// Pruned heap-select: O(n log k) time, O(k) scratch (see
    /// [`top_k_pairs`]).
    pub fn top_k(&self, k: usize) -> Vec<(NodeId, f64)> {
        top_k_pairs(&self.values, k)
    }

    /// Full ranking of all nodes (descending score, ascending id ties).
    pub fn ranking(&self) -> RankedList {
        let pairs = self.top_k(self.values.len());
        RankedList::new(pairs.into_iter().map(|(n, _)| n).collect())
    }

    /// Top-`k` as `(label, score)` pairs using the graph's label table.
    pub fn top_k_labeled(&self, g: &DirectedGraph, k: usize) -> Vec<(String, f64)> {
        self.top_k(k).into_iter().map(|(n, s)| (g.display_name(n), s)).collect()
    }
}

/// Top-`k` `(node, score)` pairs of a raw dense score slice — descending
/// score, ties by ascending node id; the heap-select core behind
/// [`ScoreVector::top_k`], exposed so the solver's top-k serving path can
/// rank directly out of an arena buffer without materializing a
/// `ScoreVector`.
///
/// Pruned heap-select: one pass over `values` maintaining a `k`-entry
/// heap whose root is the weakest kept candidate, so most elements are
/// rejected with a single comparison — O(n log k) worst case, O(n)
/// typical, and only O(k) scratch (no O(n) index vector), which keeps the
/// arena-backed top-k solve path allocation-free in `n`.
pub fn top_k_pairs(values: &[f64], k: usize) -> Vec<(NodeId, f64)> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = values.len();
    let k = k.min(n);
    if k == 0 {
        return Vec::new();
    }
    // Rank key: smaller = better (descending score, ascending id). The
    // max-heap root is therefore the weakest of the kept candidates.
    let mut heap: BinaryHeap<(Reverse<OrderedF64>, u32)> = BinaryHeap::with_capacity(k + 1);
    for (i, &v) in values.iter().enumerate() {
        let key = (Reverse(ordered(v)), i as u32);
        if heap.len() < k {
            heap.push(key);
        } else if key < *heap.peek().expect("heap holds k > 0 entries") {
            heap.pop();
            heap.push(key);
        }
    }
    heap.into_sorted_vec()
        .into_iter()
        .map(|(Reverse(OrderedF64(v)), i)| (NodeId::new(i), v))
        .collect()
}

/// Total order over f64 (via `total_cmp`); scores produced by the
/// algorithms are never NaN, this is belt-and-braces for sorting.
#[inline]
fn ordered(v: f64) -> OrderedF64 {
    OrderedF64(v)
}

#[derive(PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// An ordered list of nodes, most relevant first.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankedList {
    order: Vec<NodeId>,
}

impl RankedList {
    /// Wraps an explicit ordering.
    pub fn new(order: Vec<NodeId>) -> Self {
        RankedList { order }
    }

    /// Number of ranked nodes.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The ranked node ids, best first.
    pub fn as_slice(&self) -> &[NodeId] {
        &self.order
    }

    /// First `k` entries.
    pub fn top_k(&self, k: usize) -> &[NodeId] {
        &self.order[..k.min(self.order.len())]
    }

    /// 0-based position of each node: `positions()[u] = rank of u`, or
    /// `u32::MAX` for unranked nodes. `n` is the total node count.
    pub fn positions(&self, n: usize) -> Vec<u32> {
        let mut pos = vec![u32::MAX; n];
        for (rank, u) in self.order.iter().enumerate() {
            pos[u.index()] = rank as u32;
        }
        pos
    }

    /// 0-based rank of `u` in this list, if present.
    pub fn rank_of(&self, u: NodeId) -> Option<usize> {
        self.order.iter().position(|&x| x == u)
    }

    /// Labels of the first `k` entries.
    pub fn top_k_labeled(&self, g: &DirectedGraph, k: usize) -> Vec<String> {
        self.top_k(k).iter().map(|&n| g.display_name(n)).collect()
    }

    /// Consumes into the underlying vector.
    pub fn into_vec(self) -> Vec<NodeId> {
        self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgraph::GraphBuilder;

    #[test]
    fn top_k_descending_with_ties() {
        let s = ScoreVector::new(vec![0.3, 0.9, 0.3, 0.5]);
        let top = s.top_k(4);
        let ids: Vec<u32> = top.iter().map(|(n, _)| n.raw()).collect();
        assert_eq!(ids, vec![1, 3, 0, 2]); // ties 0,2 broken by index
        assert_eq!(top[0].1, 0.9);
    }

    #[test]
    fn top_k_truncates() {
        let s = ScoreVector::new(vec![0.1, 0.2, 0.3]);
        assert_eq!(s.top_k(2).len(), 2);
        assert_eq!(s.top_k(0).len(), 0);
        assert_eq!(s.top_k(10).len(), 3);
    }

    #[test]
    fn top_k_partial_sort_matches_full_sort() {
        // Deterministic pseudo-random scores.
        let mut x = 123456789u64;
        let scores: Vec<f64> = (0..500)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect();
        let s = ScoreVector::new(scores.clone());
        let top10 = s.top_k(10);
        let mut full: Vec<(u32, f64)> =
            scores.iter().copied().enumerate().map(|(i, v)| (i as u32, v)).collect();
        full.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        for (got, want) in top10.iter().zip(full.iter()) {
            assert_eq!(got.0.raw(), want.0);
            assert_eq!(got.1, want.1);
        }
    }

    #[test]
    fn normalize_sums_to_one() {
        let mut s = ScoreVector::new(vec![1.0, 3.0]);
        s.normalize();
        assert!((s.sum() - 1.0).abs() < 1e-12);
        assert_eq!(s.get(NodeId::new(1)), 0.75);
    }

    #[test]
    fn normalize_zero_vector_noop() {
        let mut s = ScoreVector::zeros(3);
        s.normalize();
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    fn argmax() {
        let s = ScoreVector::new(vec![0.1, 0.5, 0.5]);
        assert_eq!(s.argmax(), Some(NodeId::new(1))); // tie -> lowest index
        assert_eq!(ScoreVector::zeros(0).argmax(), None);
    }

    #[test]
    fn ranking_positions() {
        let s = ScoreVector::new(vec![0.2, 0.9, 0.5]);
        let r = s.ranking();
        assert_eq!(r.as_slice(), &[NodeId::new(1), NodeId::new(2), NodeId::new(0)]);
        let pos = r.positions(3);
        assert_eq!(pos, vec![2, 0, 1]);
        assert_eq!(r.rank_of(NodeId::new(2)), Some(1));
    }

    #[test]
    fn labeled_output() {
        let mut b = GraphBuilder::new();
        b.add_labeled_edge("A", "B");
        let g = b.build();
        let s = ScoreVector::new(vec![0.2, 0.8]);
        let labeled = s.top_k_labeled(&g, 2);
        assert_eq!(labeled[0].0, "B");
        let rl = s.ranking();
        assert_eq!(rl.top_k_labeled(&g, 1), vec!["B".to_string()]);
    }

    #[test]
    fn get_mut_updates() {
        let mut s = ScoreVector::zeros(2);
        *s.get_mut(NodeId::new(1)) += 2.5;
        assert_eq!(s.get(NodeId::new(1)), 2.5);
    }
}
