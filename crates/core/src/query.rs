//! The fluent [`Query`] builder: the single entry point for running any
//! registered relevance algorithm.
//!
//! ```
//! use relcore::Query;
//! use relgraph::GraphBuilder;
//!
//! let mut b = GraphBuilder::new();
//! b.add_labeled_edge("Pasta", "Italy");
//! b.add_labeled_edge("Italy", "Pasta");
//! b.add_labeled_edge("Pasta", "United States");
//! let g = b.build();
//!
//! let result = Query::on(g)
//!     .algorithm("cyclerank")
//!     .reference("Pasta")
//!     .k(3)
//!     .top(2)
//!     .run()
//!     .unwrap();
//! assert_eq!(result.top_entries()[0].0, "Pasta");
//! assert_eq!(result.top_entries()[1].0, "Italy");
//! ```
//!
//! A query targets either an in-memory graph or a *named dataset*. Named
//! datasets resolve through a pluggable [`install_dataset_resolver`] hook
//! so this crate stays independent of the dataset registry; linking
//! `reldata` (or running inside the engine) installs the hook.

use crate::error::AlgoError;
use crate::registry::AlgorithmRegistry;
use crate::result::{RankedList, ScoreVector};
use crate::runner::{Algorithm, AlgorithmParams, RelevanceOutput, Solver};
use crate::scoring::ScoringFunction;
use relgraph::{DirectedGraph, NodeId};
use std::fmt;
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

// -------------------------------------------------------- dataset resolving

type Resolver = dyn Fn(&str) -> Option<Arc<DirectedGraph>> + Send + Sync;

fn resolvers() -> &'static RwLock<Vec<Box<Resolver>>> {
    static RESOLVERS: std::sync::OnceLock<RwLock<Vec<Box<Resolver>>>> = std::sync::OnceLock::new();
    RESOLVERS.get_or_init(|| RwLock::new(Vec::new()))
}

/// Installs a named-dataset resolver consulted (most recent first) by
/// [`Query::run`] when the target is a dataset id. `reldata` installs the
/// 50-dataset registry through this hook; uploads and caches can stack
/// their own.
pub fn install_dataset_resolver(
    f: impl Fn(&str) -> Option<Arc<DirectedGraph>> + Send + Sync + 'static,
) {
    resolvers().write().unwrap_or_else(|e| e.into_inner()).push(Box::new(f));
}

fn resolve_dataset(id: &str) -> Result<Arc<DirectedGraph>, QueryError> {
    let resolvers = resolvers().read().unwrap_or_else(|e| e.into_inner());
    if resolvers.is_empty() {
        return Err(QueryError::NoDatasetResolver(id.to_string()));
    }
    for resolver in resolvers.iter().rev() {
        if let Some(g) = resolver(id) {
            return Ok(g);
        }
    }
    Err(QueryError::UnknownDataset(id.to_string()))
}

// ----------------------------------------------------------------- inputs

/// What a query runs on.
#[derive(Clone)]
pub enum QueryTarget {
    /// An in-memory graph.
    Graph(Arc<DirectedGraph>),
    /// A named dataset, resolved at [`Query::run`] time.
    Dataset(String),
}

impl From<&str> for QueryTarget {
    fn from(id: &str) -> Self {
        QueryTarget::Dataset(id.to_string())
    }
}

impl From<String> for QueryTarget {
    fn from(id: String) -> Self {
        QueryTarget::Dataset(id)
    }
}

impl From<DirectedGraph> for QueryTarget {
    fn from(g: DirectedGraph) -> Self {
        QueryTarget::Graph(Arc::new(g))
    }
}

impl From<Arc<DirectedGraph>> for QueryTarget {
    fn from(g: Arc<DirectedGraph>) -> Self {
        QueryTarget::Graph(g)
    }
}

impl From<&Arc<DirectedGraph>> for QueryTarget {
    fn from(g: &Arc<DirectedGraph>) -> Self {
        QueryTarget::Graph(Arc::clone(g))
    }
}

impl From<&DirectedGraph> for QueryTarget {
    /// Clones the graph; prefer `Arc<DirectedGraph>` for repeated queries
    /// on large graphs.
    fn from(g: &DirectedGraph) -> Self {
        QueryTarget::Graph(Arc::new(g.clone()))
    }
}

/// How the reference node is specified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReferenceSpec {
    /// By label, with numeric-index fallback for unlabeled graphs.
    Label(String),
    /// By node id.
    Node(NodeId),
}

impl From<&str> for ReferenceSpec {
    fn from(label: &str) -> Self {
        ReferenceSpec::Label(label.to_string())
    }
}

impl From<String> for ReferenceSpec {
    fn from(label: String) -> Self {
        ReferenceSpec::Label(label)
    }
}

impl From<NodeId> for ReferenceSpec {
    fn from(node: NodeId) -> Self {
        ReferenceSpec::Node(node)
    }
}

/// How the algorithm is selected: by registry name or legacy enum.
pub struct AlgorithmSel(String);

impl From<&str> for AlgorithmSel {
    fn from(name: &str) -> Self {
        AlgorithmSel(name.to_string())
    }
}

impl From<String> for AlgorithmSel {
    fn from(name: String) -> Self {
        AlgorithmSel(name)
    }
}

impl From<Algorithm> for AlgorithmSel {
    fn from(algo: Algorithm) -> Self {
        AlgorithmSel(algo.id().to_string())
    }
}

// ----------------------------------------------------------------- errors

/// Errors surfaced by [`Query::run`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The algorithm name resolved to nothing in the registry.
    UnknownAlgorithm(String),
    /// The dataset id resolved to nothing.
    UnknownDataset(String),
    /// A dataset id was given but no resolver is installed (link `reldata`
    /// or run through the engine).
    NoDatasetResolver(String),
    /// The reference did not match a node label or index.
    UnknownReference(String),
    /// A personalized algorithm was queried without a reference.
    MissingReference(String),
    /// The algorithm itself failed (bad parameters, empty graph, ...).
    Algorithm(AlgoError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownAlgorithm(name) => {
                write!(f, "unknown algorithm {name:?} (see AlgorithmRegistry::global().list())")
            }
            QueryError::UnknownDataset(id) => write!(f, "unknown dataset {id:?}"),
            QueryError::NoDatasetResolver(id) => write!(
                f,
                "cannot resolve dataset {id:?}: no dataset resolver installed \
                 (call reldata::connect_query_api(), touch the dataset catalog, \
                 build an engine, or pass a graph to Query::on)"
            ),
            QueryError::UnknownReference(r) => {
                write!(f, "no node labeled {r:?} (and not a valid node index)")
            }
            QueryError::MissingReference(algo) => {
                write!(f, "algorithm {algo:?} is personalized and needs .reference(...)")
            }
            QueryError::Algorithm(e) => write!(f, "algorithm error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<AlgoError> for QueryError {
    fn from(e: AlgoError) -> Self {
        QueryError::Algorithm(e)
    }
}

// ------------------------------------------------------------------ Query

/// A fluent, registry-backed algorithm invocation.
///
/// Built with [`Query::on`], configured with chained setters, executed
/// with [`Query::run`]. Every consumer in the workspace — engine executor,
/// HTTP routes, CLI, bench harness — funnels through this type, so a newly
/// registered algorithm is immediately available everywhere.
pub struct Query {
    target: QueryTarget,
    algorithm: String,
    params: AlgorithmParams,
    reference: Option<ReferenceSpec>,
    top: usize,
}

impl Query {
    /// Starts a query on a graph or named dataset.
    pub fn on(target: impl Into<QueryTarget>) -> Self {
        Query {
            target: target.into(),
            algorithm: "pagerank".to_string(),
            params: AlgorithmParams::new(Algorithm::PageRank),
            reference: None,
            top: 100,
        }
    }

    /// Selects the algorithm by registry id, alias, or legacy enum.
    pub fn algorithm(mut self, algo: impl Into<AlgorithmSel>) -> Self {
        self.algorithm = algo.into().0;
        // Keep the legacy enum tag in sync when the id maps to a built-in,
        // so conversions to engine task specs stay lossless.
        if let Ok(a) = self.algorithm.parse::<Algorithm>() {
            self.params.algorithm = a;
        }
        self
    }

    /// Replaces the whole parameter payload (the task JSON shape).
    pub fn params(mut self, params: AlgorithmParams) -> Self {
        self.algorithm = params.algorithm.id().to_string();
        self.params = params;
        self
    }

    /// Sets the damping factor α (PageRank family).
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.params.damping = alpha;
        self
    }

    /// Sets the maximum cycle length K (CycleRank).
    pub fn k(mut self, k: u32) -> Self {
        self.params.max_cycle_len = k;
        self
    }

    /// Sets the scoring function σ (CycleRank).
    pub fn scoring(mut self, scoring: ScoringFunction) -> Self {
        self.params.scoring = scoring;
        self
    }

    /// Sets the PageRank-family solver.
    pub fn solver(mut self, solver: Solver) -> Self {
        self.params.solver = solver;
        self
    }

    /// Sets the kernel update scheme (the exact subset of [`Solver`]:
    /// power, Gauss–Seidel, or chunked parallel pull).
    pub fn scheme(mut self, scheme: crate::solver::Scheme) -> Self {
        self.params.solver = scheme.into();
        self
    }

    /// Sets the worker-thread count for the parallel scheme (0 = all
    /// available cores; clamped to available parallelism and node count).
    pub fn threads(mut self, threads: usize) -> Self {
        self.params.threads = threads;
        self
    }

    /// Requests a per-iteration residual trace
    /// ([`crate::solver::ConvergenceTrace`]) in the result.
    pub fn trace(mut self, yes: bool) -> Self {
        self.params.record_trace = yes;
        self
    }

    /// Sets the power-iteration tolerance.
    pub fn tolerance(mut self, tolerance: f64) -> Self {
        self.params.tolerance = tolerance;
        self
    }

    /// Sets the power-iteration cap.
    pub fn max_iterations(mut self, n: usize) -> Self {
        self.params.max_iterations = n;
        self
    }

    /// Sets the reference node (label, with numeric fallback, or node id).
    pub fn reference(mut self, r: impl Into<ReferenceSpec>) -> Self {
        self.reference = Some(r.into());
        self
    }

    /// How many top entries [`QueryResult::top_entries`] returns
    /// (default 100).
    pub fn top(mut self, n: usize) -> Self {
        self.top = n;
        self
    }

    // ------------------------------------------------------------- access

    /// The target (dataset id or graph).
    pub fn target(&self) -> &QueryTarget {
        &self.target
    }

    /// The selected algorithm name (as given; resolved at run time).
    pub fn algorithm_name(&self) -> &str {
        &self.algorithm
    }

    /// The parameter payload.
    pub fn params_ref(&self) -> &AlgorithmParams {
        &self.params
    }

    /// The reference spec, if set.
    pub fn reference_ref(&self) -> Option<&ReferenceSpec> {
        self.reference.as_ref()
    }

    /// The configured top-k.
    pub fn top_k(&self) -> usize {
        self.top
    }

    // ---------------------------------------------------------------- run

    /// Resolves the algorithm, dataset, and reference, validates
    /// parameters, and executes.
    pub fn run(self) -> Result<QueryResult, QueryError> {
        self.run_with(AlgorithmRegistry::global())
    }

    /// Like [`Query::run`], against an explicit registry (tests, embedders
    /// with private registries).
    pub fn run_with(self, registry: &AlgorithmRegistry) -> Result<QueryResult, QueryError> {
        let algo = registry
            .get(&self.algorithm)
            .ok_or_else(|| QueryError::UnknownAlgorithm(self.algorithm.clone()))?;

        let graph = match &self.target {
            QueryTarget::Graph(g) => Arc::clone(g),
            QueryTarget::Dataset(id) => resolve_dataset(id)?,
        };

        let reference = match &self.reference {
            None => None,
            Some(ReferenceSpec::Node(n)) => Some(*n),
            Some(ReferenceSpec::Label(l)) => Some(
                resolve_reference(&graph, l)
                    .ok_or_else(|| QueryError::UnknownReference(l.clone()))?,
            ),
        };
        if algo.is_personalized() && reference.is_none() {
            return Err(QueryError::MissingReference(algo.id().to_string()));
        }

        algo.validate(&self.params)?;
        let started = Instant::now();
        let output = algo.execute(&graph, &self.params, reference)?;
        let runtime = started.elapsed();

        Ok(QueryResult {
            algorithm: algo.id().to_string(),
            parameters: algo.summarize(&self.params),
            output,
            graph,
            reference,
            runtime,
            top: self.top,
        })
    }
}

/// Resolves a reference string to a node: by label first, then — for
/// unlabeled datasets such as bare edge-list uploads — as a numeric node
/// index. Labels win when both could apply.
pub fn resolve_reference(graph: &DirectedGraph, reference: &str) -> Option<NodeId> {
    if let Some(n) = graph.node_by_label(reference) {
        return Some(n);
    }
    let idx: u32 = reference.parse().ok()?;
    ((idx as usize) < graph.node_count()).then_some(NodeId::new(idx))
}

// ----------------------------------------------------------------- result

/// The outcome of one [`Query::run`].
pub struct QueryResult {
    /// Resolved algorithm id (e.g. `cyclerank`).
    pub algorithm: String,
    /// Human-readable parameter summary (e.g. `k = 3, σ = exp`).
    pub parameters: String,
    /// The raw algorithm output (ranking, scores, diagnostics).
    pub output: RelevanceOutput,
    /// The graph the query ran on.
    pub graph: Arc<DirectedGraph>,
    /// The resolved reference node, for personalized runs.
    pub reference: Option<NodeId>,
    /// Wall-clock execution time (excludes dataset resolution).
    pub runtime: Duration,
    top: usize,
}

impl fmt::Debug for QueryResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueryResult")
            .field("algorithm", &self.algorithm)
            .field("parameters", &self.parameters)
            .field("nodes", &self.graph.node_count())
            .field("reference", &self.reference)
            .field("runtime", &self.runtime)
            .finish_non_exhaustive()
    }
}

impl QueryResult {
    /// Top entries as `(label, score)` pairs, at most the configured
    /// `.top(n)` (ranking-only algorithms report scores of 0).
    pub fn top_entries(&self) -> Vec<(String, f64)> {
        self.output.top_k_labeled(&self.graph, self.top)
    }

    /// Per-node scores, when the algorithm produces them.
    pub fn scores(&self) -> Option<&ScoreVector> {
        self.output.scores.as_ref()
    }

    /// The full ranking, most relevant first.
    pub fn ranking(&self) -> &RankedList {
        &self.output.ranking
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgraph::GraphBuilder;

    fn sample() -> DirectedGraph {
        GraphBuilder::from_edge_indices([(0, 1), (1, 0), (1, 2), (2, 1), (2, 0), (0, 2), (3, 0)])
    }

    #[test]
    fn query_runs_every_builtin() {
        let g = Arc::new(sample());
        for algo in Algorithm::ALL {
            let result =
                Query::on(&g).algorithm(algo).reference(NodeId::new(0)).top(3).run().unwrap();
            assert_eq!(result.algorithm, algo.id());
            assert_eq!(result.output.ranking.len(), g.node_count());
            assert_eq!(result.scores().is_some(), algo.produces_scores());
            assert_eq!(result.top_entries().len(), 3);
        }
    }

    #[test]
    fn personalized_without_reference_fails_fast() {
        let result = Query::on(sample()).algorithm("cyclerank").run();
        assert!(matches!(result, Err(QueryError::MissingReference(id)) if id == "cyclerank"));
    }

    #[test]
    fn unknown_algorithm_and_reference_error() {
        assert!(matches!(
            Query::on(sample()).algorithm("zerank").run(),
            Err(QueryError::UnknownAlgorithm(_))
        ));
        assert!(matches!(
            Query::on(sample()).algorithm("cyclerank").reference("nope").run(),
            Err(QueryError::UnknownReference(_))
        ));
    }

    #[test]
    fn numeric_reference_fallback() {
        let result =
            Query::on(sample()).algorithm("cyclerank").reference("2").top(2).run().unwrap();
        assert_eq!(result.reference, Some(NodeId::new(2)));
        // Out-of-range indices are rejected.
        assert!(matches!(
            Query::on(sample()).algorithm("cyclerank").reference("99").run(),
            Err(QueryError::UnknownReference(_))
        ));
    }

    #[test]
    fn parameter_validation_fails_fast() {
        assert!(matches!(
            Query::on(sample()).algorithm("pagerank").alpha(1.5).run(),
            Err(QueryError::Algorithm(AlgoError::InvalidDamping(_)))
        ));
        assert!(matches!(
            Query::on(sample()).algorithm("cyclerank").reference(NodeId::new(0)).k(1).run(),
            Err(QueryError::Algorithm(AlgoError::InvalidMaxCycleLength(1)))
        ));
    }

    #[test]
    fn named_dataset_without_resolver_reports_clearly() {
        // Dataset resolution is exercised end-to-end in reldata/relengine;
        // relcore alone reports an actionable error for unknown ids. (A
        // resolver may already be installed by another test binary linking
        // reldata, so accept either error shape.)
        let err = Query::on("no-such-dataset-id").run().unwrap_err();
        assert!(matches!(err, QueryError::NoDatasetResolver(_) | QueryError::UnknownDataset(_)));
    }

    #[test]
    fn summary_and_runtime_populated() {
        let result = Query::on(sample())
            .algorithm("cyclerank")
            .reference(NodeId::new(0))
            .k(4)
            .run()
            .unwrap();
        assert_eq!(result.parameters, "k = 4, σ = exp");
        assert!(result.output.cycles_found.unwrap() > 0);
    }
}
