//! The fluent [`Query`] builder: the single entry point for running any
//! registered relevance algorithm.
//!
//! ```
//! use relcore::Query;
//! use relgraph::GraphBuilder;
//!
//! let mut b = GraphBuilder::new();
//! b.add_labeled_edge("Pasta", "Italy");
//! b.add_labeled_edge("Italy", "Pasta");
//! b.add_labeled_edge("Pasta", "United States");
//! let g = b.build();
//!
//! let result = Query::on(g)
//!     .algorithm("cyclerank")
//!     .reference("Pasta")
//!     .k(3)
//!     .top(2)
//!     .run()
//!     .unwrap();
//! assert_eq!(result.top_entries()[0].0, "Pasta");
//! assert_eq!(result.top_entries()[1].0, "Italy");
//! ```
//!
//! A query targets either an in-memory graph or a *named dataset*. Named
//! datasets resolve through a pluggable [`install_dataset_resolver`] hook
//! so this crate stays independent of the dataset registry; linking
//! `reldata` (or running inside the engine) installs the hook.

use crate::error::AlgoError;
use crate::registry::AlgorithmRegistry;
use crate::result::{RankedList, ScoreVector};
use crate::runner::{Algorithm, AlgorithmParams, RelevanceOutput, Solver};
use crate::scoring::ScoringFunction;
use relgraph::{DirectedGraph, NodeId};
use std::fmt;
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

// -------------------------------------------------------- dataset resolving

type Resolver = dyn Fn(&str) -> Option<Arc<DirectedGraph>> + Send + Sync;

fn resolvers() -> &'static RwLock<Vec<Box<Resolver>>> {
    static RESOLVERS: std::sync::OnceLock<RwLock<Vec<Box<Resolver>>>> = std::sync::OnceLock::new();
    RESOLVERS.get_or_init(|| RwLock::new(Vec::new()))
}

/// Installs a named-dataset resolver consulted (most recent first) by
/// [`Query::run`] when the target is a dataset id. `reldata` installs the
/// 50-dataset registry through this hook; uploads and caches can stack
/// their own.
pub fn install_dataset_resolver(
    f: impl Fn(&str) -> Option<Arc<DirectedGraph>> + Send + Sync + 'static,
) {
    resolvers().write().unwrap_or_else(|e| e.into_inner()).push(Box::new(f));
}

fn resolve_dataset(id: &str) -> Result<Arc<DirectedGraph>, QueryError> {
    let resolvers = resolvers().read().unwrap_or_else(|e| e.into_inner());
    if resolvers.is_empty() {
        return Err(QueryError::NoDatasetResolver(id.to_string()));
    }
    for resolver in resolvers.iter().rev() {
        if let Some(g) = resolver(id) {
            return Ok(g);
        }
    }
    Err(QueryError::UnknownDataset(id.to_string()))
}

// ----------------------------------------------------------------- inputs

/// What a query runs on.
#[derive(Clone)]
pub enum QueryTarget {
    /// An in-memory graph.
    Graph(Arc<DirectedGraph>),
    /// A named dataset, resolved at [`Query::run`] time.
    Dataset(String),
}

impl From<&str> for QueryTarget {
    fn from(id: &str) -> Self {
        QueryTarget::Dataset(id.to_string())
    }
}

impl From<String> for QueryTarget {
    fn from(id: String) -> Self {
        QueryTarget::Dataset(id)
    }
}

impl From<DirectedGraph> for QueryTarget {
    fn from(g: DirectedGraph) -> Self {
        QueryTarget::Graph(Arc::new(g))
    }
}

impl From<Arc<DirectedGraph>> for QueryTarget {
    fn from(g: Arc<DirectedGraph>) -> Self {
        QueryTarget::Graph(g)
    }
}

impl From<&Arc<DirectedGraph>> for QueryTarget {
    fn from(g: &Arc<DirectedGraph>) -> Self {
        QueryTarget::Graph(Arc::clone(g))
    }
}

impl From<&DirectedGraph> for QueryTarget {
    /// Clones the graph; prefer `Arc<DirectedGraph>` for repeated queries
    /// on large graphs.
    fn from(g: &DirectedGraph) -> Self {
        QueryTarget::Graph(Arc::new(g.clone()))
    }
}

/// How the reference node is specified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReferenceSpec {
    /// By label, with numeric-index fallback for unlabeled graphs.
    Label(String),
    /// By node id.
    Node(NodeId),
}

impl From<&str> for ReferenceSpec {
    fn from(label: &str) -> Self {
        ReferenceSpec::Label(label.to_string())
    }
}

impl From<String> for ReferenceSpec {
    fn from(label: String) -> Self {
        ReferenceSpec::Label(label)
    }
}

impl From<NodeId> for ReferenceSpec {
    fn from(node: NodeId) -> Self {
        ReferenceSpec::Node(node)
    }
}

/// How the algorithm is selected: by registry name or legacy enum.
pub struct AlgorithmSel(String);

impl From<&str> for AlgorithmSel {
    fn from(name: &str) -> Self {
        AlgorithmSel(name.to_string())
    }
}

impl From<String> for AlgorithmSel {
    fn from(name: String) -> Self {
        AlgorithmSel(name)
    }
}

impl From<Algorithm> for AlgorithmSel {
    fn from(algo: Algorithm) -> Self {
        AlgorithmSel(algo.id().to_string())
    }
}

// ----------------------------------------------------------------- errors

/// Errors surfaced by [`Query::run`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The algorithm name resolved to nothing in the registry.
    UnknownAlgorithm(String),
    /// The dataset id resolved to nothing.
    UnknownDataset(String),
    /// A dataset id was given but no resolver is installed (link `reldata`
    /// or run through the engine).
    NoDatasetResolver(String),
    /// The reference did not match a node label or index.
    UnknownReference(String),
    /// A personalized algorithm was queried without a reference.
    MissingReference(String),
    /// A batch run ([`Query::run_batch`]) was requested for a global
    /// algorithm (batches are per-seed by construction) or without seeds.
    NotBatchable(String),
    /// The algorithm itself failed (bad parameters, empty graph, ...).
    Algorithm(AlgoError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownAlgorithm(name) => {
                write!(f, "unknown algorithm {name:?} (see AlgorithmRegistry::global().list())")
            }
            QueryError::UnknownDataset(id) => write!(f, "unknown dataset {id:?}"),
            QueryError::NoDatasetResolver(id) => write!(
                f,
                "cannot resolve dataset {id:?}: no dataset resolver installed \
                 (call reldata::connect_query_api(), touch the dataset catalog, \
                 build an engine, or pass a graph to Query::on)"
            ),
            QueryError::UnknownReference(r) => {
                write!(f, "no node labeled {r:?} (and not a valid node index)")
            }
            QueryError::MissingReference(algo) => {
                write!(f, "algorithm {algo:?} is personalized and needs .reference(...)")
            }
            QueryError::NotBatchable(msg) => write!(f, "batch query rejected: {msg}"),
            QueryError::Algorithm(e) => write!(f, "algorithm error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<AlgoError> for QueryError {
    fn from(e: AlgoError) -> Self {
        QueryError::Algorithm(e)
    }
}

// ------------------------------------------------------------------ Query

/// A fluent, registry-backed algorithm invocation.
///
/// Built with [`Query::on`], configured with chained setters, executed
/// with [`Query::run`]. Every consumer in the workspace — engine executor,
/// HTTP routes, CLI, bench harness — funnels through this type, so a newly
/// registered algorithm is immediately available everywhere.
pub struct Query {
    target: QueryTarget,
    algorithm: String,
    params: AlgorithmParams,
    reference: Option<ReferenceSpec>,
    seeds: Vec<ReferenceSpec>,
    top: usize,
    warm_start: Option<Arc<ScoreVector>>,
}

impl Query {
    /// Starts a query on a graph or named dataset.
    pub fn on(target: impl Into<QueryTarget>) -> Self {
        Query {
            target: target.into(),
            algorithm: "pagerank".to_string(),
            params: AlgorithmParams::new(Algorithm::PageRank),
            reference: None,
            seeds: Vec::new(),
            top: 100,
            warm_start: None,
        }
    }

    /// Selects the algorithm by registry id, alias, or legacy enum.
    pub fn algorithm(mut self, algo: impl Into<AlgorithmSel>) -> Self {
        self.algorithm = algo.into().0;
        // Keep the legacy enum tag in sync when the id maps to a built-in,
        // so conversions to engine task specs stay lossless.
        if let Ok(a) = self.algorithm.parse::<Algorithm>() {
            self.params.algorithm = a;
        }
        self
    }

    /// Replaces the whole parameter payload (the task JSON shape).
    pub fn params(mut self, params: AlgorithmParams) -> Self {
        self.algorithm = params.algorithm.id().to_string();
        self.params = params;
        self
    }

    /// Sets the damping factor α (PageRank family).
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.params.damping = alpha;
        self
    }

    /// Sets the maximum cycle length K (CycleRank).
    pub fn k(mut self, k: u32) -> Self {
        self.params.max_cycle_len = k;
        self
    }

    /// Sets the scoring function σ (CycleRank).
    pub fn scoring(mut self, scoring: ScoringFunction) -> Self {
        self.params.scoring = scoring;
        self
    }

    /// Sets the PageRank-family solver.
    pub fn solver(mut self, solver: Solver) -> Self {
        self.params.solver = solver;
        self
    }

    /// Sets the kernel update scheme (the exact subset of [`Solver`]:
    /// power, Gauss–Seidel, or chunked parallel pull).
    pub fn scheme(mut self, scheme: crate::solver::Scheme) -> Self {
        self.params.solver = scheme.into();
        self
    }

    /// Sets the worker-thread count for the parallel scheme (0 = all
    /// available cores; clamped to available parallelism and node count).
    pub fn threads(mut self, threads: usize) -> Self {
        self.params.threads = threads;
        self
    }

    /// Sets the score-lane precision for the exact kernel schemes:
    /// [`Precision::F64`](crate::solver::Precision::F64) (the default,
    /// bitwise-reproducible) or
    /// [`Precision::F32`](crate::solver::Precision::F32) (half the solver
    /// memory traffic, results within the documented tolerance of f64).
    /// Approximate solvers and CycleRank ignore it.
    pub fn precision(mut self, precision: crate::solver::Precision) -> Self {
        self.params.precision = precision;
        self
    }

    /// Requests a per-iteration residual trace
    /// ([`crate::solver::ConvergenceTrace`]) in the result.
    pub fn trace(mut self, yes: bool) -> Self {
        self.params.record_trace = yes;
        self
    }

    /// Sets the power-iteration tolerance.
    pub fn tolerance(mut self, tolerance: f64) -> Self {
        self.params.tolerance = tolerance;
        self
    }

    /// Sets the power-iteration cap.
    pub fn max_iterations(mut self, n: usize) -> Self {
        self.params.max_iterations = n;
        self
    }

    /// Sets the reference node (label, with numeric fallback, or node id).
    pub fn reference(mut self, r: impl Into<ReferenceSpec>) -> Self {
        self.reference = Some(r.into());
        self
    }

    /// Sets the seed (reference) nodes of a batch query, one per requested
    /// personalization; executed with [`Query::run_batch`]. The
    /// stationary-distribution algorithms solve all seeds in one
    /// multi-vector sweep over the graph.
    pub fn seeds<S: Into<ReferenceSpec>>(mut self, seeds: impl IntoIterator<Item = S>) -> Self {
        self.seeds = seeds.into_iter().map(Into::into).collect();
        self
    }

    /// How many top entries [`QueryResult::top_entries`] returns
    /// (default 100). The algorithm still computes the full ranking; use
    /// [`Query::top_k`] when only the top-k is needed at all.
    pub fn top(mut self, n: usize) -> Self {
        self.top = n;
        self
    }

    /// Requests a **top-k-only** query: the stationary-distribution
    /// algorithms skip the full-rank result path entirely — exact sweeps
    /// rank through a pruned heap-select straight out of the solver arena
    /// (zero `O(n)` result allocations), and personalized runs (PPR,
    /// Pers. CheiRank) first try certified adaptive forward push
    /// ([`crate::topk`]), which touches only the seed's neighbourhood and
    /// falls back to the exact kernel when rank k and k+1 cannot be
    /// separated. The returned node set always equals the full run's
    /// top-k; on the push path, scores (and the order within the set) are
    /// estimate-accurate within the certified residual mass.
    ///
    /// [`QueryResult::scores`] is `None` in this mode; consume
    /// [`QueryResult::top_entries`] / [`QueryResult::ranking`] instead.
    /// Algorithms without a score vector to prune (CycleRank, 2DRank)
    /// treat this exactly like [`Query::top`].
    pub fn top_k(mut self, k: usize) -> Self {
        self.params.top_k = Some(k);
        self.top = k;
        self
    }

    /// Seeds the solve from a previous score vector (**warm start**):
    /// the iterative kernel starts at `prev` instead of the teleport
    /// distribution, so when `prev` is the fixed point of a similar query
    /// — the same query before a few edge mutations, a neighbouring seed —
    /// convergence takes a fraction of the cold sweep count.
    ///
    /// Warm starting is an execution strategy, not a semantic change: the
    /// solve converges to the same fixed point within the configured
    /// tolerance regardless of `prev`. Algorithms without an iterate to
    /// seed (CycleRank, 2DRank, the approximate push/Monte-Carlo solvers)
    /// ignore it. The vector's length must match the graph's node count.
    /// For **single-edge** mutations, the residual-push refresh
    /// ([`crate::topk::refresh_ppr`]) is cheaper still.
    pub fn warm_start(mut self, prev: impl Into<Arc<ScoreVector>>) -> Self {
        self.warm_start = Some(prev.into());
        self
    }

    // ------------------------------------------------------------- access

    /// The target (dataset id or graph).
    pub fn target(&self) -> &QueryTarget {
        &self.target
    }

    /// The selected algorithm name (as given; resolved at run time).
    pub fn algorithm_name(&self) -> &str {
        &self.algorithm
    }

    /// The parameter payload.
    pub fn params_ref(&self) -> &AlgorithmParams {
        &self.params
    }

    /// The reference spec, if set.
    pub fn reference_ref(&self) -> Option<&ReferenceSpec> {
        self.reference.as_ref()
    }

    /// The batch seed specs (empty for single-shot queries).
    pub fn seeds_ref(&self) -> &[ReferenceSpec] {
        &self.seeds
    }

    /// The configured display limit ([`Query::top`] / [`Query::top_k`]).
    pub fn top_limit(&self) -> usize {
        self.top
    }

    // ---------------------------------------------------------------- run

    /// Resolves the algorithm, dataset, and reference, validates
    /// parameters, and executes.
    pub fn run(self) -> Result<QueryResult, QueryError> {
        self.run_with(AlgorithmRegistry::global())
    }

    /// Like [`Query::run`], against an explicit registry (tests, embedders
    /// with private registries).
    pub fn run_with(self, registry: &AlgorithmRegistry) -> Result<QueryResult, QueryError> {
        let algo = registry
            .get(&self.algorithm)
            .ok_or_else(|| QueryError::UnknownAlgorithm(self.algorithm.clone()))?;

        let graph = match &self.target {
            QueryTarget::Graph(g) => Arc::clone(g),
            QueryTarget::Dataset(id) => resolve_dataset(id)?,
        };

        let reference = match &self.reference {
            None => None,
            Some(ReferenceSpec::Node(n)) => Some(*n),
            Some(ReferenceSpec::Label(l)) => Some(
                resolve_reference(&graph, l)
                    .ok_or_else(|| QueryError::UnknownReference(l.clone()))?,
            ),
        };
        if algo.is_personalized() && reference.is_none() {
            return Err(QueryError::MissingReference(algo.id().to_string()));
        }

        algo.validate(&self.params)?;
        let started = Instant::now();
        let output = match &self.warm_start {
            Some(prev) => algo.execute_warm(&graph, &self.params, reference, prev.as_slice())?,
            None => algo.execute(&graph, &self.params, reference)?,
        };
        let runtime = started.elapsed();

        Ok(QueryResult {
            algorithm: algo.id().to_string(),
            parameters: algo.summarize(&self.params),
            output,
            graph,
            reference,
            runtime,
            top: self.top,
        })
    }

    /// Executes the query once per seed ([`Query::seeds`]), batched: the
    /// stationary-distribution algorithms propagate every seed's score
    /// vector in one multi-vector sweep over the edge arrays, so the
    /// amortized per-seed cost is far below [`Query::run`] in a loop — the
    /// request-serving path for high-QPS personalization. Outputs are
    /// bitwise identical to per-seed sequential runs.
    pub fn run_batch(self) -> Result<BatchResult, QueryError> {
        self.run_batch_with(AlgorithmRegistry::global())
    }

    /// Like [`Query::run_batch`], against an explicit registry.
    pub fn run_batch_with(self, registry: &AlgorithmRegistry) -> Result<BatchResult, QueryError> {
        let algo = registry
            .get(&self.algorithm)
            .ok_or_else(|| QueryError::UnknownAlgorithm(self.algorithm.clone()))?;
        if !algo.is_personalized() {
            return Err(QueryError::NotBatchable(format!(
                "algorithm {:?} is global; batch queries personalize per seed",
                algo.id()
            )));
        }
        if self.seeds.is_empty() {
            return Err(QueryError::NotBatchable(format!(
                "no seeds given; call .seeds([...]) before running {:?} batched",
                algo.id()
            )));
        }

        let graph = match &self.target {
            QueryTarget::Graph(g) => Arc::clone(g),
            QueryTarget::Dataset(id) => resolve_dataset(id)?,
        };
        let seeds = self
            .seeds
            .iter()
            .map(|spec| match spec {
                ReferenceSpec::Node(n) => Ok(*n),
                ReferenceSpec::Label(l) => resolve_reference(&graph, l)
                    .ok_or_else(|| QueryError::UnknownReference(l.clone())),
            })
            .collect::<Result<Vec<NodeId>, QueryError>>()?;

        algo.validate(&self.params)?;
        let started = Instant::now();
        let outputs = algo.execute_batch(&graph, &self.params, &seeds)?;
        let runtime = started.elapsed();

        Ok(BatchResult {
            algorithm: algo.id().to_string(),
            parameters: algo.summarize(&self.params),
            outputs,
            graph,
            seeds,
            runtime,
            top: self.top,
        })
    }
}

/// Resolves a reference string to a node: by label first, then — for
/// unlabeled datasets such as bare edge-list uploads — as a numeric node
/// index. Labels win when both could apply.
///
/// The numeric fallback only binds to an **unlabeled** node: a node that
/// carries a (different) label must be addressed by that label. This is
/// what keeps raw-index references meaningful on datasets that were
/// reordered for cache locality at load time (`DatasetSpec::reorder`):
/// there, every originally-unlabeled node is labeled with its original
/// index (so the label branch resolves it to the same conceptual node as
/// before), while an index that used to denote a *labeled* node would
/// now silently land on whatever node the permutation put at that id —
/// rejecting it loudly beats computing plausible scores for the wrong
/// seed.
pub fn resolve_reference(graph: &DirectedGraph, reference: &str) -> Option<NodeId> {
    if let Some(n) = graph.node_by_label(reference) {
        return Some(n);
    }
    let idx: u32 = reference.parse().ok()?;
    let node = NodeId::new(idx);
    ((idx as usize) < graph.node_count() && graph.labels().get(node).is_none()).then_some(node)
}

// ----------------------------------------------------------------- result

/// The outcome of one [`Query::run`].
pub struct QueryResult {
    /// Resolved algorithm id (e.g. `cyclerank`).
    pub algorithm: String,
    /// Human-readable parameter summary (e.g. `k = 3, σ = exp`).
    pub parameters: String,
    /// The raw algorithm output (ranking, scores, diagnostics).
    pub output: RelevanceOutput,
    /// The graph the query ran on.
    pub graph: Arc<DirectedGraph>,
    /// The resolved reference node, for personalized runs.
    pub reference: Option<NodeId>,
    /// Wall-clock execution time (excludes dataset resolution).
    pub runtime: Duration,
    top: usize,
}

impl fmt::Debug for QueryResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueryResult")
            .field("algorithm", &self.algorithm)
            .field("parameters", &self.parameters)
            .field("nodes", &self.graph.node_count())
            .field("reference", &self.reference)
            .field("runtime", &self.runtime)
            .finish_non_exhaustive()
    }
}

impl QueryResult {
    /// Top entries as `(label, score)` pairs, at most the configured
    /// `.top(n)` (ranking-only algorithms report scores of 0).
    pub fn top_entries(&self) -> Vec<(String, f64)> {
        self.output.top_k_labeled(&self.graph, self.top)
    }

    /// Per-node scores, when the algorithm produces them.
    pub fn scores(&self) -> Option<&ScoreVector> {
        self.output.scores.as_ref()
    }

    /// The full ranking, most relevant first.
    pub fn ranking(&self) -> &RankedList {
        &self.output.ranking
    }
}

/// The outcome of one [`Query::run_batch`]: one [`RelevanceOutput`] per
/// seed, in seed order, plus the shared graph and the wall-clock time of
/// the whole batch.
pub struct BatchResult {
    /// Resolved algorithm id (e.g. `ppr`).
    pub algorithm: String,
    /// Human-readable parameter summary (e.g. `α = 0.85`).
    pub parameters: String,
    /// Per-seed outputs, in the order the seeds were given.
    pub outputs: Vec<RelevanceOutput>,
    /// The graph the batch ran on.
    pub graph: Arc<DirectedGraph>,
    /// The resolved seed nodes, in input order.
    pub seeds: Vec<NodeId>,
    /// Wall-clock time of the whole batch (excludes dataset resolution).
    pub runtime: Duration,
    top: usize,
}

impl fmt::Debug for BatchResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BatchResult")
            .field("algorithm", &self.algorithm)
            .field("seeds", &self.seeds.len())
            .field("nodes", &self.graph.node_count())
            .field("runtime", &self.runtime)
            .finish_non_exhaustive()
    }
}

impl BatchResult {
    /// Number of seeds solved.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// True when the batch had no seeds (never for a successful
    /// [`Query::run_batch`], which rejects empty seed sets).
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }

    /// Iterates `(seed, output)` pairs in seed order.
    pub fn per_seed(&self) -> impl Iterator<Item = (NodeId, &RelevanceOutput)> {
        self.seeds.iter().copied().zip(self.outputs.iter())
    }

    /// Top entries of seed `i` as `(label, score)` pairs, at most the
    /// configured `.top(n)`.
    pub fn top_entries(&self, i: usize) -> Vec<(String, f64)> {
        self.outputs[i].top_k_labeled(&self.graph, self.top)
    }

    /// Amortized wall-clock time per seed.
    pub fn runtime_per_seed(&self) -> Duration {
        self.runtime / self.outputs.len().max(1) as u32
    }

    /// Splits the batch into per-seed [`QueryResult`]s (sharing the graph
    /// `Arc`); `runtime` on each is the amortized per-seed time.
    pub fn into_results(self) -> Vec<QueryResult> {
        let per_seed = self.runtime_per_seed();
        self.seeds
            .into_iter()
            .zip(self.outputs)
            .map(|(seed, output)| QueryResult {
                algorithm: self.algorithm.clone(),
                parameters: self.parameters.clone(),
                output,
                graph: Arc::clone(&self.graph),
                reference: Some(seed),
                runtime: per_seed,
                top: self.top,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgraph::GraphBuilder;

    fn sample() -> DirectedGraph {
        GraphBuilder::from_edge_indices([(0, 1), (1, 0), (1, 2), (2, 1), (2, 0), (0, 2), (3, 0)])
    }

    #[test]
    fn query_runs_every_builtin() {
        let g = Arc::new(sample());
        for algo in Algorithm::ALL {
            let result =
                Query::on(&g).algorithm(algo).reference(NodeId::new(0)).top(3).run().unwrap();
            assert_eq!(result.algorithm, algo.id());
            assert_eq!(result.output.ranking.len(), g.node_count());
            assert_eq!(result.scores().is_some(), algo.produces_scores());
            assert_eq!(result.top_entries().len(), 3);
        }
    }

    #[test]
    fn personalized_without_reference_fails_fast() {
        let result = Query::on(sample()).algorithm("cyclerank").run();
        assert!(matches!(result, Err(QueryError::MissingReference(id)) if id == "cyclerank"));
    }

    #[test]
    fn unknown_algorithm_and_reference_error() {
        assert!(matches!(
            Query::on(sample()).algorithm("zerank").run(),
            Err(QueryError::UnknownAlgorithm(_))
        ));
        assert!(matches!(
            Query::on(sample()).algorithm("cyclerank").reference("nope").run(),
            Err(QueryError::UnknownReference(_))
        ));
    }

    #[test]
    fn numeric_reference_fallback() {
        let result =
            Query::on(sample()).algorithm("cyclerank").reference("2").top(2).run().unwrap();
        assert_eq!(result.reference, Some(NodeId::new(2)));
        // Out-of-range indices are rejected.
        assert!(matches!(
            Query::on(sample()).algorithm("cyclerank").reference("99").run(),
            Err(QueryError::UnknownReference(_))
        ));
    }

    #[test]
    fn numeric_fallback_never_binds_to_a_differently_labeled_node() {
        // Node 1 carries a real label: addressing it as "1" is rejected
        // (on reordered datasets that index would denote a different
        // conceptual node), while unlabeled node 2 still resolves by
        // index and the label itself always works.
        let mut g = sample();
        g.labels_mut().set(NodeId::new(1), "Hub");
        let g = Arc::new(g);
        assert!(matches!(
            Query::on(&g).algorithm("cyclerank").reference("1").run(),
            Err(QueryError::UnknownReference(_))
        ));
        let by_label = Query::on(&g).algorithm("cyclerank").reference("Hub").run().unwrap();
        assert_eq!(by_label.reference, Some(NodeId::new(1)));
        let by_index = Query::on(&g).algorithm("cyclerank").reference("2").run().unwrap();
        assert_eq!(by_index.reference, Some(NodeId::new(2)));
    }

    #[test]
    fn parameter_validation_fails_fast() {
        assert!(matches!(
            Query::on(sample()).algorithm("pagerank").alpha(1.5).run(),
            Err(QueryError::Algorithm(AlgoError::InvalidDamping(_)))
        ));
        assert!(matches!(
            Query::on(sample()).algorithm("cyclerank").reference(NodeId::new(0)).k(1).run(),
            Err(QueryError::Algorithm(AlgoError::InvalidMaxCycleLength(1)))
        ));
    }

    #[test]
    fn named_dataset_without_resolver_reports_clearly() {
        // Dataset resolution is exercised end-to-end in reldata/relengine;
        // relcore alone reports an actionable error for unknown ids. (A
        // resolver may already be installed by another test binary linking
        // reldata, so accept either error shape.)
        let err = Query::on("no-such-dataset-id").run().unwrap_err();
        assert!(matches!(err, QueryError::NoDatasetResolver(_) | QueryError::UnknownDataset(_)));
    }

    #[test]
    fn batch_query_matches_sequential_runs() {
        let g = Arc::new(sample());
        for algo in ["ppr", "pcheirank"] {
            let batch = Query::on(&g)
                .algorithm(algo)
                .seeds([NodeId::new(0), NodeId::new(2), NodeId::new(3)])
                .top(3)
                .run_batch()
                .unwrap();
            assert_eq!(batch.len(), 3);
            assert_eq!(batch.algorithm, algo);
            for (i, seed) in [0u32, 2, 3].into_iter().enumerate() {
                let single = Query::on(&g)
                    .algorithm(algo)
                    .reference(NodeId::new(seed))
                    .top(3)
                    .run()
                    .unwrap();
                assert_eq!(
                    single.scores().unwrap().as_slice(),
                    batch.outputs[i].scores.as_ref().unwrap().as_slice(),
                    "{algo} seed {seed}"
                );
                assert_eq!(single.top_entries(), batch.top_entries(i));
            }
            let results = Query::on(&g)
                .algorithm(algo)
                .seeds([NodeId::new(0), NodeId::new(2), NodeId::new(3)])
                .top(3)
                .run_batch()
                .unwrap()
                .into_results();
            assert_eq!(results.len(), 3);
            assert_eq!(results[1].reference, Some(NodeId::new(2)));
        }
    }

    #[test]
    fn batch_query_label_seeds_and_fallback_algorithms() {
        // Label seeds resolve like .reference(); cyclerank has no fused
        // batch and falls back to the sequential default.
        let mut b = GraphBuilder::new();
        b.add_labeled_edge("A", "B");
        b.add_labeled_edge("B", "A");
        b.add_labeled_edge("B", "C");
        b.add_labeled_edge("C", "B");
        let g = Arc::new(b.build());
        let batch =
            Query::on(&g).algorithm("cyclerank").seeds(["A", "C"]).top(2).run_batch().unwrap();
        assert_eq!(batch.top_entries(0)[0].0, "A");
        // Seed "C": the C↔B 2-cycle scores both equally; ties break by
        // node index, so assert membership rather than order.
        let top: Vec<String> = batch.top_entries(1).into_iter().map(|(l, _)| l).collect();
        assert!(top.contains(&"C".to_string()) && top.contains(&"B".to_string()), "{top:?}");
        assert!(batch.per_seed().count() == 2 && !batch.is_empty());
    }

    #[test]
    fn batch_query_rejections() {
        let g = Arc::new(sample());
        // Global algorithms are not batchable.
        assert!(matches!(
            Query::on(&g).algorithm("pagerank").seeds([NodeId::new(0)]).run_batch(),
            Err(QueryError::NotBatchable(_))
        ));
        // Empty seed sets are rejected.
        assert!(matches!(
            Query::on(&g).algorithm("ppr").run_batch(),
            Err(QueryError::NotBatchable(_))
        ));
        // Unknown seed labels fail like unknown references.
        assert!(matches!(
            Query::on(&g).algorithm("ppr").seeds(["nope"]).run_batch(),
            Err(QueryError::UnknownReference(_))
        ));
        // Parameter validation still applies.
        assert!(matches!(
            Query::on(&g).algorithm("ppr").alpha(1.5).seeds([NodeId::new(0)]).run_batch(),
            Err(QueryError::Algorithm(AlgoError::InvalidDamping(_)))
        ));
    }

    #[test]
    fn summary_and_runtime_populated() {
        let result = Query::on(sample())
            .algorithm("cyclerank")
            .reference(NodeId::new(0))
            .k(4)
            .run()
            .unwrap();
        assert_eq!(result.parameters, "k = 4, σ = exp");
        assert!(result.output.cycles_found.unwrap() > 0);
    }
}
