//! Cycle scoring functions σ(n).
//!
//! CycleRank weights each cycle by a function of its length `n`:
//! `CR_{r,K}(i) = Σ_{n=2..K} σ(n) · c_{r,n}(i)`. Short cycles represent a
//! stronger relationship, so σ must be non-increasing in `n`. The demo paper
//! uses the exponential damping `σ(n) = e^{−n}` (found experimentally best
//! on Wikipedia); the CycleRank journal paper also evaluates the inverse
//! (`1/n`), quadratic-inverse (`1/n²`) and constant variants, which we
//! provide for the ablation benchmarks.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The cycle-length weighting function σ(n) of CycleRank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ScoringFunction {
    /// σ(n) = e^(−n) — the paper's default ("exp").
    #[default]
    Exponential,
    /// σ(n) = 1/n ("lin").
    Inverse,
    /// σ(n) = 1/n² ("quad").
    QuadraticInverse,
    /// σ(n) = 1 — raw cycle counting ("const").
    Constant,
}

impl ScoringFunction {
    /// Evaluates σ at cycle length `n` (n ≥ 2 for any real cycle).
    #[inline]
    pub fn weight(self, n: u32) -> f64 {
        let nf = n as f64;
        match self {
            ScoringFunction::Exponential => (-nf).exp(),
            ScoringFunction::Inverse => 1.0 / nf,
            ScoringFunction::QuadraticInverse => 1.0 / (nf * nf),
            ScoringFunction::Constant => 1.0,
        }
    }

    /// Short identifier as used in the demo UI (`exp`, `lin`, `quad`,
    /// `const`).
    pub fn short_name(self) -> &'static str {
        match self {
            ScoringFunction::Exponential => "exp",
            ScoringFunction::Inverse => "lin",
            ScoringFunction::QuadraticInverse => "quad",
            ScoringFunction::Constant => "const",
        }
    }

    /// All variants, for sweeps.
    pub const ALL: [ScoringFunction; 4] = [
        ScoringFunction::Exponential,
        ScoringFunction::Inverse,
        ScoringFunction::QuadraticInverse,
        ScoringFunction::Constant,
    ];
}

impl fmt::Display for ScoringFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

impl FromStr for ScoringFunction {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "exp" | "exponential" => Ok(ScoringFunction::Exponential),
            "lin" | "inverse" | "1/n" => Ok(ScoringFunction::Inverse),
            "quad" | "quadratic" | "1/n2" | "1/n^2" => Ok(ScoringFunction::QuadraticInverse),
            "const" | "constant" | "1" => Ok(ScoringFunction::Constant),
            other => {
                Err(format!("unknown scoring function {other:?} (expected exp|lin|quad|const)"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_values() {
        let s = ScoringFunction::Exponential;
        assert!((s.weight(2) - (-2.0f64).exp()).abs() < 1e-15);
        assert!((s.weight(3) - (-3.0f64).exp()).abs() < 1e-15);
    }

    #[test]
    fn all_nonincreasing_in_n() {
        for s in ScoringFunction::ALL {
            for n in 2..10 {
                assert!(s.weight(n) >= s.weight(n + 1), "{s} must be non-increasing");
            }
        }
    }

    #[test]
    fn all_positive() {
        for s in ScoringFunction::ALL {
            for n in 2..20 {
                assert!(s.weight(n) > 0.0);
            }
        }
    }

    #[test]
    fn inverse_and_quadratic() {
        assert_eq!(ScoringFunction::Inverse.weight(4), 0.25);
        assert_eq!(ScoringFunction::QuadraticInverse.weight(4), 1.0 / 16.0);
        assert_eq!(ScoringFunction::Constant.weight(7), 1.0);
    }

    #[test]
    fn parse_roundtrip() {
        for s in ScoringFunction::ALL {
            let parsed: ScoringFunction = s.short_name().parse().unwrap();
            assert_eq!(parsed, s);
        }
        assert!("bogus".parse::<ScoringFunction>().is_err());
    }

    #[test]
    fn parse_aliases() {
        assert_eq!("Exponential".parse::<ScoringFunction>().unwrap(), ScoringFunction::Exponential);
        assert_eq!("1/n".parse::<ScoringFunction>().unwrap(), ScoringFunction::Inverse);
        assert_eq!("1/n^2".parse::<ScoringFunction>().unwrap(), ScoringFunction::QuadraticInverse);
    }

    #[test]
    fn default_is_exponential() {
        assert_eq!(ScoringFunction::default(), ScoringFunction::Exponential);
    }

    #[test]
    fn display_matches_short_name() {
        assert_eq!(ScoringFunction::Exponential.to_string(), "exp");
    }
}
