//! 2DRank: the two-dimensional PageRank × CheiRank ranking.
//!
//! Zhirov, Zhirov & Shepelyansky (2010) combine the PageRank rank index
//! `K(i)` and the CheiRank rank index `K*(i)` of each node into a single
//! ordering. As the paper notes, **2DRank produces a ranking, not a score**:
//! it sweeps a growing square over the (K, K*) plane and appends nodes in
//! the order they enter the square.
//!
//! Concretely, with 1-based rank indices, node `i` enters the square at side
//! length `k(i) = max(K(i), K*(i))`. Nodes are emitted by increasing `k`;
//! within one `k`, following Zhirov et al., nodes on the horizontal side
//! (`K*(i) = k`, `K(i) < k`) come first ordered by `K`, then the corner /
//! vertical side (`K(i) = k`) ordered by `K*`. Equivalently: sort by
//! `(max(K, K*), K* == k ? 0 : 1, min(K, K*))` — deterministic given the two
//! input rankings.
//!
//! The personalized variant applies the same sweep to Personalized PageRank
//! and Personalized CheiRank rankings for a reference node.

use crate::error::AlgoError;
use crate::pagerank::{pagerank, PageRankConfig};
use crate::ppr::personalized_pagerank;
use crate::result::{RankedList, ScoreVector};
use relgraph::{DirectedGraph, NodeId};

/// Combines two rankings with the 2DRank square sweep.
///
/// `pr_rank` and `chei_rank` are 0-based positions per node (as produced by
/// [`RankedList::positions`]); both must cover the same node count.
pub fn two_d_rank_from_positions(pr_rank: &[u32], chei_rank: &[u32]) -> RankedList {
    debug_assert_eq!(pr_rank.len(), chei_rank.len());
    let n = pr_rank.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&i| {
        let k = pr_rank[i as usize];
        let ks = chei_rank[i as usize];
        let side = k.max(ks);
        // Horizontal side (CheiRank attains the max) first, then vertical.
        let on_vertical = u8::from(k >= ks);
        (side, on_vertical, k.min(ks), i)
    });
    RankedList::new(order.into_iter().map(NodeId::new).collect())
}

/// Global 2DRank from PageRank and CheiRank scores.
pub fn two_d_rank(g: &DirectedGraph, cfg: &PageRankConfig) -> Result<RankedList, AlgoError> {
    let (pr, _) = pagerank(g.view(), cfg)?;
    let (chei, _) = pagerank(g.transposed(), cfg)?;
    Ok(combine(g.node_count(), &pr, &chei))
}

/// Personalized 2DRank: combines Personalized PageRank and Personalized
/// CheiRank for `reference`.
pub fn personalized_two_d_rank(
    g: &DirectedGraph,
    cfg: &PageRankConfig,
    reference: NodeId,
) -> Result<RankedList, AlgoError> {
    let (pr, _) = personalized_pagerank(g.view(), cfg, reference)?;
    let (chei, _) = personalized_pagerank(g.transposed(), cfg, reference)?;
    Ok(combine(g.node_count(), &pr, &chei))
}

fn combine(n: usize, pr: &ScoreVector, chei: &ScoreVector) -> RankedList {
    let pr_pos = pr.ranking().positions(n);
    let chei_pos = chei.ranking().positions(n);
    two_d_rank_from_positions(&pr_pos, &chei_pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgraph::GraphBuilder;

    #[test]
    fn sweep_orders_by_square_entry() {
        // Node: 0 1 2 3
        // K   : 0 1 2 3   (PageRank positions)
        // K*  : 3 2 1 0   (CheiRank positions)
        // max : 3 2 2 3
        // Order: side 2 first {1, 2}, then side 3 {0, 3}.
        // Within side 2: node 1 (K=1 < K*=2 → horizontal) before node 2 (vertical).
        // Within side 3: node 0 (K*=3 attains max → horizontal) before node 3.
        let r = two_d_rank_from_positions(&[0, 1, 2, 3], &[3, 2, 1, 0]);
        let ids: Vec<u32> = r.as_slice().iter().map(|n| n.raw()).collect();
        assert_eq!(ids, vec![1, 2, 0, 3]);
    }

    #[test]
    fn identical_rankings_passthrough() {
        let pos = [2u32, 0, 1];
        let r = two_d_rank_from_positions(&pos, &pos);
        let ids: Vec<u32> = r.as_slice().iter().map(|n| n.raw()).collect();
        assert_eq!(ids, vec![1, 2, 0]);
    }

    #[test]
    fn ranking_is_permutation() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 2), (2, 0), (0, 3), (3, 0)]);
        let r = two_d_rank(&g, &PageRankConfig::default()).unwrap();
        let mut ids: Vec<u32> = r.as_slice().iter().map(|n| n.raw()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn balanced_node_wins() {
        // Node 0: both receives from and links to everyone (balanced).
        // Nodes 1..=4: in a ring, each also linked with 0 both ways.
        let mut b = GraphBuilder::new();
        for i in 1..=4 {
            b.add_edge_indices(0, i);
            b.add_edge_indices(i, 0);
            b.add_edge_indices(i, (i % 4) + 1);
        }
        let g = b.build();
        let r = two_d_rank(&g, &PageRankConfig::default()).unwrap();
        assert_eq!(r.as_slice()[0], NodeId::new(0));
    }

    #[test]
    fn personalized_puts_reference_first() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)]);
        // Restart-heavy walk (low α): both PPR and personalized CheiRank put
        // the reference first, so the square sweep must too. (With α = 0.85
        // a central neighbor can legitimately outrank the reference.)
        let cfg = PageRankConfig::with_damping(0.3);
        for refn in 0..4u32 {
            let r = personalized_two_d_rank(&g, &cfg, NodeId::new(refn)).unwrap();
            assert_eq!(r.as_slice()[0], NodeId::new(refn), "reference {refn} should rank first");
        }
    }

    #[test]
    fn personalized_invalid_reference() {
        let g = GraphBuilder::from_edge_indices([(0, 1)]);
        assert!(personalized_two_d_rank(&g, &PageRankConfig::default(), NodeId::new(5)).is_err());
    }

    #[test]
    fn empty_positions() {
        let r = two_d_rank_from_positions(&[], &[]);
        assert!(r.is_empty());
    }
}
