//! 2DRank: the two-dimensional PageRank × CheiRank ranking.
//!
//! Zhirov, Zhirov & Shepelyansky (2010) combine the PageRank rank index
//! `K(i)` and the CheiRank rank index `K*(i)` of each node into a single
//! ordering. As the paper notes, **2DRank produces a ranking, not a score**:
//! it sweeps a growing square over the (K, K*) plane and appends nodes in
//! the order they enter the square.
//!
//! Concretely, with 1-based rank indices, node `i` enters the square at side
//! length `k(i) = max(K(i), K*(i))`. Nodes are emitted by increasing `k`;
//! within one `k`, following Zhirov et al., nodes on the horizontal side
//! (`K*(i) = k`, `K(i) < k`) come first ordered by `K`, then the corner /
//! vertical side (`K(i) = k`) ordered by `K*`. Equivalently: sort by
//! `(max(K, K*), K* == k ? 0 : 1, min(K, K*))` — deterministic given the two
//! input rankings.
//!
//! The personalized variant applies the same sweep to Personalized PageRank
//! and Personalized CheiRank rankings for a reference node.

use crate::error::AlgoError;
use crate::pagerank::{pagerank, PageRankConfig};
use crate::ppr::{personalized_pagerank, TeleportVector};
use crate::result::{RankedList, ScoreVector};
use crate::solver::{SolverConfig, SweepKernel};
use relgraph::{DirectedGraph, NodeId};

/// Combines two rankings with the 2DRank square sweep.
///
/// `pr_rank` and `chei_rank` are 0-based positions per node (as produced by
/// [`RankedList::positions`]); both must cover the same node count.
pub fn two_d_rank_from_positions(pr_rank: &[u32], chei_rank: &[u32]) -> RankedList {
    debug_assert_eq!(pr_rank.len(), chei_rank.len());
    let n = pr_rank.len();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&i| {
        let k = pr_rank[i as usize];
        let ks = chei_rank[i as usize];
        let side = k.max(ks);
        // Horizontal side (CheiRank attains the max) first, then vertical.
        let on_vertical = u8::from(k >= ks);
        (side, on_vertical, k.min(ks), i)
    });
    RankedList::new(order.into_iter().map(NodeId::new).collect())
}

/// Global 2DRank from PageRank and CheiRank scores.
pub fn two_d_rank(g: &DirectedGraph, cfg: &PageRankConfig) -> Result<RankedList, AlgoError> {
    let (pr, _) = pagerank(g.view(), cfg)?;
    let (chei, _) = pagerank(g.transposed(), cfg)?;
    Ok(combine(g.node_count(), &pr, &chei))
}

/// Personalized 2DRank: combines Personalized PageRank and Personalized
/// CheiRank for `reference`.
pub fn personalized_two_d_rank(
    g: &DirectedGraph,
    cfg: &PageRankConfig,
    reference: NodeId,
) -> Result<RankedList, AlgoError> {
    let (pr, _) = personalized_pagerank(g.view(), cfg, reference)?;
    let (chei, _) = personalized_pagerank(g.transposed(), cfg, reference)?;
    Ok(combine(g.node_count(), &pr, &chei))
}

/// Outcome of [`two_d_rank_with`]: the combined ranking plus the solver
/// diagnostics of the two underlying kernel sweeps.
#[derive(Debug, Clone)]
pub struct TwoDRankOutcome {
    /// The square-sweep combined ranking.
    pub ranking: RankedList,
    /// Diagnostics of the *binding* sweep — the one that failed to
    /// converge, or needed the most iterations (largest final residual on
    /// a tie) — except that `converged` requires both sweeps. Consistent
    /// with `trace`: when tracing, `trace.last() == Some(residual)`.
    pub convergence: crate::pagerank::Convergence,
    /// Residual trace of the binding sweep, when the config requested
    /// tracing.
    pub trace: Option<crate::solver::ConvergenceTrace>,
}

/// 2DRank under an explicit solver configuration: the shared
/// [`SweepKernel`] sweeps both view orientations with the chosen scheme
/// and thread count, and the two rankings are combined with the square
/// sweep. `reference` selects the personalized variant.
pub fn two_d_rank_with(
    g: &DirectedGraph,
    cfg: &SolverConfig,
    reference: Option<NodeId>,
) -> Result<TwoDRankOutcome, AlgoError> {
    let teleport = TeleportVector::for_reference(g.node_count(), reference)?;
    let pr = SweepKernel::new(g.view())?.solve(cfg, &teleport)?;
    let chei = SweepKernel::new(g.transposed())?.solve(cfg, &teleport)?;
    let ranking = combine(g.node_count(), &pr.scores, &chei.scores);
    // Pick the binding sweep wholesale (not field-wise maxima), so the
    // reported residual always matches the reported trace's last entry.
    let (pc, cc) = (pr.convergence, chei.convergence);
    let pr_binds =
        (!pc.converged, pc.iterations, pc.residual) >= (!cc.converged, cc.iterations, cc.residual);
    let binding = if pr_binds { pc } else { cc };
    let convergence =
        crate::pagerank::Convergence { converged: pc.converged && cc.converged, ..binding };
    let trace = if pr_binds { pr.trace } else { chei.trace };
    Ok(TwoDRankOutcome { ranking, convergence, trace })
}

fn combine(n: usize, pr: &ScoreVector, chei: &ScoreVector) -> RankedList {
    let pr_pos = pr.ranking().positions(n);
    let chei_pos = chei.ranking().positions(n);
    two_d_rank_from_positions(&pr_pos, &chei_pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgraph::GraphBuilder;

    #[test]
    fn sweep_orders_by_square_entry() {
        // Node: 0 1 2 3
        // K   : 0 1 2 3   (PageRank positions)
        // K*  : 3 2 1 0   (CheiRank positions)
        // max : 3 2 2 3
        // Order: side 2 first {1, 2}, then side 3 {0, 3}.
        // Within side 2: node 1 (K=1 < K*=2 → horizontal) before node 2 (vertical).
        // Within side 3: node 0 (K*=3 attains max → horizontal) before node 3.
        let r = two_d_rank_from_positions(&[0, 1, 2, 3], &[3, 2, 1, 0]);
        let ids: Vec<u32> = r.as_slice().iter().map(|n| n.raw()).collect();
        assert_eq!(ids, vec![1, 2, 0, 3]);
    }

    #[test]
    fn identical_rankings_passthrough() {
        let pos = [2u32, 0, 1];
        let r = two_d_rank_from_positions(&pos, &pos);
        let ids: Vec<u32> = r.as_slice().iter().map(|n| n.raw()).collect();
        assert_eq!(ids, vec![1, 2, 0]);
    }

    #[test]
    fn ranking_is_permutation() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 2), (2, 0), (0, 3), (3, 0)]);
        let r = two_d_rank(&g, &PageRankConfig::default()).unwrap();
        let mut ids: Vec<u32> = r.as_slice().iter().map(|n| n.raw()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn balanced_node_wins() {
        // Node 0: both receives from and links to everyone (balanced).
        // Nodes 1..=4: in a ring, each also linked with 0 both ways.
        let mut b = GraphBuilder::new();
        for i in 1..=4 {
            b.add_edge_indices(0, i);
            b.add_edge_indices(i, 0);
            b.add_edge_indices(i, (i % 4) + 1);
        }
        let g = b.build();
        let r = two_d_rank(&g, &PageRankConfig::default()).unwrap();
        assert_eq!(r.as_slice()[0], NodeId::new(0));
    }

    #[test]
    fn personalized_puts_reference_first() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)]);
        // Restart-heavy walk (low α): both PPR and personalized CheiRank put
        // the reference first, so the square sweep must too. (With α = 0.85
        // a central neighbor can legitimately outrank the reference.)
        let cfg = PageRankConfig::with_damping(0.3);
        for refn in 0..4u32 {
            let r = personalized_two_d_rank(&g, &cfg, NodeId::new(refn)).unwrap();
            assert_eq!(r.as_slice()[0], NodeId::new(refn), "reference {refn} should rank first");
        }
    }

    #[test]
    fn schemes_agree_on_two_d_rank() {
        use crate::solver::Scheme;
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 2), (2, 0), (0, 3), (3, 0), (2, 1)]);
        let tight = SolverConfig { tolerance: 1e-12, ..Default::default() };
        let base = two_d_rank_with(&g, &tight.with_scheme(Scheme::Power), None).unwrap();
        assert!(base.convergence.converged);
        for scheme in [Scheme::GaussSeidel, Scheme::Parallel] {
            let r = two_d_rank_with(&g, &tight.with_scheme(scheme), None).unwrap();
            assert_eq!(r.ranking, base.ranking, "{scheme} ranking diverges");
        }
        // The default-config path is the same computation.
        let legacy = two_d_rank(&g, &PageRankConfig::default()).unwrap();
        let kernel = two_d_rank_with(&g, &SolverConfig::default(), None).unwrap();
        assert_eq!(legacy, kernel.ranking);
    }

    #[test]
    fn diagnostics_report_the_binding_sweep() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 2), (2, 0), (0, 3), (3, 0), (2, 1)]);
        let cfg = SolverConfig { record_trace: true, ..Default::default() };
        let out = two_d_rank_with(&g, &cfg, None).unwrap();
        assert!(out.convergence.converged);
        let trace = out.trace.expect("trace requested");
        // The reported trace belongs to the binding sweep, so the
        // diagnostics are internally consistent.
        assert_eq!(trace.len(), out.convergence.iterations);
        assert_eq!(trace.last(), Some(out.convergence.residual));
        // Without the flag, no trace.
        let out = two_d_rank_with(&g, &SolverConfig::default(), None).unwrap();
        assert!(out.trace.is_none());
    }

    #[test]
    fn personalized_invalid_reference() {
        let g = GraphBuilder::from_edge_indices([(0, 1)]);
        assert!(personalized_two_d_rank(&g, &PageRankConfig::default(), NodeId::new(5)).is_err());
    }

    #[test]
    fn empty_positions() {
        let r = two_d_rank_from_positions(&[], &[]);
        assert!(r.is_empty());
    }
}
