//! CheiRank and Personalized CheiRank.
//!
//! Chepelianskii (2010) observed that running PageRank on the *transposed*
//! graph ranks nodes by the importance of their **outgoing** connections: a
//! node scores high if it links to many nodes that themselves link out
//! heavily — "communicative" nodes rather than "popular" ones. The demo
//! platform exposes this as CheiRank, plus a personalized variant that
//! restarts at a reference node, mirroring Personalized PageRank.
//!
//! Implementation-wise these are one-liners on top of the shared
//! [`crate::solver::SweepKernel`]: the [`relgraph::GraphView`]
//! transposition is O(1) because the CSR stores both adjacency directions,
//! so CheiRank is *exactly* the kernel run over the reversed view — and
//! inherits every update scheme (power, Gauss–Seidel, parallel) for free.

use crate::error::AlgoError;
use crate::pagerank::{pagerank, Convergence, PageRankConfig};
use crate::ppr::{personalized_pagerank, TeleportVector};
use crate::result::ScoreVector;
use crate::solver::{SolverConfig, SweepKernel, SweepOutcome};
use relgraph::{DirectedGraph, NodeId};

/// CheiRank: PageRank computed on the edge-reversed graph.
pub fn cheirank(
    g: &DirectedGraph,
    cfg: &PageRankConfig,
) -> Result<(ScoreVector, Convergence), AlgoError> {
    pagerank(g.transposed(), cfg)
}

/// Personalized CheiRank: Personalized PageRank on the edge-reversed graph,
/// restarting at `reference`.
pub fn personalized_cheirank(
    g: &DirectedGraph,
    cfg: &PageRankConfig,
    reference: NodeId,
) -> Result<(ScoreVector, Convergence), AlgoError> {
    personalized_pagerank(g.transposed(), cfg, reference)
}

/// CheiRank under an explicit solver configuration (scheme, threads,
/// tracing): the kernel over the transposed view with a uniform teleport —
/// or a reference-node teleport for the personalized variant.
pub fn cheirank_with(
    g: &DirectedGraph,
    cfg: &SolverConfig,
    reference: Option<NodeId>,
) -> Result<SweepOutcome, AlgoError> {
    let kernel = SweepKernel::new(g.transposed())?;
    let teleport = TeleportVector::for_reference(g.node_count(), reference)?;
    kernel.solve(cfg, &teleport)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank::pagerank as pr;
    use crate::solver::Scheme;
    use relgraph::GraphBuilder;

    #[test]
    fn cheirank_favors_out_hubs() {
        // Node 0 links out to 1..=4 (out-hub); node 5 receives from 1..=4 (in-hub).
        let mut b = GraphBuilder::new();
        for i in 1..=4 {
            b.add_edge_indices(0, i);
            b.add_edge_indices(i, 5);
        }
        b.add_edge_indices(5, 0); // close the loop
        let g = b.build();
        let cfg = PageRankConfig::default();
        let (chei, _) = cheirank(&g, &cfg).unwrap();
        let (page, _) = pr(g.view(), &cfg).unwrap();
        // PageRank prefers the in-hub 5; CheiRank prefers the out-hub 0.
        assert!(page.get(NodeId::new(5)) > page.get(NodeId::new(0)));
        assert!(chei.get(NodeId::new(0)) > chei.get(NodeId::new(5)));
    }

    #[test]
    fn cheirank_equals_pagerank_on_transpose() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 2), (2, 0), (0, 2)]);
        let cfg = PageRankConfig::default();
        let (chei, _) = cheirank(&g, &cfg).unwrap();
        // Build the explicitly transposed graph and run plain PageRank.
        let mut b = GraphBuilder::new();
        for (u, v) in g.edges() {
            b.add_edge(v, u);
        }
        let gt = b.build();
        let (page_t, _) = pr(gt.view(), &cfg).unwrap();
        for u in g.nodes() {
            assert!((chei.get(u) - page_t.get(u)).abs() < 1e-9);
        }
    }

    #[test]
    fn all_schemes_agree_on_cheirank() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 2), (2, 0), (0, 2), (2, 1)]);
        let base = cheirank_with(
            &g,
            &SolverConfig { tolerance: 1e-12, ..Default::default() }.with_scheme(Scheme::Power),
            None,
        )
        .unwrap();
        for scheme in [Scheme::GaussSeidel, Scheme::Parallel] {
            let out = cheirank_with(
                &g,
                &SolverConfig { tolerance: 1e-12, ..Default::default() }.with_scheme(scheme),
                None,
            )
            .unwrap();
            for u in g.nodes() {
                assert!(
                    (base.scores.get(u) - out.scores.get(u)).abs() < 1e-9,
                    "{scheme} node {u:?}"
                );
            }
        }
    }

    #[test]
    fn personalized_cheirank_localizes_upstream() {
        // Chain 0 -> 1 -> 2. From reference 2, personalized CheiRank walks
        // the reversed edges and reaches 1 and 0.
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 2)]);
        let cfg = PageRankConfig::default();
        let (s, _) = personalized_cheirank(&g, &cfg, NodeId::new(2)).unwrap();
        assert_eq!(s.argmax(), Some(NodeId::new(2)));
        assert!(s.get(NodeId::new(1)) > s.get(NodeId::new(0)));
        // Forward PPR from node 2 would see nothing (2 has no out-edges).
        let (fwd, _) = personalized_pagerank(g.view(), &cfg, NodeId::new(2)).unwrap();
        assert_eq!(fwd.get(NodeId::new(0)), 0.0);
    }

    #[test]
    fn personalized_cheirank_invalid_reference() {
        let g = GraphBuilder::from_edge_indices([(0, 1)]);
        assert!(personalized_cheirank(&g, &PageRankConfig::default(), NodeId::new(7)).is_err());
        assert!(cheirank_with(&g, &SolverConfig::default(), Some(NodeId::new(7))).is_err());
    }

    #[test]
    fn cheirank_sums_to_one() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 2), (2, 0), (1, 0)]);
        let (s, conv) = cheirank(&g, &PageRankConfig::default()).unwrap();
        assert!(conv.converged);
        assert!((s.sum() - 1.0).abs() < 1e-8);
    }
}
