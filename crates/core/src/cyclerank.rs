//! CycleRank: personalized relevance from bounded-length cycles.
//!
//! CycleRank (Consonni, Laniado & Montresor, Proc. Royal Society A 2020;
//! showcased in the ICDE 2024 demo) assigns to every node `i` a relevance
//! score with respect to a reference node `r`:
//!
//! ```text
//! CR_{r,K}(i) = Σ_{n=2..K} σ(n) · c_{r,n}(i)
//! ```
//!
//! where `c_{r,n}(i)` is the number of simple cycles of length `n` that
//! contain both `r` and `i`, `K` is the maximum cycle length, and `σ` is a
//! non-increasing scoring function ([`crate::ScoringFunction`], default
//! `σ(n) = e^{−n}`).
//!
//! The intuition: a node merely *linked from* `r` is "relevant but perhaps
//! unrelated"; a node merely *linking to* `r` is "related but perhaps not
//! relevant"; nodes on **cycles** through `r` are both. Because globally
//! central hubs (the "United States" problem of Personalized PageRank)
//! rarely link *back* into a specific topic, they sit on few short cycles
//! and receive low CycleRank scores — the effect Tables I–II of the demo
//! paper illustrate.
//!
//! ## Enumeration strategy
//!
//! Exhaustive simple-cycle enumeration is exponential in general, but three
//! prunings (mirroring the reference implementation) make bounded-length
//! enumeration cheap in practice:
//!
//! 1. **Distance pruning (backward)** — a bounded reverse BFS computes
//!    `dist(u → r)` for every node within `K−1` hops; a DFS path of length
//!    `d` may only continue into `u` if `d + 1 + dist(u → r) ≤ K`.
//! 2. **Distance pruning (forward)** — only nodes with
//!    `dist(r → u) + dist(u → r) ≤ K` can lie on any qualifying cycle; the
//!    DFS never touches anything else.
//! 3. **SCC restriction** — both distances are finite only inside `r`'s
//!    strongly connected component, so pruning 1+2 subsumes the SCC cut; we
//!    still compute the candidate count for diagnostics.
//!
//! The remaining DFS enumerates exactly the simple paths `r → … → r` of
//! length `≤ K`, crediting `σ(len)` to every node on each cycle found
//! (including `r` itself, which therefore always attains the maximum score,
//! as the paper notes).

use crate::error::AlgoError;
use crate::result::ScoreVector;
use crate::scoring::ScoringFunction;
use relgraph::traversal::{bfs_distances_bounded, bfs_distances_bounded_rev, UNREACHABLE};
use relgraph::{DirectedGraph, NodeId};
use serde::{Deserialize, Serialize};

/// Parameters of CycleRank.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CycleRankConfig {
    /// Maximum cycle length K (≥ 2). The paper uses K = 3 on Wikipedia and
    /// K = 5 on the sparser Amazon co-purchase graph.
    pub max_cycle_len: u32,
    /// Cycle-length weighting σ(n); default `exp` (= e^{−n}).
    pub scoring: ScoringFunction,
    /// **Extension (the CycleRank paper's future work):** when true and the
    /// graph carries edge weights, each cycle's contribution is multiplied
    /// by its *bottleneck* (minimum) edge weight, so a cycle of strong
    /// interactions — e.g. users who repeatedly reply to each other on the
    /// demo's Twitter graphs — counts more than one of one-off mentions.
    /// Ignored on unweighted graphs. Default false (the published
    /// definition).
    #[serde(default)]
    pub use_edge_weights: bool,
}

impl Default for CycleRankConfig {
    fn default() -> Self {
        CycleRankConfig {
            max_cycle_len: 3,
            scoring: ScoringFunction::Exponential,
            use_edge_weights: false,
        }
    }
}

impl CycleRankConfig {
    /// Config with a specific K and the default scoring function.
    pub fn with_k(k: u32) -> Self {
        CycleRankConfig { max_cycle_len: k, ..Default::default() }
    }

    /// Enables the bottleneck edge-weight extension.
    pub fn weighted(mut self) -> Self {
        self.use_edge_weights = true;
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), AlgoError> {
        if self.max_cycle_len < 2 {
            return Err(AlgoError::InvalidMaxCycleLength(self.max_cycle_len));
        }
        Ok(())
    }
}

/// CycleRank scores plus enumeration diagnostics.
#[derive(Debug, Clone)]
pub struct CycleRankOutput {
    /// Per-node scores (0 for nodes on no qualifying cycle).
    pub scores: ScoreVector,
    /// Total number of simple cycles of length 2..=K through the reference.
    pub cycles_found: u64,
    /// Number of cycles per length: `cycles_by_len[n]` counts length-`n`
    /// cycles (indices 0 and 1 are always 0).
    pub cycles_by_len: Vec<u64>,
    /// Number of candidate nodes that survived the distance pruning
    /// (the DFS search space), including the reference.
    pub candidates: usize,
}

impl CycleRankOutput {
    fn empty(n: usize, k: u32) -> Self {
        CycleRankOutput {
            scores: ScoreVector::zeros(n),
            cycles_found: 0,
            cycles_by_len: vec![0; k as usize + 1],
            candidates: 0,
        }
    }
}

/// Computes CycleRank scores of all nodes with respect to `reference`.
pub fn cyclerank(
    g: &DirectedGraph,
    reference: NodeId,
    cfg: &CycleRankConfig,
) -> Result<CycleRankOutput, AlgoError> {
    cfg.validate()?;
    let n = g.node_count();
    if n == 0 {
        return Err(AlgoError::EmptyGraph);
    }
    if reference.index() >= n {
        return Err(AlgoError::InvalidReference { node: reference.raw(), node_count: n });
    }

    let k = cfg.max_cycle_len;

    // Pruning distances. A cycle of length ≤ K visits nodes at forward
    // distance ≤ K−1 and backward distance ≤ K−1 from r.
    let dist_from = bfs_distances_bounded(g, reference, k - 1);
    let dist_to = bfs_distances_bounded_rev(g, reference, k - 1);

    // Candidate mask: nodes that can possibly lie on a qualifying cycle.
    let mut candidate = vec![false; n];
    let mut candidates = 0usize;
    for i in 0..n {
        let (df, dt) = (dist_from[i], dist_to[i]);
        if df != UNREACHABLE && dt != UNREACHABLE && df + dt <= k {
            candidate[i] = true;
            candidates += 1;
        }
    }
    if candidates <= 1 {
        // Reference sits on no cycle of length ≤ K.
        let mut out = CycleRankOutput::empty(n, k);
        out.candidates = candidates;
        return Ok(out);
    }

    // Precompute σ(n) for n = 0..=K (indices < 2 unused).
    let sigma: Vec<f64> = (0..=k).map(|i| cfg.scoring.weight(i)).collect();

    let mut scores = vec![0.0f64; n];
    let mut cycles_by_len = vec![0u64; k as usize + 1];
    let mut cycles_found = 0u64;

    // Iterative DFS over simple paths starting at r.
    // Each stack frame: (node, index into its out-neighbor list).
    // With the bottleneck extension, bottleneck[d] is the minimum edge
    // weight along the first d edges of the current path.
    let use_weights = cfg.use_edge_weights && g.is_weighted();
    let mut on_path = vec![false; n];
    let mut path: Vec<NodeId> = Vec::with_capacity(k as usize);
    let mut frames: Vec<(NodeId, usize)> = Vec::with_capacity(k as usize);
    let mut bottleneck: Vec<f64> = Vec::with_capacity(k as usize + 1);

    on_path[reference.index()] = true;
    path.push(reference);
    frames.push((reference, 0));
    bottleneck.push(f64::INFINITY);

    while let Some(&mut (u, ref mut next_idx)) = frames.last_mut() {
        let depth = path.len() as u32 - 1; // edges from r to u
        let neighbors = g.out_neighbors(u);
        let weights = if use_weights { g.out_weights(u) } else { None };

        let mut advanced = false;
        while *next_idx < neighbors.len() {
            let v = neighbors[*next_idx];
            let edge_w = weights.map(|w| w[*next_idx]).unwrap_or(1.0);
            *next_idx += 1;

            if v == reference {
                // Closed a cycle of length depth+1; self-loops (len 1) are
                // not counted — cycles start at length 2.
                let len = depth + 1;
                if len >= 2 {
                    cycles_found += 1;
                    cycles_by_len[len as usize] += 1;
                    let mut w = sigma[len as usize];
                    if use_weights {
                        let cycle_bottleneck = bottleneck[depth as usize].min(edge_w);
                        w *= cycle_bottleneck;
                    }
                    for &p in &path {
                        scores[p.index()] += w;
                    }
                }
                continue;
            }

            let vi = v.index();
            if !candidate[vi] || on_path[vi] {
                continue;
            }
            // Admissibility: the path r→…→u→v (depth+1 edges) must still be
            // able to return to r within the budget.
            if depth + 1 + dist_to[vi] > k {
                continue;
            }

            on_path[vi] = true;
            path.push(v);
            bottleneck.push(bottleneck[depth as usize].min(edge_w));
            frames.push((v, 0));
            advanced = true;
            break;
        }

        if !advanced
            && frames
                .last()
                .map(|&(node, idx)| node == u && idx >= neighbors.len())
                .unwrap_or(false)
        {
            // Exhausted u's neighbors: backtrack.
            frames.pop();
            let popped = path.pop().expect("path/frames in sync");
            bottleneck.pop();
            on_path[popped.index()] = false;
        }
    }

    Ok(CycleRankOutput {
        scores: ScoreVector::new(scores),
        cycles_found,
        cycles_by_len,
        candidates,
    })
}

/// Computes CycleRank for many reference nodes concurrently.
///
/// Each reference's enumeration is independent (CycleRank shares no state
/// across queries), so the batch fans out over `threads` crossbeam scoped
/// threads — the in-process equivalent of the demo scheduling one task per
/// query-set row onto its worker pool. Results come back in input order;
/// per-reference errors (e.g. an out-of-range id) are returned in place.
pub fn cyclerank_batch(
    g: &DirectedGraph,
    references: &[NodeId],
    cfg: &CycleRankConfig,
    threads: usize,
) -> Vec<Result<CycleRankOutput, AlgoError>> {
    if references.is_empty() {
        return Vec::new();
    }
    let threads = threads.max(1).min(references.len());
    let mut results: Vec<Option<Result<CycleRankOutput, AlgoError>>> =
        (0..references.len()).map(|_| None).collect();
    let chunk = references.len().div_ceil(threads);
    crossbeam::thread::scope(|s| {
        for (refs, outs) in references.chunks(chunk).zip(results.chunks_mut(chunk)) {
            s.spawn(move |_| {
                for (r, out) in refs.iter().zip(outs.iter_mut()) {
                    *out = Some(cyclerank(g, *r, cfg));
                }
            });
        }
    })
    .expect("cyclerank batch worker panicked");
    results.into_iter().map(|r| r.expect("every slot filled")).collect()
}

/// CycleRank **without** the distance prunings — a reference
/// implementation for the ablation benchmark (`cargo bench -p relbench
/// --bench pruning`) and for cross-checking the optimized enumerator.
///
/// Enumerates the same simple cycles by plain depth-bounded DFS: a path may
/// extend into any unvisited node as long as its length stays below K,
/// regardless of whether the node can still reach the reference. Exact,
/// but explores a search space larger by orders of magnitude on graphs
/// with low reciprocity.
pub fn cyclerank_unpruned(
    g: &DirectedGraph,
    reference: NodeId,
    cfg: &CycleRankConfig,
) -> Result<CycleRankOutput, AlgoError> {
    cfg.validate()?;
    let n = g.node_count();
    if n == 0 {
        return Err(AlgoError::EmptyGraph);
    }
    if reference.index() >= n {
        return Err(AlgoError::InvalidReference { node: reference.raw(), node_count: n });
    }
    let k = cfg.max_cycle_len;
    let sigma: Vec<f64> = (0..=k).map(|i| cfg.scoring.weight(i)).collect();

    let mut scores = vec![0.0f64; n];
    let mut cycles_by_len = vec![0u64; k as usize + 1];
    let mut cycles_found = 0u64;

    let mut on_path = vec![false; n];
    let mut path: Vec<NodeId> = Vec::with_capacity(k as usize);
    let mut frames: Vec<(NodeId, usize)> = Vec::with_capacity(k as usize);

    on_path[reference.index()] = true;
    path.push(reference);
    frames.push((reference, 0));

    while !frames.is_empty() {
        let fi = frames.len() - 1;
        let (u, idx) = frames[fi];
        let neighbors = g.out_neighbors(u);
        if idx >= neighbors.len() {
            frames.pop();
            let popped = path.pop().expect("path/frames in sync");
            on_path[popped.index()] = false;
            continue;
        }
        frames[fi].1 += 1;
        let v = neighbors[idx];
        let depth = path.len() as u32 - 1;

        if v == reference {
            let len = depth + 1;
            if len >= 2 {
                cycles_found += 1;
                cycles_by_len[len as usize] += 1;
                let w = sigma[len as usize];
                for &p in &path {
                    scores[p.index()] += w;
                }
            }
            continue;
        }
        // Only bound: the path must stay short enough to possibly close.
        if on_path[v.index()] || depth + 1 >= k {
            continue;
        }
        on_path[v.index()] = true;
        path.push(v);
        frames.push((v, 0));
    }

    Ok(CycleRankOutput {
        scores: ScoreVector::new(scores),
        cycles_found,
        cycles_by_len,
        candidates: n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use relgraph::GraphBuilder;

    fn cr(g: &DirectedGraph, r: u32, k: u32) -> CycleRankOutput {
        cyclerank(g, NodeId::new(r), &CycleRankConfig::with_k(k)).unwrap()
    }

    #[test]
    fn two_cycle_scores() {
        // 0 <-> 1: one cycle of length 2.
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 0)]);
        let out = cr(&g, 0, 3);
        assert_eq!(out.cycles_found, 1);
        assert_eq!(out.cycles_by_len[2], 1);
        let w = (-2.0f64).exp();
        assert!((out.scores.get(NodeId::new(0)) - w).abs() < 1e-12);
        assert!((out.scores.get(NodeId::new(1)) - w).abs() < 1e-12);
    }

    #[test]
    fn triangle_counted_once_per_direction() {
        // Directed triangle 0->1->2->0: exactly one length-3 cycle.
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 2), (2, 0)]);
        let out = cr(&g, 0, 3);
        assert_eq!(out.cycles_found, 1);
        assert_eq!(out.cycles_by_len[3], 1);
        let w = (-3.0f64).exp();
        for u in g.nodes() {
            assert!((out.scores.get(u) - w).abs() < 1e-12);
        }
    }

    #[test]
    fn k_too_small_misses_long_cycles() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 2), (2, 0)]);
        let out = cr(&g, 0, 2);
        assert_eq!(out.cycles_found, 0);
        assert_eq!(out.scores.sum(), 0.0);
    }

    #[test]
    fn reference_gets_maximum_score() {
        // Paper: "By definition, the reference node gets the maximum
        // Cyclerank score as it is included in all the cycles considered."
        let g = GraphBuilder::from_edge_indices([
            (0, 1),
            (1, 0),
            (0, 2),
            (2, 0),
            (1, 2),
            (2, 1),
            (2, 3),
            (3, 2),
        ]);
        for r in 0..4u32 {
            let out = cr(&g, r, 4);
            // The reference attains the maximum score (ties possible when
            // another node lies on exactly the same cycles).
            let max = out.scores.as_slice().iter().cloned().fold(f64::MIN, f64::max);
            assert!(
                (out.scores.get(NodeId::new(r)) - max).abs() < 1e-12,
                "reference {r}: {} < max {max}",
                out.scores.get(NodeId::new(r))
            );
        }
    }

    #[test]
    fn one_way_link_scores_zero() {
        // The motivating example: r links to a hub that never links back.
        let mut b = GraphBuilder::new();
        let r = b.add_labeled_node("Pasta");
        let hub = b.add_labeled_node("United States");
        let friend = b.add_labeled_node("Italy");
        b.add_edge(r, hub);
        b.add_edge(r, friend);
        b.add_edge(friend, r);
        let g = b.build();
        let out = cyclerank(&g, r, &CycleRankConfig::default()).unwrap();
        assert_eq!(out.scores.get(hub), 0.0);
        assert!(out.scores.get(friend) > 0.0);
    }

    #[test]
    fn cycle_counts_match_combinatorics() {
        // Complete directed graph on 4 nodes: through a fixed node r there
        // are 3 cycles of length 2, 3·2 = 6 of length 3, 3·2·1 = 6 of length 4.
        let mut b = GraphBuilder::new();
        for i in 0..4u32 {
            for j in 0..4u32 {
                if i != j {
                    b.add_edge_indices(i, j);
                }
            }
        }
        let g = b.build();
        let out = cr(&g, 0, 4);
        assert_eq!(out.cycles_by_len[2], 3);
        assert_eq!(out.cycles_by_len[3], 6);
        assert_eq!(out.cycles_by_len[4], 6);
        assert_eq!(out.cycles_found, 15);
    }

    #[test]
    fn simple_cycles_only_no_revisits() {
        // Figure-eight: 0<->1 and 0<->2. Cycles through 0 with K=4:
        // (0,1), (0,2) — the length-4 walk 0,1,0,2 revisits 0 and must NOT
        // count as a simple cycle.
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 0), (0, 2), (2, 0)]);
        let out = cr(&g, 0, 4);
        assert_eq!(out.cycles_found, 2);
        assert_eq!(out.cycles_by_len[2], 2);
        assert_eq!(out.cycles_by_len[4], 0);
    }

    #[test]
    fn self_loop_not_a_cycle() {
        let g = GraphBuilder::from_edge_indices([(0, 0), (0, 1), (1, 0)]);
        let out = cr(&g, 0, 3);
        assert_eq!(out.cycles_found, 1); // only 0<->1
    }

    #[test]
    fn monotone_in_k() {
        // More cycle lengths allowed => scores can only grow.
        let g = GraphBuilder::from_edge_indices([
            (0, 1),
            (1, 0),
            (1, 2),
            (2, 1),
            (2, 0),
            (0, 2),
            (2, 3),
            (3, 0),
        ]);
        let mut prev_sum = -1.0;
        for k in 2..=6 {
            let out = cr(&g, 0, k);
            let s = out.scores.sum();
            assert!(s >= prev_sum - 1e-15, "K={k}: {s} < {prev_sum}");
            prev_sum = s;
        }
    }

    #[test]
    fn disconnected_reference_all_zero() {
        let mut b = GraphBuilder::new();
        b.add_edge_indices(1, 2);
        b.add_edge_indices(2, 1);
        b.ensure_node(0);
        let g = b.build();
        let out = cr(&g, 0, 5);
        assert_eq!(out.cycles_found, 0);
        assert_eq!(out.scores.sum(), 0.0);
        assert!(out.candidates <= 1);
    }

    #[test]
    fn scoring_function_changes_weights() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 0)]);
        let cfg = CycleRankConfig {
            max_cycle_len: 3,
            scoring: ScoringFunction::Constant,
            use_edge_weights: false,
        };
        let out = cyclerank(&g, NodeId::new(0), &cfg).unwrap();
        assert_eq!(out.scores.get(NodeId::new(1)), 1.0);
        let cfg = CycleRankConfig {
            max_cycle_len: 3,
            scoring: ScoringFunction::Inverse,
            use_edge_weights: false,
        };
        let out = cyclerank(&g, NodeId::new(0), &cfg).unwrap();
        assert_eq!(out.scores.get(NodeId::new(1)), 0.5);
    }

    #[test]
    fn shorter_cycles_weigh_more() {
        // Node 1 shares a 2-cycle with 0; node 2 and 3 share a 3-cycle.
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 0), (0, 2), (2, 3), (3, 0)]);
        let out = cr(&g, 0, 4);
        assert!(out.scores.get(NodeId::new(1)) > out.scores.get(NodeId::new(2)));
    }

    #[test]
    fn invalid_inputs() {
        let g = GraphBuilder::from_edge_indices([(0, 1)]);
        assert!(matches!(
            cyclerank(&g, NodeId::new(0), &CycleRankConfig::with_k(1)),
            Err(AlgoError::InvalidMaxCycleLength(1))
        ));
        assert!(matches!(
            cyclerank(&g, NodeId::new(9), &CycleRankConfig::default()),
            Err(AlgoError::InvalidReference { .. })
        ));
        let empty = GraphBuilder::new().build();
        assert!(matches!(
            cyclerank(&empty, NodeId::new(0), &CycleRankConfig::default()),
            Err(AlgoError::EmptyGraph)
        ));
    }

    #[test]
    fn candidates_pruned_by_distance() {
        // Long tail 0->1->...->9->0 (cycle of length 10) with K=3: no node
        // qualifies except via short cycles; candidates should be tiny.
        let mut b = GraphBuilder::new();
        for i in 0..9 {
            b.add_edge_indices(i, i + 1);
        }
        b.add_edge_indices(9, 0);
        // Add a short cycle 0<->5? No: keep pure; only the 10-cycle exists.
        let g = b.build();
        let out = cr(&g, 0, 3);
        assert_eq!(out.cycles_found, 0);
        // Only r itself (fwd+bwd dist 0) can be a candidate: nodes at
        // dist_from 1..2 have dist_to >= 8.
        assert!(out.candidates <= 1, "candidates = {}", out.candidates);
    }

    #[test]
    fn weighted_extension_bottleneck() {
        // 0 <->(5, 2) 1 and 0 <->(1, 1) 2: cycle bottlenecks 2 and 1.
        let mut b = GraphBuilder::new();
        b.add_weighted_edge(NodeId::new(0), NodeId::new(1), 5.0);
        b.add_weighted_edge(NodeId::new(1), NodeId::new(0), 2.0);
        b.add_weighted_edge(NodeId::new(0), NodeId::new(2), 1.0);
        b.add_weighted_edge(NodeId::new(2), NodeId::new(0), 1.0);
        let g = b.build();
        let cfg = CycleRankConfig::with_k(3).weighted();
        let out = cyclerank(&g, NodeId::new(0), &cfg).unwrap();
        let s2 = (-2.0f64).exp();
        assert!((out.scores.get(NodeId::new(1)) - 2.0 * s2).abs() < 1e-12);
        assert!((out.scores.get(NodeId::new(2)) - 1.0 * s2).abs() < 1e-12);
        // Node 1's stronger mutual tie outranks node 2's weak one.
        assert!(out.scores.get(NodeId::new(1)) > out.scores.get(NodeId::new(2)));

        // Without the extension both score identically.
        let out = cyclerank(&g, NodeId::new(0), &CycleRankConfig::with_k(3)).unwrap();
        assert_eq!(out.scores.get(NodeId::new(1)), out.scores.get(NodeId::new(2)));
    }

    #[test]
    fn weighted_extension_longer_cycles() {
        // Triangle 0->1->2->0 with weights 3, 1, 2: bottleneck 1.
        let mut b = GraphBuilder::new();
        b.add_weighted_edge(NodeId::new(0), NodeId::new(1), 3.0);
        b.add_weighted_edge(NodeId::new(1), NodeId::new(2), 1.0);
        b.add_weighted_edge(NodeId::new(2), NodeId::new(0), 2.0);
        let g = b.build();
        let cfg = CycleRankConfig::with_k(3).weighted();
        let out = cyclerank(&g, NodeId::new(0), &cfg).unwrap();
        let want = (-3.0f64).exp() * 1.0;
        for u in g.nodes() {
            assert!((out.scores.get(u) - want).abs() < 1e-12, "{u:?}");
        }
    }

    #[test]
    fn weighted_flag_is_noop_on_unweighted_graphs() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 0), (1, 2), (2, 0), (0, 2)]);
        let plain = cyclerank(&g, NodeId::new(0), &CycleRankConfig::with_k(4)).unwrap();
        let flagged =
            cyclerank(&g, NodeId::new(0), &CycleRankConfig::with_k(4).weighted()).unwrap();
        for u in g.nodes() {
            assert_eq!(plain.scores.get(u), flagged.scores.get(u));
        }
    }

    #[test]
    fn batch_matches_individual_runs() {
        let g = GraphBuilder::from_edge_indices([
            (0, 1),
            (1, 0),
            (1, 2),
            (2, 1),
            (2, 3),
            (3, 2),
            (3, 0),
            (0, 3),
        ]);
        let refs: Vec<NodeId> = (0..4).map(NodeId::new).collect();
        let cfg = CycleRankConfig::with_k(4);
        for threads in [1, 2, 4, 9] {
            let batch = cyclerank_batch(&g, &refs, &cfg, threads);
            assert_eq!(batch.len(), 4);
            for (r, out) in refs.iter().zip(&batch) {
                let solo = cyclerank(&g, *r, &cfg).unwrap();
                let out = out.as_ref().unwrap();
                assert_eq!(out.cycles_found, solo.cycles_found, "threads {threads} ref {r:?}");
                for u in g.nodes() {
                    assert_eq!(out.scores.get(u), solo.scores.get(u));
                }
            }
        }
    }

    #[test]
    fn batch_reports_per_reference_errors() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 0)]);
        let refs = [NodeId::new(0), NodeId::new(9), NodeId::new(1)];
        let batch = cyclerank_batch(&g, &refs, &CycleRankConfig::default(), 2);
        assert!(batch[0].is_ok());
        assert!(matches!(batch[1], Err(AlgoError::InvalidReference { .. })));
        assert!(batch[2].is_ok());
    }

    #[test]
    fn batch_empty_references() {
        let g = GraphBuilder::from_edge_indices([(0, 1)]);
        assert!(cyclerank_batch(&g, &[], &CycleRankConfig::default(), 4).is_empty());
    }

    #[test]
    fn unpruned_agrees_with_pruned() {
        // Deterministic pseudo-random graphs of varying density.
        for (seed, density) in [(1u64, 10), (2, 25), (3, 40)] {
            let mut edges = Vec::new();
            let mut x = seed | 1;
            for u in 0..12u32 {
                for v in 0..12u32 {
                    if u == v {
                        continue;
                    }
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    if x % 100 < density {
                        edges.push((u, v));
                    }
                }
            }
            let g = GraphBuilder::from_edge_indices(edges);
            for k in 2..=5 {
                for r in [0u32, 5] {
                    let cfg = CycleRankConfig::with_k(k);
                    let a = cyclerank(&g, NodeId::new(r), &cfg).unwrap();
                    let b = cyclerank_unpruned(&g, NodeId::new(r), &cfg).unwrap();
                    assert_eq!(a.cycles_found, b.cycles_found, "seed {seed} k {k} r {r}");
                    assert_eq!(a.cycles_by_len, b.cycles_by_len);
                    for u in g.nodes() {
                        assert!((a.scores.get(u) - b.scores.get(u)).abs() < 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn pruned_explores_fewer_candidates() {
        // Long one-way tail: the pruned version never leaves the tiny SCC.
        let mut b = GraphBuilder::new();
        b.add_edge_indices(0, 1);
        b.add_edge_indices(1, 0);
        for i in 1..60 {
            b.add_edge_indices(i, i + 1); // one-way tail, no return
        }
        let g = b.build();
        let out = cyclerank(&g, NodeId::new(0), &CycleRankConfig::with_k(5)).unwrap();
        assert!(out.candidates <= 3, "candidates = {}", out.candidates);
        let un = cyclerank_unpruned(&g, NodeId::new(0), &CycleRankConfig::with_k(5)).unwrap();
        assert_eq!(out.cycles_found, un.cycles_found);
    }

    #[test]
    fn brute_force_cross_check_small_graph() {
        // Deterministic pseudo-random 8-node graph; compare against a naive
        // enumerator of simple cycles through r.
        let mut edges = Vec::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for u in 0..8u32 {
            for v in 0..8u32 {
                if u == v {
                    continue;
                }
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if x % 100 < 30 {
                    edges.push((u, v));
                }
            }
        }
        let g = GraphBuilder::from_edge_indices(edges.clone());
        let k = 5u32;
        let out = cr(&g, 0, k);

        // Naive: DFS enumerating all simple paths from 0 back to 0.
        let mut counts = vec![0u64; k as usize + 1];
        let mut scores = vec![0.0f64; g.node_count()];
        fn dfs(
            g: &DirectedGraph,
            r: NodeId,
            u: NodeId,
            path: &mut Vec<NodeId>,
            k: u32,
            counts: &mut [u64],
            scores: &mut [f64],
        ) {
            for &v in g.out_neighbors(u) {
                if v == r {
                    let len = path.len() as u32;
                    if len >= 2 && len <= k {
                        counts[len as usize] += 1;
                        for &p in path.iter() {
                            scores[p.index()] += (-(len as f64)).exp();
                        }
                    }
                    continue;
                }
                if path.contains(&v) || path.len() as u32 >= k {
                    continue;
                }
                path.push(v);
                dfs(g, r, v, path, k, counts, scores);
                path.pop();
            }
        }
        let mut path = vec![NodeId::new(0)];
        dfs(&g, NodeId::new(0), NodeId::new(0), &mut path, k, &mut counts, &mut scores);

        assert_eq!(out.cycles_by_len, counts, "cycle counts per length");
        for u in g.nodes() {
            assert!(
                (out.scores.get(u) - scores[u.index()]).abs() < 1e-9,
                "score mismatch at {u:?}: {} vs {}",
                out.scores.get(u),
                scores[u.index()]
            );
        }
    }
}
