//! # relserver — the API gateway of the CycleRank demo platform
//!
//! A dependency-free HTTP/1.1 server over `std::net` exposing the demo's
//! REST surface. Per Fig. 1, the gateway "acts as entry point for all
//! incoming requests from the Web UI and routes them to the relevant
//! computational nodes" — here, to a [`relengine::Scheduler`].
//!
//! Serving runs on a bounded worker pool with HTTP keep-alive, a bounded
//! admission queue, and two concurrency lanes (cheap reads/cached serves
//! vs. expensive cold solves and mutations); overload is shed explicitly
//! with `429` + `Retry-After` rather than queued without bound — see the
//! [`pool`] module.
//!
//! Endpoints:
//!
//! | Method | Path | Meaning |
//! |--------|------|---------|
//! | GET  | `/api/health` | liveness probe |
//! | GET  | `/api/datasets` | the 50-dataset catalog |
//! | GET  | `/api/datasets/{id}` | one catalog entry |
//! | GET  | `/api/algorithms` | registry contents: ids, metadata, parameter schemas |
//! | POST | `/api/tasks` | submit a task (JSON [`relengine::TaskSpec`]; `?sync=1` waits for the result) |
//! | GET  | `/api/tasks/{id}` | poll a task's status |
//! | GET  | `/api/tasks/{id}/result` | fetch a completed task's result |
//! | GET  | `/api/tasks/{id}/log` | fetch a task's execution log |
//! | POST | `/api/query-sets` | submit an array of tasks as one query set |
//! | GET  | `/api/serving/stats` | worker pool, admission queue, and load-shed counters |
//!
//! ```no_run
//! use relserver::ApiServer;
//! use std::sync::Arc;
//!
//! let scheduler = Arc::new(relengine::Scheduler::builder().workers(2).build());
//! let server = ApiServer::bind("127.0.0.1:0", scheduler).unwrap();
//! println!("listening on {}", server.local_addr());
//! server.run(); // blocks
//! ```

pub mod http;
pub mod pool;
pub mod routes;
pub mod server;

pub use http::{Request, Response, StatusCode};
pub use pool::{ServingConfig, ServingSnapshot, ServingState};
pub use server::ApiServer;
