//! The TCP accept loop.

use crate::http::{Request, Response, StatusCode};
use crate::routes::route;
use relengine::Scheduler;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The API gateway: accepts connections and serves the REST API backed by
/// a [`Scheduler`].
pub struct ApiServer {
    listener: TcpListener,
    engine: Arc<Scheduler>,
    shutdown: Arc<AtomicBool>,
}

/// Handle for stopping a server spawned with [`ApiServer::spawn`].
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Kick the accept loop awake.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl ApiServer {
    /// Binds to `addr` (use port 0 for an ephemeral port).
    pub fn bind(addr: impl ToSocketAddrs, engine: Arc<Scheduler>) -> std::io::Result<ApiServer> {
        let listener = TcpListener::bind(addr)?;
        Ok(ApiServer { listener, engine, shutdown: Arc::new(AtomicBool::new(false)) })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has an address")
    }

    /// Serves forever on the current thread (connection-per-thread).
    pub fn run(self) {
        let engine = self.engine;
        let shutdown = self.shutdown;
        for stream in self.listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(mut s) => {
                    let engine = Arc::clone(&engine);
                    std::thread::spawn(move || handle_connection(&mut s, &engine));
                }
                Err(_) => continue,
            }
        }
    }

    /// Starts the accept loop on a background thread.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let shutdown = Arc::clone(&self.shutdown);
        let thread = std::thread::spawn(move || self.run());
        ServerHandle { addr, shutdown, thread: Some(thread) }
    }
}

fn handle_connection(stream: &mut TcpStream, engine: &Arc<Scheduler>) {
    let response = match Request::read_from(stream) {
        Ok(req) => route(&req, engine),
        Err(e) => Response::error(StatusCode::BadRequest, e),
    };
    let _ = response.write_to(stream);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn start() -> ServerHandle {
        let engine = Arc::new(Scheduler::builder().workers(1).build());
        ApiServer::bind("127.0.0.1:0", engine).unwrap().spawn()
    }

    fn request(addr: SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_health_over_tcp() {
        let h = start();
        let resp = request(h.addr(), "GET /api/health HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200"));
        assert!(resp.contains(r#"{"status":"ok"}"#));
        h.stop();
    }

    #[test]
    fn serves_concurrent_requests() {
        let h = start();
        let addr = h.addr();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || request(addr, "GET /api/algorithms HTTP/1.1\r\n\r\n"))
            })
            .collect();
        for t in threads {
            let resp = t.join().unwrap();
            assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        }
        h.stop();
    }

    #[test]
    fn malformed_request_gets_400() {
        let h = start();
        let resp = request(h.addr(), "BREW /coffee HTCPCP/1.0\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        h.stop();
    }

    #[test]
    fn stop_terminates_accept_loop() {
        let h = start();
        let addr = h.addr();
        h.stop();
        // Subsequent connections are refused or reset quickly; either way
        // the listener socket is gone shortly after stop() returns.
        std::thread::sleep(std::time::Duration::from_millis(50));
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(_) => {
                // The OS may briefly accept on a lingering socket; a second
                // connect after it drains should fail.
            }
        }
    }
}
