//! The TCP accept loop, front door of the worker-pool serving path.
//!
//! The acceptor owns no request work: every accepted socket is handed to
//! the [`crate::pool::ServingPool`] through its bounded admission queue,
//! and shed with `429 Too Many Requests` + `Retry-After` when that queue
//! is full. See the [`crate::pool`] module docs for the serving model.

use crate::pool::{ServingConfig, ServingPool, ServingState};
use relengine::Scheduler;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The API gateway: accepts connections and serves the REST API backed by
/// a [`Scheduler`] through a bounded worker pool.
pub struct ApiServer {
    listener: TcpListener,
    engine: Arc<Scheduler>,
    state: Arc<ServingState>,
    shutdown: Arc<AtomicBool>,
}

/// Handle for stopping a server spawned with [`ApiServer::spawn`].
///
/// Dropping the handle also stops the server: the accept loop is woken
/// and joined, and the worker pool drains before the thread exits — a
/// handle that goes out of scope no longer leaks the accept thread.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServingState>,
    shutdown: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The serving counters and admission gates of the running pool.
    pub fn serving_state(&self) -> &Arc<ServingState> {
        &self.state
    }

    /// Stops the accept loop, drains the worker pool, and joins the
    /// server thread. (Equivalent to dropping the handle; kept for call
    /// sites that want the shutdown to be explicit.)
    pub fn stop(mut self) {
        self.shutdown_now();
    }

    fn shutdown_now(&mut self) {
        let Some(t) = self.thread.take() else { return };
        self.shutdown.store(true, Ordering::SeqCst);
        // Kick the accept loop awake.
        let _ = TcpStream::connect(self.addr);
        let _ = t.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_now();
    }
}

impl ApiServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) with pool
    /// sizing derived from the host and the engine
    /// ([`ServingConfig::auto`]).
    pub fn bind(addr: impl ToSocketAddrs, engine: Arc<Scheduler>) -> std::io::Result<ApiServer> {
        let config = ServingConfig::auto(engine.worker_count());
        ApiServer::bind_with(addr, engine, config)
    }

    /// Binds with an explicit serving configuration.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        engine: Arc<Scheduler>,
        config: ServingConfig,
    ) -> std::io::Result<ApiServer> {
        let listener = TcpListener::bind(addr)?;
        Ok(ApiServer {
            listener,
            engine,
            state: ServingState::new(config),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        // rellint: allow(panic-hygiene) -- a successfully bound listener always reports its address
        self.listener.local_addr().expect("bound listener has an address")
    }

    /// The serving counters and admission gates.
    pub fn serving_state(&self) -> &Arc<ServingState> {
        &self.state
    }

    /// Serves on the current thread until shut down. Workers and their
    /// in-flight connections drain before this returns.
    pub fn run(self) {
        let pool = ServingPool::start(Arc::clone(&self.engine), Arc::clone(&self.state));
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(s) => pool.admit(s),
                Err(_) => continue,
            }
        }
        // Dropping the pool drains the admission queue and joins every
        // worker.
        drop(pool);
    }

    /// Starts the accept loop on a background thread.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let state = Arc::clone(&self.state);
        let shutdown = Arc::clone(&self.shutdown);
        let thread = std::thread::spawn(move || self.run());
        ServerHandle { addr, state, shutdown, thread: Some(thread) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn start() -> ServerHandle {
        let engine = Arc::new(Scheduler::builder().workers(1).build());
        ApiServer::bind("127.0.0.1:0", engine).unwrap().spawn()
    }

    /// One-shot request: `Connection: close` asks the keep-alive server
    /// to end the connection after the response so `read_to_string`
    /// terminates.
    fn request(addr: SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_health_over_tcp() {
        let h = start();
        let resp =
            request(h.addr(), "GET /api/health HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200"));
        assert!(resp.contains(r#""status":"ok""#));
        assert!(resp.contains(r#""degraded_datasets":[]"#));
        h.stop();
    }

    #[test]
    fn serves_concurrent_requests() {
        let h = start();
        let addr = h.addr();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || {
                    request(addr, "GET /api/algorithms HTTP/1.1\r\nConnection: close\r\n\r\n")
                })
            })
            .collect();
        for t in threads {
            let resp = t.join().unwrap();
            assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        }
        h.stop();
    }

    #[test]
    fn malformed_request_gets_400() {
        let h = start();
        let resp = request(h.addr(), "BREW /coffee HTCPCP/1.0\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        h.stop();
    }

    #[test]
    fn serving_stats_route_reports_pool_config() {
        let h = start();
        let resp =
            request(h.addr(), "GET /api/serving/stats HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        let body = resp.split("\r\n\r\n").nth(1).unwrap();
        let v: serde_json::Value = serde_json::from_str(body).unwrap();
        assert_eq!(v["workers"].as_u64(), Some(h.serving_state().config().workers as u64));
        assert!(v["accepted"].as_u64().unwrap() >= 1);
        assert_eq!(v["engine"]["workers"].as_u64(), Some(1));
        h.stop();
    }

    #[test]
    fn stop_terminates_accept_loop() {
        let h = start();
        let addr = h.addr();
        h.stop();
        // Subsequent connections are refused or reset quickly; either way
        // the listener socket is gone shortly after stop() returns.
        std::thread::sleep(std::time::Duration::from_millis(50));
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(_) => {
                // The OS may briefly accept on a lingering socket; a second
                // connect after it drains should fail.
            }
        }
    }

    #[test]
    fn dropping_the_handle_stops_and_joins_the_server() {
        let h = start();
        let addr = h.addr();
        // Leave a keep-alive connection idle so the drop also has to win
        // against a worker mid-connection.
        let mut idle = TcpStream::connect(addr).unwrap();
        idle.write_all(b"GET /api/health HTTP/1.1\r\n\r\n").unwrap();
        let mut buf = [0u8; 16];
        idle.read_exact(&mut buf).unwrap();
        drop(h); // must not leak the accept thread or hang
        std::thread::sleep(std::time::Duration::from_millis(50));
        // The worker notices shutdown within its idle poll and closes.
        let mut rest = Vec::new();
        let _ = idle.read_to_end(&mut rest);
    }
}
