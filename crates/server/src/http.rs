//! Minimal HTTP/1.1 request parsing and response serialization.
//!
//! Supports exactly what the demo's API needs: GET/POST/DELETE, path +
//! query string, `Content-Length`-framed bodies, keep-alive connection
//! reuse, and JSON responses. Not a general-purpose HTTP implementation —
//! requests the parser does not understand produce `400 Bad Request`, and
//! oversized headers or bodies produce `413 Payload Too Large` before the
//! payload is buffered (so one client cannot balloon a worker's memory).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};

/// Maximum accepted body size (1 MiB) — uploads beyond this are rejected.
pub const MAX_BODY: usize = 1 << 20;

/// Maximum accepted size of the request line + headers (16 KiB). The
/// reader never buffers more than this before giving up, so a client
/// streaming an endless header line cannot grow worker memory.
pub const MAX_HEADER_BYTES: usize = 16 << 10;

/// A request-parsing failure, carrying the HTTP status the connection
/// should answer with: `400` for malformed requests, `413` for requests
/// that exceed [`MAX_HEADER_BYTES`] / [`MAX_BODY`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// Status to respond with.
    pub status: StatusCode,
    /// Human-readable cause (returned in the JSON error body).
    pub message: String,
}

impl HttpError {
    fn bad(message: impl Into<String>) -> HttpError {
        HttpError { status: StatusCode::BadRequest, message: message.into() }
    }

    fn too_large(message: impl Into<String>) -> HttpError {
        HttpError { status: StatusCode::PayloadTooLarge, message: message.into() }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// HTTP method subset used by the API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// GET.
    Get,
    /// POST.
    Post,
    /// DELETE (dataset edge removal).
    Delete,
}

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Method.
    pub method: Method,
    /// Decoded path, e.g. `/api/tasks`.
    pub path: String,
    /// Raw query string (without `?`), possibly empty.
    pub query: String,
    /// Lower-cased header map.
    pub headers: HashMap<String, String>,
    /// Request body.
    pub body: Vec<u8>,
}

impl Request {
    /// Reads and parses one request from a stream.
    pub fn read_from(stream: &mut impl Read) -> Result<Request, String> {
        let mut reader = BufReader::new(stream);
        match Request::read_buffered(&mut reader) {
            Ok(Some(req)) => Ok(req),
            Ok(None) => Err("empty request line".into()),
            Err(e) => Err(e.message),
        }
    }

    /// Reads one request from an already-buffered stream — the keep-alive
    /// entry point: the caller owns the `BufReader` across requests so
    /// pipelined bytes survive between parses.
    ///
    /// Returns `Ok(None)` on a clean end-of-stream before any request
    /// byte (the client closed an idle keep-alive connection).
    pub fn read_buffered(reader: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
        // The request line and headers are read through a hard cap so an
        // endless header can never be buffered into memory.
        let mut limited = reader.take(MAX_HEADER_BYTES as u64);
        let mut line = String::new();
        limited
            .read_line(&mut line)
            .map_err(|e| HttpError::bad(format!("read request line: {e}")))?;
        if line.is_empty() {
            return Ok(None);
        }
        if !line.ends_with('\n') && limited.limit() == 0 {
            return Err(HttpError::too_large(format!(
                "request line exceeds the {MAX_HEADER_BYTES}-byte header limit"
            )));
        }
        let mut parts = line.split_whitespace();
        let method = match parts.next() {
            Some("GET") => Method::Get,
            Some("POST") => Method::Post,
            Some("DELETE") => Method::Delete,
            Some(other) => return Err(HttpError::bad(format!("unsupported method {other}"))),
            None => return Err(HttpError::bad("empty request line")),
        };
        let target = parts.next().ok_or_else(|| HttpError::bad("missing request target"))?;
        if parts.next().map(|v| !v.starts_with("HTTP/1.")).unwrap_or(true) {
            return Err(HttpError::bad("not HTTP/1.x"));
        }
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), q.to_string()),
            None => (target.to_string(), String::new()),
        };

        let mut headers = HashMap::new();
        loop {
            let mut h = String::new();
            limited.read_line(&mut h).map_err(|e| HttpError::bad(format!("read header: {e}")))?;
            if !h.ends_with('\n') {
                return Err(if limited.limit() == 0 {
                    HttpError::too_large(format!(
                        "headers exceed the {MAX_HEADER_BYTES}-byte limit"
                    ))
                } else {
                    HttpError::bad("truncated headers")
                });
            }
            let h = h.trim_end();
            if h.is_empty() {
                break;
            }
            if let Some((k, v)) = h.split_once(':') {
                headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
            }
        }

        let len: usize = headers
            .get("content-length")
            .map(|v| v.parse().map_err(|_| HttpError::bad("bad content-length")))
            .transpose()?
            .unwrap_or(0);
        if len > MAX_BODY {
            return Err(HttpError::too_large(format!(
                "body of {len} bytes exceeds the {MAX_BODY}-byte limit"
            )));
        }
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body).map_err(|e| HttpError::bad(format!("read body: {e}")))?;

        Ok(Some(Request { method, path: percent_decode(&path), query, headers, body }))
    }

    /// Body as UTF-8.
    pub fn body_str(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|e| format!("body not UTF-8: {e}"))
    }

    /// Splits the path into non-empty segments.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }

    /// Whether the client asked to close the connection after this
    /// request (`Connection: close`). HTTP/1.1 defaults to keep-alive.
    pub fn wants_close(&self) -> bool {
        self.headers.get("connection").map(|v| v.eq_ignore_ascii_case("close")).unwrap_or(false)
    }
}

/// Decodes `%xx` escapes (dataset/source labels contain spaces etc.).
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() {
            let hex = &s[i + 1..i + 3];
            if let Ok(v) = u8::from_str_radix(hex, 16) {
                out.push(v);
                i += 3;
                continue;
            }
        }
        if bytes[i] == b'+' {
            out.push(b' ');
        } else {
            out.push(bytes[i]);
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Response status subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatusCode {
    /// 200.
    Ok,
    /// 202 (task accepted).
    Accepted,
    /// 400.
    BadRequest,
    /// 404.
    NotFound,
    /// 405.
    MethodNotAllowed,
    /// 413 (request headers or body exceed the configured limits).
    PayloadTooLarge,
    /// 429 (admission queue or expensive lane full — retry later).
    TooManyRequests,
    /// 500.
    InternalError,
    /// 503 (storage degraded — mutations rejected, reads still serve).
    ServiceUnavailable,
}

impl StatusCode {
    fn line(self) -> &'static str {
        match self {
            StatusCode::Ok => "200 OK",
            StatusCode::Accepted => "202 Accepted",
            StatusCode::BadRequest => "400 Bad Request",
            StatusCode::NotFound => "404 Not Found",
            StatusCode::MethodNotAllowed => "405 Method Not Allowed",
            StatusCode::PayloadTooLarge => "413 Payload Too Large",
            StatusCode::TooManyRequests => "429 Too Many Requests",
            StatusCode::InternalError => "500 Internal Server Error",
            StatusCode::ServiceUnavailable => "503 Service Unavailable",
        }
    }
}

/// An outgoing response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: StatusCode,
    /// Content type.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Extra response headers (e.g. `Retry-After` on a 429).
    pub headers: Vec<(&'static str, String)>,
}

impl Response {
    /// JSON response from a serializable value.
    pub fn json(status: StatusCode, value: &impl serde::Serialize) -> Response {
        let body = serde_json::to_vec(value).unwrap_or_else(|_| b"null".to_vec());
        Response { status, content_type: "application/json", body, headers: Vec::new() }
    }

    /// JSON error payload `{"error": msg}`.
    pub fn error(status: StatusCode, msg: impl Into<String>) -> Response {
        #[derive(serde::Serialize)]
        struct Err1 {
            error: String,
        }
        Response::json(status, &Err1 { error: msg.into() })
    }

    /// Plain-text response.
    pub fn text(status: StatusCode, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
            headers: Vec::new(),
        }
    }

    /// Adds a response header.
    pub fn header(mut self, name: &'static str, value: impl ToString) -> Response {
        self.headers.push((name, value.to_string()));
        self
    }

    /// The shed response: `429 Too Many Requests` with a `Retry-After`
    /// hint (seconds), sent when the admission queue or a concurrency
    /// lane is full.
    pub fn overloaded(msg: impl Into<String>, retry_after_secs: u64) -> Response {
        Response::error(StatusCode::TooManyRequests, msg).header("retry-after", retry_after_secs)
    }

    /// The degraded-storage response: `503 Service Unavailable` with a
    /// typed JSON body and a `Retry-After` hint, sent when a mutation
    /// hits a dataset whose durable store is failing (reads keep
    /// serving; only writes bounce).
    pub fn unavailable(msg: impl Into<String>, retry_after_secs: u64) -> Response {
        #[derive(serde::Serialize)]
        struct Degraded {
            error: String,
            degraded: bool,
            retry_after_secs: u64,
        }
        Response::json(
            StatusCode::ServiceUnavailable,
            &Degraded { error: msg.into(), degraded: true, retry_after_secs },
        )
        .header("retry-after", retry_after_secs)
    }

    /// Serializes onto a stream, closing the connection after (the
    /// one-shot path; keep-alive serving uses [`Response::write_conn`]).
    pub fn write_to(&self, stream: &mut impl Write) -> std::io::Result<()> {
        self.write_conn(stream, false)
    }

    /// Serializes onto a stream with an explicit connection disposition:
    /// `keep_alive` keeps the connection open for the next request.
    pub fn write_conn(&self, stream: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        write!(
            stream,
            "HTTP/1.1 {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
            self.status.line(),
            self.content_type,
            self.body.len()
        )?;
        for (name, value) in &self.headers {
            write!(stream, "{name}: {value}\r\n")?;
        }
        write!(stream, "connection: {}\r\n\r\n", if keep_alive { "keep-alive" } else { "close" })?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Request, String> {
        Request::read_from(&mut Cursor::new(raw.as_bytes().to_vec()))
    }

    #[test]
    fn parses_get() {
        let r = parse("GET /api/datasets?kind=wiki HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.path, "/api/datasets");
        assert_eq!(r.query, "kind=wiki");
        assert_eq!(r.segments(), vec!["api", "datasets"]);
        assert_eq!(r.headers.get("host").map(String::as_str), Some("x"));
    }

    #[test]
    fn parses_post_with_body() {
        let body = r#"{"a":1}"#;
        let raw =
            format!("POST /api/tasks HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}", body.len());
        let r = parse(&raw).unwrap();
        assert_eq!(r.method, Method::Post);
        assert_eq!(r.body_str().unwrap(), body);
    }

    #[test]
    fn percent_decoding_in_path() {
        let r = parse("GET /api/datasets/Fake%20news HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.path, "/api/datasets/Fake news");
        assert_eq!(percent_decode("a+b%2Fc"), "a b/c");
        assert_eq!(percent_decode("100%"), "100%");
    }

    #[test]
    fn parses_delete() {
        let r = parse("DELETE /api/datasets/d/edges HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.method, Method::Delete);
        assert_eq!(r.segments(), vec!["api", "datasets", "d", "edges"]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("PATCH /x HTTP/1.1\r\n\r\n").is_err());
        assert!(parse("\r\n").is_err());
        assert!(parse("GET /x\r\n\r\n").is_err());
        assert!(parse("GET /x SMTP\r\n\r\n").is_err());
        assert!(parse("POST /x HTTP/1.1\r\nContent-Length: zebra\r\n\r\n").is_err());
    }

    #[test]
    fn rejects_oversized_body() {
        let raw = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(parse(&raw).is_err());
        // The typed path reports 413, before any body byte is buffered.
        let mut reader = Cursor::new(raw.into_bytes());
        let err = Request::read_buffered(&mut reader).unwrap_err();
        assert_eq!(err.status, StatusCode::PayloadTooLarge);
    }

    #[test]
    fn rejects_oversized_headers_without_buffering_them() {
        // An endless header line: only MAX_HEADER_BYTES are ever read.
        let mut raw = b"GET /x HTTP/1.1\r\nx-junk: ".to_vec();
        raw.extend(vec![b'a'; MAX_HEADER_BYTES * 2]);
        let mut reader = Cursor::new(raw);
        let err = Request::read_buffered(&mut reader).unwrap_err();
        assert_eq!(err.status, StatusCode::PayloadTooLarge);
        // A single oversized request line is also refused.
        let mut raw = b"GET /".to_vec();
        raw.extend(vec![b'x'; MAX_HEADER_BYTES * 2]);
        let mut reader = Cursor::new(raw);
        let err = Request::read_buffered(&mut reader).unwrap_err();
        assert_eq!(err.status, StatusCode::PayloadTooLarge);
    }

    #[test]
    fn buffered_reads_parse_sequential_requests() {
        let raw = "GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi\
                   GET /c HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut reader = Cursor::new(raw.as_bytes().to_vec());
        let a = Request::read_buffered(&mut reader).unwrap().unwrap();
        assert_eq!(a.path, "/a");
        assert!(!a.wants_close());
        let b = Request::read_buffered(&mut reader).unwrap().unwrap();
        assert_eq!(b.path, "/b");
        assert_eq!(b.body_str().unwrap(), "hi");
        let c = Request::read_buffered(&mut reader).unwrap().unwrap();
        assert_eq!(c.path, "/c");
        assert!(c.wants_close());
        // Clean end-of-stream: no request, no error.
        assert!(Request::read_buffered(&mut reader).unwrap().is_none());
    }

    #[test]
    fn keep_alive_and_retry_after_serialization() {
        let mut buf = Vec::new();
        Response::overloaded("try later", 2).write_conn(&mut buf, true).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("HTTP/1.1 429"));
        assert!(s.contains("retry-after: 2\r\n"));
        assert!(s.contains("connection: keep-alive\r\n"));
        let mut buf = Vec::new();
        Response::text(StatusCode::Ok, "x").write_conn(&mut buf, false).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("connection: close\r\n"));
    }

    #[test]
    fn unavailable_serialization() {
        let mut buf = Vec::new();
        Response::unavailable("storage degraded", 8).write_conn(&mut buf, true).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("HTTP/1.1 503 Service Unavailable"));
        assert!(s.contains("retry-after: 8\r\n"));
        assert!(s.contains(r#""degraded":true"#));
        assert!(s.contains(r#""retry_after_secs":8"#));
    }

    #[test]
    fn truncated_body_errors() {
        let raw = "POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(parse(raw).is_err());
    }

    #[test]
    fn response_serialization() {
        let mut buf = Vec::new();
        Response::text(StatusCode::Ok, "hi").write_to(&mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.contains("content-length: 2"));
        assert!(s.ends_with("hi"));
    }

    #[test]
    fn json_and_error_responses() {
        let mut buf = Vec::new();
        Response::error(StatusCode::NotFound, "nope").write_to(&mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("HTTP/1.1 404"));
        assert!(s.contains(r#"{"error":"nope"}"#));
    }
}
