//! Minimal HTTP/1.1 request parsing and response serialization.
//!
//! Supports exactly what the demo's API needs: GET/POST/DELETE, path +
//! query string, `Content-Length`-framed bodies, and JSON responses. Not
//! a general-purpose HTTP implementation — requests the parser does not
//! understand produce `400 Bad Request`.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};

/// Maximum accepted body size (1 MiB) — uploads beyond this are rejected.
pub const MAX_BODY: usize = 1 << 20;

/// HTTP method subset used by the API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// GET.
    Get,
    /// POST.
    Post,
    /// DELETE (dataset edge removal).
    Delete,
}

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Method.
    pub method: Method,
    /// Decoded path, e.g. `/api/tasks`.
    pub path: String,
    /// Raw query string (without `?`), possibly empty.
    pub query: String,
    /// Lower-cased header map.
    pub headers: HashMap<String, String>,
    /// Request body.
    pub body: Vec<u8>,
}

impl Request {
    /// Reads and parses one request from a stream.
    pub fn read_from(stream: &mut impl Read) -> Result<Request, String> {
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).map_err(|e| format!("read request line: {e}"))?;
        let mut parts = line.split_whitespace();
        let method = match parts.next() {
            Some("GET") => Method::Get,
            Some("POST") => Method::Post,
            Some("DELETE") => Method::Delete,
            Some(other) => return Err(format!("unsupported method {other}")),
            None => return Err("empty request line".into()),
        };
        let target = parts.next().ok_or("missing request target")?;
        if parts.next().map(|v| !v.starts_with("HTTP/1.")).unwrap_or(true) {
            return Err("not HTTP/1.x".into());
        }
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), q.to_string()),
            None => (target.to_string(), String::new()),
        };

        let mut headers = HashMap::new();
        loop {
            let mut h = String::new();
            reader.read_line(&mut h).map_err(|e| format!("read header: {e}"))?;
            let h = h.trim_end();
            if h.is_empty() {
                break;
            }
            if let Some((k, v)) = h.split_once(':') {
                headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
            }
        }

        let len: usize = headers
            .get("content-length")
            .map(|v| v.parse().map_err(|_| "bad content-length".to_string()))
            .transpose()?
            .unwrap_or(0);
        if len > MAX_BODY {
            return Err(format!("body too large ({len} bytes)"));
        }
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body).map_err(|e| format!("read body: {e}"))?;

        Ok(Request { method, path: percent_decode(&path), query, headers, body })
    }

    /// Body as UTF-8.
    pub fn body_str(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|e| format!("body not UTF-8: {e}"))
    }

    /// Splits the path into non-empty segments.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// Decodes `%xx` escapes (dataset/source labels contain spaces etc.).
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() {
            let hex = &s[i + 1..i + 3];
            if let Ok(v) = u8::from_str_radix(hex, 16) {
                out.push(v);
                i += 3;
                continue;
            }
        }
        if bytes[i] == b'+' {
            out.push(b' ');
        } else {
            out.push(bytes[i]);
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Response status subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatusCode {
    /// 200.
    Ok,
    /// 202 (task accepted).
    Accepted,
    /// 400.
    BadRequest,
    /// 404.
    NotFound,
    /// 405.
    MethodNotAllowed,
    /// 500.
    InternalError,
}

impl StatusCode {
    fn line(self) -> &'static str {
        match self {
            StatusCode::Ok => "200 OK",
            StatusCode::Accepted => "202 Accepted",
            StatusCode::BadRequest => "400 Bad Request",
            StatusCode::NotFound => "404 Not Found",
            StatusCode::MethodNotAllowed => "405 Method Not Allowed",
            StatusCode::InternalError => "500 Internal Server Error",
        }
    }
}

/// An outgoing response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: StatusCode,
    /// Content type.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// JSON response from a serializable value.
    pub fn json(status: StatusCode, value: &impl serde::Serialize) -> Response {
        let body = serde_json::to_vec(value).unwrap_or_else(|_| b"null".to_vec());
        Response { status, content_type: "application/json", body }
    }

    /// JSON error payload `{"error": msg}`.
    pub fn error(status: StatusCode, msg: impl Into<String>) -> Response {
        #[derive(serde::Serialize)]
        struct Err1 {
            error: String,
        }
        Response::json(status, &Err1 { error: msg.into() })
    }

    /// Plain-text response.
    pub fn text(status: StatusCode, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
        }
    }

    /// Serializes onto a stream.
    pub fn write_to(&self, stream: &mut impl Write) -> std::io::Result<()> {
        write!(
            stream,
            "HTTP/1.1 {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
            self.status.line(),
            self.content_type,
            self.body.len()
        )?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Request, String> {
        Request::read_from(&mut Cursor::new(raw.as_bytes().to_vec()))
    }

    #[test]
    fn parses_get() {
        let r = parse("GET /api/datasets?kind=wiki HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.path, "/api/datasets");
        assert_eq!(r.query, "kind=wiki");
        assert_eq!(r.segments(), vec!["api", "datasets"]);
        assert_eq!(r.headers.get("host").map(String::as_str), Some("x"));
    }

    #[test]
    fn parses_post_with_body() {
        let body = r#"{"a":1}"#;
        let raw =
            format!("POST /api/tasks HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}", body.len());
        let r = parse(&raw).unwrap();
        assert_eq!(r.method, Method::Post);
        assert_eq!(r.body_str().unwrap(), body);
    }

    #[test]
    fn percent_decoding_in_path() {
        let r = parse("GET /api/datasets/Fake%20news HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.path, "/api/datasets/Fake news");
        assert_eq!(percent_decode("a+b%2Fc"), "a b/c");
        assert_eq!(percent_decode("100%"), "100%");
    }

    #[test]
    fn parses_delete() {
        let r = parse("DELETE /api/datasets/d/edges HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.method, Method::Delete);
        assert_eq!(r.segments(), vec!["api", "datasets", "d", "edges"]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("PATCH /x HTTP/1.1\r\n\r\n").is_err());
        assert!(parse("\r\n").is_err());
        assert!(parse("GET /x\r\n\r\n").is_err());
        assert!(parse("GET /x SMTP\r\n\r\n").is_err());
        assert!(parse("POST /x HTTP/1.1\r\nContent-Length: zebra\r\n\r\n").is_err());
    }

    #[test]
    fn rejects_oversized_body() {
        let raw = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(parse(&raw).is_err());
    }

    #[test]
    fn truncated_body_errors() {
        let raw = "POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(parse(raw).is_err());
    }

    #[test]
    fn response_serialization() {
        let mut buf = Vec::new();
        Response::text(StatusCode::Ok, "hi").write_to(&mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.contains("content-length: 2"));
        assert!(s.ends_with("hi"));
    }

    #[test]
    fn json_and_error_responses() {
        let mut buf = Vec::new();
        Response::error(StatusCode::NotFound, "nope").write_to(&mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("HTTP/1.1 404"));
        assert!(s.contains(r#"{"error":"nope"}"#));
    }
}
