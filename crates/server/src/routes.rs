//! Request routing: maps the REST surface onto the engine.

use crate::http::{Method, Request, Response, StatusCode};
use relengine::{BatchSpec, Scheduler, TaskId, TaskSpec};
use serde::Serialize;
use std::sync::Arc;

/// Routes one request to its handler.
pub fn route(req: &Request, engine: &Arc<Scheduler>) -> Response {
    let segments = req.segments();
    match (req.method, segments.as_slice()) {
        (Method::Get, []) => index(),
        (Method::Get, ["api", "health"]) => health(engine),
        (Method::Get, ["api", "metrics"]) => Response::json(StatusCode::Ok, &engine.metrics()),
        (Method::Get, ["api", "datasets"]) => list_datasets(engine),
        (Method::Post, ["api", "datasets"]) => upload_dataset(req, engine),
        (Method::Get, ["api", "datasets", id]) => get_dataset(id, engine),
        (Method::Get, ["api", "datasets", id, "stats"]) => dataset_stats(id, engine),
        (Method::Post, ["api", "datasets", id, "tier"]) => set_dataset_tier(id, req, engine),
        (Method::Post, ["api", "datasets", id, "edges"]) => mutate_edges(id, req, engine, true),
        (Method::Delete, ["api", "datasets", id, "edges"]) => mutate_edges(id, req, engine, false),
        (Method::Get, ["api", "algorithms"]) => list_algorithms(),
        (Method::Post, ["api", "tasks"]) => submit_task(req, engine),
        (Method::Post, ["api", "batch"]) => submit_batch(req, engine),
        (Method::Get, ["api", "cache", "stats"]) => {
            Response::json(StatusCode::Ok, &engine.cache_stats())
        }
        (Method::Get, ["api", "tasks", id]) => task_status(id, engine),
        (Method::Get, ["api", "tasks", id, "result"]) => task_result(id, engine),
        (Method::Get, ["api", "tasks", id, "log"]) => task_log(id, engine),
        (Method::Post, ["api", "tasks", id, "cancel"]) => cancel_task(id, engine),
        (Method::Post, ["api", "query-sets"]) => submit_query_set(req, engine),
        _ => Response::error(StatusCode::NotFound, format!("no route for {}", req.path)),
    }
}

/// A minimal landing page standing in for the demo's Web UI entry point.
fn index() -> Response {
    let html = "<!doctype html>\n<html><head><title>CycleRank demo platform</title></head>\n\
        <body><h1>CycleRank demo platform</h1>\n\
        <p>Reproduction of <em>Comparing Personalized Relevance Algorithms for \
        Directed Graphs</em> (ICDE 2024).</p>\n\
        <ul>\n\
        <li>GET /api/health — liveness</li>\n\
        <li>GET /api/metrics — task counts</li>\n\
        <li>GET /api/datasets — the 50-dataset catalog (+ uploads)</li>\n\
        <li>POST /api/datasets — upload a graph {name?, format?, content}</li>\n\
        <li>GET /api/datasets/{id} — one catalog entry + memory/locality footprint</li>\n\
        <li>GET /api/datasets/{id}/stats — structural statistics + graph version, \
        memory-tier footprint (bytes/edge per representation, precision lanes) \
        (+ journal/snapshot/image footprint when running with --data-dir)</li>\n\
        <li>POST /api/datasets/{id}/tier — select the serving representation {tier: csr|compact}</li>\n\
        <li>POST /api/datasets/{id}/edges — insert/update edges {edges: [{source, target, weight?}]}</li>\n\
        <li>DELETE /api/datasets/{id}/edges — remove edges (same body; bumps the graph version)</li>\n\
        <li>GET /api/algorithms — registered algorithms with parameter schemas</li>\n\
        <li>POST /api/tasks — submit a task (?top_k=k for top-k-only serving; \
        ?sync=1 to wait and return the result in this response)</li>\n\
        <li>POST /api/batch — submit one algorithm over many seeds (one fused solve; ?top_k=k)</li>\n\
        <li>GET /api/cache/stats — result-cache hit/miss/eviction counters</li>\n\
        <li>GET /api/serving/stats — worker pool, admission queue, and load-shed counters</li>\n\
        <li>GET /api/tasks/{id} — poll status</li>\n\
        <li>GET /api/tasks/{id}/result — fetch result</li>\n\
        <li>GET /api/tasks/{id}/log — fetch log</li>\n\
        <li>POST /api/query-sets — submit a comparison</li>\n\
        </ul></body></html>\n";
    Response {
        status: StatusCode::Ok,
        content_type: "text/html; charset=utf-8",
        body: html.into(),
        headers: Vec::new(),
    }
}

/// Liveness plus storage health: reports `"degraded"` (still 200 — the
/// process is alive and reads serve) with the affected datasets when any
/// dataset's storage backend is failing.
fn health(engine: &Arc<Scheduler>) -> Response {
    #[derive(Serialize)]
    struct Health {
        status: &'static str,
        degraded_datasets: Vec<relengine::DegradedDataset>,
    }
    let degraded_datasets = engine.executor().degraded_datasets();
    let status = if degraded_datasets.is_empty() { "ok" } else { "degraded" };
    Response::json(StatusCode::Ok, &Health { status, degraded_datasets })
}

fn list_datasets(engine: &Arc<Scheduler>) -> Response {
    #[derive(Serialize)]
    struct Catalog {
        datasets: Vec<reldata::DatasetSpec>,
        uploads: Vec<String>,
    }
    // Preserve backwards compatibility: a bare array when no uploads exist.
    let uploads = engine.executor().uploaded_ids();
    if uploads.is_empty() {
        Response::json(StatusCode::Ok, &reldata::catalog())
    } else {
        Response::json(StatusCode::Ok, &Catalog { datasets: reldata::catalog(), uploads })
    }
}

/// One catalog entry, enriched with the loaded graph's footprint
/// diagnostics (node/edge counts, adjacency bytes, mean edge span) so
/// reordering and memory work is observable over the API.
fn get_dataset(id: &str, engine: &Arc<Scheduler>) -> Response {
    #[derive(Serialize)]
    struct DatasetDetail {
        id: String,
        name: String,
        kind: reldata::DatasetKind,
        description: String,
        approx_nodes: u32,
        reorder: Option<relgraph::NodeOrdering>,
        nodes: usize,
        edges: usize,
        /// Bytes used by the CSR adjacency structure.
        memory_bytes: usize,
        /// Mean |u − v| over edges — the locality figure reordering
        /// shrinks.
        mean_edge_span: f64,
    }
    let Some(s) = reldata::registry::spec(id) else {
        return Response::error(StatusCode::NotFound, format!("unknown dataset {id:?}"));
    };
    // Registry datasets are deterministic, so the footprint figures are
    // computed once per process and memoized. Reuse an already-loaded
    // graph when the executor has one, but never *pin* one for a metadata
    // read: a client sweeping the catalog would otherwise force-load and
    // permanently cache all 50 datasets. Uncached entries are measured
    // from a temporary load that is dropped after measuring.
    type Footprint = (usize, usize, usize, f64);
    static FOOTPRINTS: std::sync::OnceLock<
        std::sync::Mutex<std::collections::HashMap<String, Footprint>>,
    > = std::sync::OnceLock::new();
    let footprints = FOOTPRINTS.get_or_init(Default::default);
    let cached = footprints.lock().unwrap_or_else(|e| e.into_inner()).get(id).copied();
    let footprint = match cached {
        Some(f) => Ok(f),
        None => {
            let loaded = match engine.executor().dataset_if_cached(id) {
                Some(g) => Some(g),
                None => reldata::load_dataset(id).map(Arc::new),
            };
            match loaded {
                Some(g) => {
                    let f = (g.node_count(), g.edge_count(), g.memory_bytes(), g.mean_edge_span());
                    footprints.lock().unwrap_or_else(|e| e.into_inner()).insert(id.to_string(), f);
                    Ok(f)
                }
                None => Err(format!("dataset {id:?} failed to load")),
            }
        }
    };
    match footprint {
        Ok((nodes, edges, memory_bytes, mean_edge_span)) => Response::json(
            StatusCode::Ok,
            &DatasetDetail {
                id: s.id,
                name: s.name,
                kind: s.kind,
                description: s.description,
                approx_nodes: s.approx_nodes,
                reorder: s.reorder,
                nodes,
                edges,
                memory_bytes,
                mean_edge_span,
            },
        ),
        Err(e) => Response::error(StatusCode::InternalError, e),
    }
}

/// Uploads a user dataset: JSON `{name?, format?, content}`; the graph is
/// parsed with `relformats` (sniffing when `format` is omitted) and
/// registered under `upload-<uuid>` (or the requested `name`).
fn upload_dataset(req: &Request, engine: &Arc<Scheduler>) -> Response {
    #[derive(serde::Deserialize)]
    struct Upload {
        name: Option<String>,
        format: Option<String>,
        content: String,
    }
    #[derive(Serialize)]
    struct Uploaded {
        dataset_id: String,
        nodes: usize,
        edges: usize,
    }
    let body = match req.body_str() {
        Ok(b) => b,
        Err(e) => return Response::error(StatusCode::BadRequest, e),
    };
    let upload: Upload = match serde_json::from_str(body) {
        Ok(u) => u,
        Err(e) => return Response::error(StatusCode::BadRequest, format!("bad upload: {e}")),
    };
    let format = match upload.format.as_deref() {
        Some(f) => match f.parse::<relformats::Format>() {
            Ok(f) => Some(f),
            Err(e) => return Response::error(StatusCode::BadRequest, e),
        },
        None => None,
    };
    let graph = match relformats::load_graph_from_str(&upload.content, format) {
        Ok(g) => g,
        Err(e) => return Response::error(StatusCode::BadRequest, format!("parse failed: {e}")),
    };
    let id = upload.name.unwrap_or_else(|| format!("upload-{}", relengine::task::TaskId::fresh()));
    let (nodes, edges) = (graph.node_count(), graph.edge_count());
    match engine.register_dataset(&id, graph) {
        Ok(()) => Response::json(StatusCode::Ok, &Uploaded { dataset_id: id, nodes, edges }),
        Err(e) => Response::error(StatusCode::BadRequest, e.to_string()),
    }
}

/// Structural statistics of any loadable dataset (registry or upload),
/// plus the dataset's current graph **version** (0 until the first edge
/// mutation) so clients can detect concurrent mutation between reads.
/// When the server runs with `--data-dir`, a `persistence` object reports
/// the dataset's durable footprint: snapshot version/bytes and the
/// journal's record count, byte size, and highest durable version.
fn dataset_stats(id: &str, engine: &Arc<Scheduler>) -> Response {
    match engine.executor().dataset_versioned(id) {
        Ok((g, version)) => {
            let mut value = serde_json::to_value(&relgraph::GraphStats::compute(&g));
            if let serde_json::Value::Object(map) = &mut value {
                map.insert("version".to_string(), serde_json::Value::U64(version));
                if let Ok(tiers) = engine.executor().dataset_tier_stats(id) {
                    map.insert("memory".to_string(), serde_json::to_value(&tiers));
                }
                if let Some(stats) = engine.executor().persistence_stats(id) {
                    map.insert("persistence".to_string(), serde_json::to_value(&stats));
                }
                if let Some(degraded) = engine.executor().degraded_status(id) {
                    map.insert("degraded".to_string(), serde_json::to_value(&degraded));
                }
            }
            Response::json(StatusCode::Ok, &value)
        }
        Err(e) => Response::error(StatusCode::NotFound, e.to_string()),
    }
}

/// `POST /api/datasets/{id}/tier`: body `{"tier": "csr" | "compact"}` —
/// selects which in-memory representation serves the dataset's queries.
/// `compact` routes the kernel-family algorithms through the delta-varint
/// mirror (≈⅓ the bytes per edge); algorithms without a compact path fall
/// back to the CSR transparently. Responds with the dataset's updated
/// memory-tier stats.
fn set_dataset_tier(id: &str, req: &Request, engine: &Arc<Scheduler>) -> Response {
    #[derive(serde::Deserialize)]
    struct Body {
        tier: String,
    }
    let body = match req.body_str() {
        Ok(b) => b,
        Err(e) => return Response::error(StatusCode::BadRequest, e),
    };
    let body: Body = match serde_json::from_str(body) {
        Ok(b) => b,
        Err(e) => return Response::error(StatusCode::BadRequest, format!("bad tier body: {e}")),
    };
    let tier: relengine::GraphTier = match body.tier.parse() {
        Ok(t) => t,
        Err(e) => return Response::error(StatusCode::BadRequest, e),
    };
    if let Err(e) = engine.executor().set_dataset_tier(id, tier) {
        return Response::error(StatusCode::NotFound, e.to_string());
    }
    match engine.executor().dataset_tier_stats(id) {
        Ok(stats) => Response::json(StatusCode::Ok, &stats),
        Err(e) => Response::error(StatusCode::InternalError, e.to_string()),
    }
}

/// `POST /api/datasets/{id}/edges` (insert/update) and
/// `DELETE /api/datasets/{id}/edges` (remove): body
/// `{"edges": [{"source", "target", "weight"?}, ...]}`. The batch applies
/// atomically, bumps the dataset's graph version, and invalidates every
/// cached result of the dataset — a repeated identical query after a 200
/// from here is always recomputed against the new graph.
fn mutate_edges(id: &str, req: &Request, engine: &Arc<Scheduler>, insert: bool) -> Response {
    #[derive(serde::Deserialize)]
    struct Edges {
        edges: Vec<relengine::EdgeSpec>,
    }
    let body = match req.body_str() {
        Ok(b) => b,
        Err(e) => return Response::error(StatusCode::BadRequest, e),
    };
    let edges: Edges = match serde_json::from_str(body) {
        Ok(e) => e,
        Err(e) => return Response::error(StatusCode::BadRequest, format!("bad edge batch: {e}")),
    };
    if edges.edges.is_empty() {
        return Response::error(StatusCode::BadRequest, "edge batch is empty");
    }
    const MAX_BATCH_EDGES: usize = 10_000;
    if edges.edges.len() > MAX_BATCH_EDGES {
        return Response::error(
            StatusCode::BadRequest,
            format!(
                "edge batch has {} entries; the per-request limit is {MAX_BATCH_EDGES}",
                edges.edges.len()
            ),
        );
    }
    let ops: Vec<relengine::EdgeOp> = edges
        .edges
        .into_iter()
        .map(|s| if insert { relengine::EdgeOp::Add(s) } else { relengine::EdgeOp::Remove(s) })
        .collect();
    match engine.mutate_dataset(id, &ops) {
        Ok(outcome) => Response::json(StatusCode::Ok, &outcome),
        Err(e @ relengine::EngineError::UnknownDataset(_)) => {
            Response::error(StatusCode::NotFound, e.to_string())
        }
        Err(e @ relengine::EngineError::InvalidMutation(_)) => {
            Response::error(StatusCode::BadRequest, e.to_string())
        }
        // Storage-layer failures degrade the dataset, they don't kill the
        // server: the mutation was rejected *before* any in-memory commit,
        // so the client can simply retry after the hinted delay. Reads are
        // unaffected and keep serving.
        Err(e @ relengine::EngineError::Storage(_)) => Response::unavailable(e.to_string(), 1),
        Err(relengine::EngineError::Degraded { dataset, retry_after_secs, reason }) => {
            Response::unavailable(
                format!(
                    "dataset {dataset:?} is degraded (storage failing: {reason}); \
                     mutations rejected, reads still serving"
                ),
                retry_after_secs,
            )
        }
        Err(e) => Response::error(StatusCode::InternalError, e.to_string()),
    }
}

/// `GET /api/algorithms`: every algorithm in the registry — the seven
/// paper algorithms plus any runtime registrations — with id, display
/// name, personalization requirement, score/ranking output kind, and the
/// accepted parameters as a JSON schema-ish list.
fn list_algorithms() -> Response {
    Response::json(StatusCode::Ok, &relcore::AlgorithmRegistry::global().descriptors())
}

#[derive(Serialize)]
struct Submitted {
    task_id: String,
}

/// The value of query parameter `name`, if present (`?a=1&b=2` form;
/// values are not percent-decoded — the parameters we read are numeric).
fn query_param<'a>(req: &'a Request, name: &str) -> Option<&'a str> {
    req.query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == name).then_some(v)
    })
}

/// Parses the `?top_k=` query parameter shared by `POST /api/tasks` and
/// `POST /api/batch`: `Ok(Some(k))` enables top-k-only serving mode with
/// `k` entries, `Ok(None)` means the parameter is absent.
fn top_k_param(req: &Request) -> Result<Option<usize>, Response> {
    match query_param(req, "top_k") {
        None => Ok(None),
        Some(raw) => match raw.parse::<usize>() {
            Ok(k) => Ok(Some(k)),
            Err(_) => Err(Response::error(
                StatusCode::BadRequest,
                format!("bad top_k query parameter {raw:?} (expected a non-negative integer)"),
            )),
        },
    }
}

/// Whether `?sync=1` (or `?sync=true`) requests synchronous serving:
/// the response carries the finished task's result instead of a task id
/// to poll. The serving pool uses this to route cold synchronous solves
/// through the expensive admission lane.
pub(crate) fn wants_sync(req: &Request) -> bool {
    matches!(query_param(req, "sync"), Some("1") | Some("true"))
}

/// The task spec a `POST /api/tasks` request would execute, with the
/// `?top_k=` override applied — what the serving pool's lane classifier
/// inspects (cache-answerable or top-k ⇒ cheap). `None` when the body or
/// query is malformed; the route answers 400 quickly in that case, so
/// classification treats it as cheap.
pub(crate) fn effective_task_spec(req: &Request) -> Option<TaskSpec> {
    let mut spec: TaskSpec = serde_json::from_str(req.body_str().ok()?).ok()?;
    if let Ok(Some(k)) = top_k_param(req) {
        spec.top_k = k;
        spec.params.top_k = Some(k);
    }
    Some(spec)
}

/// How long a `?sync=1` request may wait for its solve before answering
/// 500 (the task keeps running; the id in the error lets the client fall
/// back to polling).
const SYNC_WAIT: std::time::Duration = std::time::Duration::from_secs(120);

fn submit_task(req: &Request, engine: &Arc<Scheduler>) -> Response {
    let body = match req.body_str() {
        Ok(b) => b,
        Err(e) => return Response::error(StatusCode::BadRequest, e),
    };
    let mut spec: TaskSpec = match serde_json::from_str(body) {
        Ok(s) => s,
        Err(e) => return Response::error(StatusCode::BadRequest, format!("bad task spec: {e}")),
    };
    // `?top_k=k` switches the task into top-k-only serving mode (pruned /
    // certified-push result paths) and trims the stored result to k.
    match top_k_param(req) {
        Ok(Some(k)) => {
            spec.top_k = k;
            spec.params.top_k = Some(k);
        }
        Ok(None) => {}
        Err(resp) => return resp,
    }
    // Personalization requirements come from the algorithm's registry
    // entry, not from enum-matching in this crate.
    let personalized = relcore::AlgorithmRegistry::global()
        .get(spec.params.algorithm.id())
        .map(|a| a.is_personalized())
        .unwrap_or(false);
    if personalized && spec.source.is_none() {
        return Response::error(StatusCode::BadRequest, "personalized algorithm requires a source");
    }
    let sync = wants_sync(req);
    let id = engine.submit(spec);
    if sync {
        return match engine.wait(&id, SYNC_WAIT) {
            Ok(result) => Response::json(StatusCode::Ok, &result),
            Err(e @ relengine::EngineError::TaskFailed(_)) => {
                Response::error(StatusCode::BadRequest, e.to_string())
            }
            Err(e) => {
                Response::error(StatusCode::InternalError, format!("sync wait for task {id}: {e}"))
            }
        };
    }
    Response::json(StatusCode::Accepted, &Submitted { task_id: id.to_string() })
}

/// `POST /api/batch`: many seeds, one dataset, one (personalized)
/// algorithm. Body is a [`BatchSpec`]: `{dataset, params, sources,
/// top_k?}`. Seeds missing from the result cache share one multi-vector
/// solve; each seed gets its own task id to poll.
fn submit_batch(req: &Request, engine: &Arc<Scheduler>) -> Response {
    #[derive(Serialize)]
    struct BatchSubmitted {
        task_ids: Vec<String>,
    }
    let body = match req.body_str() {
        Ok(b) => b,
        Err(e) => return Response::error(StatusCode::BadRequest, e),
    };
    let mut spec: BatchSpec = match serde_json::from_str(body) {
        Ok(s) => s,
        Err(e) => return Response::error(StatusCode::BadRequest, format!("bad batch spec: {e}")),
    };
    match top_k_param(req) {
        Ok(Some(k)) => {
            spec.top_k = k;
            spec.params.top_k = Some(k);
        }
        Ok(None) => {}
        Err(resp) => return resp,
    }
    if spec.sources.is_empty() {
        return Response::error(StatusCode::BadRequest, "batch has no sources");
    }
    // One request fans out to one task per seed; bound the fan-out so a
    // single POST cannot flood the queue (split larger seed sets into
    // several requests).
    const MAX_BATCH_SOURCES: usize = 1024;
    if spec.sources.len() > MAX_BATCH_SOURCES {
        return Response::error(
            StatusCode::BadRequest,
            format!(
                "batch has {} sources; the per-request limit is {MAX_BATCH_SOURCES}",
                spec.sources.len()
            ),
        );
    }
    // Batches personalize per seed; global algorithms have nothing to
    // batch over.
    let personalized = relcore::AlgorithmRegistry::global()
        .get(spec.params.algorithm.id())
        .map(|a| a.is_personalized())
        .unwrap_or(false);
    if !personalized {
        return Response::error(
            StatusCode::BadRequest,
            "batch queries require a personalized algorithm (each seed is one personalization)",
        );
    }
    let ids = engine.submit_batch(spec);
    Response::json(
        StatusCode::Accepted,
        &BatchSubmitted { task_ids: ids.into_iter().map(|i| i.to_string()).collect() },
    )
}

fn submit_query_set(req: &Request, engine: &Arc<Scheduler>) -> Response {
    #[derive(Serialize)]
    struct QuerySetSubmitted {
        query_set_id: String,
        task_ids: Vec<String>,
    }
    let body = match req.body_str() {
        Ok(b) => b,
        Err(e) => return Response::error(StatusCode::BadRequest, e),
    };
    let specs: Vec<TaskSpec> = match serde_json::from_str(body) {
        Ok(s) => s,
        Err(e) => return Response::error(StatusCode::BadRequest, format!("bad query set: {e}")),
    };
    if specs.is_empty() {
        return Response::error(StatusCode::BadRequest, "query set is empty");
    }
    let mut qs = relengine::QuerySet::new();
    for s in specs {
        qs.add(s);
    }
    let ids = engine.submit_query_set(&qs);
    Response::json(
        StatusCode::Accepted,
        &QuerySetSubmitted {
            query_set_id: qs.id,
            task_ids: ids.into_iter().map(|i| i.to_string()).collect(),
        },
    )
}

/// Cancels a queued task; running/terminal tasks report `canceled: false`.
fn cancel_task(id: &str, engine: &Arc<Scheduler>) -> Response {
    #[derive(Serialize)]
    struct Canceled {
        canceled: bool,
    }
    let tid = TaskId(id.to_string());
    if engine.board().get(&tid).is_none() {
        return Response::error(StatusCode::NotFound, format!("unknown task {id:?}"));
    }
    Response::json(StatusCode::Ok, &Canceled { canceled: engine.cancel(&tid) })
}

fn task_status(id: &str, engine: &Arc<Scheduler>) -> Response {
    match engine.board().get(&TaskId(id.to_string())) {
        Some(record) => Response::json(StatusCode::Ok, &record),
        None => Response::error(StatusCode::NotFound, format!("unknown task {id:?}")),
    }
}

fn task_result(id: &str, engine: &Arc<Scheduler>) -> Response {
    let tid = TaskId(id.to_string());
    if engine.board().get(&tid).is_none() {
        return Response::error(StatusCode::NotFound, format!("unknown task {id:?}"));
    }
    match engine.store().get_result(&tid) {
        Ok(Some(result)) => Response::json(StatusCode::Ok, &result),
        Ok(None) => Response::error(StatusCode::NotFound, "result not ready"),
        Err(e) => Response::error(StatusCode::InternalError, e.to_string()),
    }
}

fn task_log(id: &str, engine: &Arc<Scheduler>) -> Response {
    let tid = TaskId(id.to_string());
    if engine.board().get(&tid).is_none() {
        return Response::error(StatusCode::NotFound, format!("unknown task {id:?}"));
    }
    match engine.store().get_log(&tid) {
        Ok(log) => Response::text(StatusCode::Ok, log),
        Err(e) => Response::error(StatusCode::InternalError, e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn engine() -> Arc<Scheduler> {
        Arc::new(Scheduler::builder().workers(1).build())
    }

    fn get(path: &str) -> Request {
        Request {
            method: Method::Get,
            path: path.to_string(),
            query: String::new(),
            headers: HashMap::new(),
            body: Vec::new(),
        }
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: Method::Post,
            path: path.to_string(),
            query: String::new(),
            headers: HashMap::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn body_str(r: &Response) -> String {
        String::from_utf8(r.body.clone()).unwrap()
    }

    #[test]
    fn index_page_served() {
        let r = route(&get("/"), &engine());
        assert_eq!(r.status, StatusCode::Ok);
        assert_eq!(r.content_type, "text/html; charset=utf-8");
        assert!(body_str(&r).contains("CycleRank"));
    }

    #[test]
    fn metrics_endpoint() {
        let e = engine();
        let r = route(&get("/api/metrics"), &e);
        assert_eq!(r.status, StatusCode::Ok);
        assert!(body_str(&r).contains("completed"));
    }

    #[test]
    fn health_ok() {
        let r = route(&get("/api/health"), &engine());
        assert_eq!(r.status, StatusCode::Ok);
        assert!(body_str(&r).contains("ok"));
    }

    #[test]
    fn datasets_catalog_has_fifty() {
        let r = route(&get("/api/datasets"), &engine());
        let v: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(v.as_array().unwrap().len(), 50);
    }

    #[test]
    fn dataset_lookup() {
        let e = engine();
        let r = route(&get("/api/datasets/fixture-fakenews-pl"), &e);
        assert_eq!(r.status, StatusCode::Ok);
        let v: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(v["id"], "fixture-fakenews-pl");
        assert!(v["memory_bytes"].as_u64().unwrap() > 0, "{v}");
        assert!(v["nodes"].as_u64().unwrap() > 0);
        assert!(v["edges"].as_u64().unwrap() > 0);
        assert!(v["mean_edge_span"].as_f64().unwrap() > 0.0);
        assert!(v["reorder"].is_null(), "fixtures keep generation order");
        assert_eq!(route(&get("/api/datasets/nope"), &e).status, StatusCode::NotFound);
    }

    #[test]
    fn dataset_stats_report_memory_tiers() {
        let e = engine();
        let r = route(&get("/api/datasets/fixture-fakenews-pl/stats"), &e);
        assert_eq!(r.status, StatusCode::Ok);
        let v: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        let memory = &v["memory"];
        assert_eq!(memory["tier"], "csr");
        assert!(memory["csr_bytes_per_edge"].as_f64().unwrap() > 0.0, "{v}");
        assert!(
            memory["compact_bytes_per_edge"].as_f64().unwrap()
                < memory["csr_bytes_per_edge"].as_f64().unwrap()
        );
        assert_eq!(memory["precision_lanes"][0], "f64");
        assert_eq!(memory["precision_lanes"][1], "f32");
    }

    #[test]
    fn tier_route_switches_serving_representation() {
        let e = engine();
        let r =
            route(&post("/api/datasets/fixture-fakenews-pl/tier", r#"{"tier": "compact"}"#), &e);
        assert_eq!(r.status, StatusCode::Ok, "{}", body_str(&r));
        let v: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(v["tier"], "compact");
        assert!(v["compact_ratio"].as_f64().unwrap() < 1.0);
        // Stats reflect the switch; queries still serve (kernel family via
        // the compact mirror, everything else via CSR fallback).
        let stats = route(&get("/api/datasets/fixture-fakenews-pl/stats"), &e);
        let sv: serde_json::Value = serde_json::from_slice(&stats.body).unwrap();
        assert_eq!(sv["memory"]["tier"], "compact");
        // Bad tier names and unknown datasets are rejected.
        let bad = route(&post("/api/datasets/fixture-fakenews-pl/tier", r#"{"tier": "zip"}"#), &e);
        assert_eq!(bad.status, StatusCode::BadRequest);
        let missing = route(&post("/api/datasets/nope/tier", r#"{"tier": "compact"}"#), &e);
        assert_eq!(missing.status, StatusCode::NotFound);
    }

    #[test]
    fn precision_flows_through_task_submission() {
        let e = engine();
        let spec = r#"{
            "dataset": "fixture-fakenews-pl",
            "params": {"algorithm": "page_rank", "precision": "f32"},
            "top_k": 3
        }"#;
        let req = Request {
            method: Method::Post,
            path: "/api/tasks".into(),
            query: "sync=1".into(),
            headers: HashMap::new(),
            body: spec.as_bytes().to_vec(),
        };
        let r = route(&req, &e);
        assert_eq!(r.status, StatusCode::Ok, "{}", body_str(&r));
        let v: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(v["top"].as_array().unwrap().len(), 3);
    }

    #[test]
    fn top_k_query_param_switches_serving_mode() {
        let e = engine();
        let spec = r#"{
            "dataset": "fixture-enwiki-2018",
            "params": {"algorithm": "personalized_page_rank"},
            "source": "Freddie Mercury",
            "top_k": 100
        }"#;
        let req = Request {
            method: Method::Post,
            path: "/api/tasks".into(),
            query: "top_k=4".into(),
            headers: HashMap::new(),
            body: spec.as_bytes().to_vec(),
        };
        let r = route(&req, &e);
        assert_eq!(r.status, StatusCode::Accepted, "{}", body_str(&r));
        let id = serde_json::from_slice::<serde_json::Value>(&r.body).unwrap()["task_id"]
            .as_str()
            .unwrap()
            .to_string();
        e.wait(&TaskId(id.clone()), std::time::Duration::from_secs(60)).unwrap();
        let result = route(&get(&format!("/api/tasks/{id}/result")), &e);
        let v: serde_json::Value = serde_json::from_slice(&result.body).unwrap();
        assert_eq!(v["top"].as_array().unwrap().len(), 4, "?top_k=4 trims the result");

        // Malformed top_k is rejected up front.
        let bad = Request {
            method: Method::Post,
            path: "/api/tasks".into(),
            query: "top_k=lots".into(),
            headers: HashMap::new(),
            body: spec.as_bytes().to_vec(),
        };
        assert_eq!(route(&bad, &e).status, StatusCode::BadRequest);
    }

    #[test]
    fn algorithms_listing() {
        let r = route(&get("/api/algorithms"), &engine());
        let v: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        let algos = v.as_array().unwrap();
        assert!(algos.len() >= 7, "registry lists at least the paper's seven");
        assert!(body_str(&r).contains("cyclerank"));
        // Registry-backed listing carries parameter schemas.
        let cr = algos.iter().find(|a| a["id"] == "cyclerank").unwrap();
        assert_eq!(cr["personalized"], true);
        assert!(cr["parameters"].as_array().unwrap().iter().any(|p| p["name"] == "max_cycle_len"));
        let pr = algos.iter().find(|a| a["id"] == "pagerank").unwrap();
        assert_eq!(pr["produces_scores"], true);
        assert!(pr["parameters"].as_array().unwrap().iter().any(|p| p["name"] == "damping"));
    }

    #[test]
    fn submit_and_poll_task() {
        let e = engine();
        let spec = r#"{
            "dataset": "fixture-fakenews-it",
            "params": {"algorithm": "cycle_rank", "max_cycle_len": 3},
            "source": "Fake news",
            "top_k": 5
        }"#;
        let r = route(&post("/api/tasks", spec), &e);
        assert_eq!(r.status, StatusCode::Accepted);
        let v: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        let id = v["task_id"].as_str().unwrap().to_string();

        // Wait for completion through the engine, then fetch over routes.
        e.wait(&TaskId(id.clone()), std::time::Duration::from_secs(60)).unwrap();
        let status = route(&get(&format!("/api/tasks/{id}")), &e);
        assert!(body_str(&status).contains("completed"));
        let result = route(&get(&format!("/api/tasks/{id}/result")), &e);
        assert_eq!(result.status, StatusCode::Ok);
        assert!(body_str(&result).contains("Disinformazione"));
        let log = route(&get(&format!("/api/tasks/{id}/log")), &e);
        assert!(body_str(&log).contains("done"));
    }

    #[test]
    fn result_payload_exposes_convergence_data() {
        let e = engine();
        // A PageRank-family task with a residual trace requested.
        let spec = r#"{
            "dataset": "fixture-fakenews-pl",
            "params": {"algorithm": "page_rank", "record_trace": true, "threads": 2},
            "source": null,
            "top_k": 3
        }"#;
        let r = route(&post("/api/tasks", spec), &e);
        assert_eq!(r.status, StatusCode::Accepted, "{}", body_str(&r));
        let id = serde_json::from_slice::<serde_json::Value>(&r.body).unwrap()["task_id"]
            .as_str()
            .unwrap()
            .to_string();
        e.wait(&TaskId(id.clone()), std::time::Duration::from_secs(60)).unwrap();

        // The result payload carries residual, converged flag, and the
        // requested per-iteration trace.
        let result = route(&get(&format!("/api/tasks/{id}/result")), &e);
        let v: serde_json::Value = serde_json::from_slice(&result.body).unwrap();
        assert_eq!(v["converged"], true);
        assert!(v["residual"].as_f64().unwrap() < 1e-9);
        let residuals = v["residuals"].as_array().unwrap();
        assert_eq!(residuals.len() as u64, v["iterations"].as_u64().unwrap());

        // The status payload carries the solve's progress record.
        let status = route(&get(&format!("/api/tasks/{id}")), &e);
        let v: serde_json::Value = serde_json::from_slice(&status.body).unwrap();
        assert_eq!(v["progress"]["converged"], true);
        assert!(v["progress"]["residual"].as_f64().unwrap() < 1e-9);
        assert!(v["progress"]["iterations"].as_u64().unwrap() > 0);
    }

    #[test]
    fn submit_rejects_bad_specs() {
        let e = engine();
        assert_eq!(route(&post("/api/tasks", "not json"), &e).status, StatusCode::BadRequest);
        // Personalized without source.
        let spec = r#"{"dataset": "x", "params": {"algorithm": "cycle_rank"}, "source": null}"#;
        assert_eq!(route(&post("/api/tasks", spec), &e).status, StatusCode::BadRequest);
    }

    #[test]
    fn batch_submission_and_cache_stats() {
        let e = engine();
        let body = r#"{
            "dataset": "fixture-enwiki-2018",
            "params": {"algorithm": "personalized_page_rank"},
            "sources": ["Freddie Mercury", "Queen (band)", "Brian May"],
            "top_k": 5
        }"#;
        let r = route(&post("/api/batch", body), &e);
        assert_eq!(r.status, StatusCode::Accepted, "{}", body_str(&r));
        let v: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        let ids: Vec<String> = v["task_ids"]
            .as_array()
            .unwrap()
            .iter()
            .map(|i| i.as_str().unwrap().to_string())
            .collect();
        assert_eq!(ids.len(), 3);
        for id in &ids {
            e.wait(&TaskId(id.clone()), std::time::Duration::from_secs(60)).unwrap();
        }
        // Per-seed results are ordinary task results.
        let result = route(&get(&format!("/api/tasks/{}/result", ids[1])), &e);
        assert_eq!(result.status, StatusCode::Ok);
        assert!(body_str(&result).contains("Queen (band)"));

        // A repeated batch is served from the result cache, observable via
        // GET /api/cache/stats.
        let before: serde_json::Value =
            serde_json::from_slice(&route(&get("/api/cache/stats"), &e).body).unwrap();
        let r = route(&post("/api/batch", body), &e);
        let v: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        for id in v["task_ids"].as_array().unwrap() {
            e.wait(&TaskId(id.as_str().unwrap().to_string()), std::time::Duration::from_secs(60))
                .unwrap();
        }
        let after: serde_json::Value =
            serde_json::from_slice(&route(&get("/api/cache/stats"), &e).body).unwrap();
        assert_eq!(
            after["hits"].as_u64().unwrap(),
            before["hits"].as_u64().unwrap() + 3,
            "before {before}, after {after}"
        );
        assert!(after["capacity"].as_u64().unwrap() > 0);
    }

    #[test]
    fn batch_submission_rejections() {
        let e = engine();
        assert_eq!(route(&post("/api/batch", "nope"), &e).status, StatusCode::BadRequest);
        // Empty seed list.
        let body =
            r#"{"dataset": "d", "params": {"algorithm": "personalized_page_rank"}, "sources": []}"#;
        assert_eq!(route(&post("/api/batch", body), &e).status, StatusCode::BadRequest);
        // Global algorithms are not batchable.
        let body = r#"{"dataset": "d", "params": {"algorithm": "page_rank"}, "sources": ["x"]}"#;
        let r = route(&post("/api/batch", body), &e);
        assert_eq!(r.status, StatusCode::BadRequest);
        assert!(body_str(&r).contains("personalized"));
        // Oversized seed sets are rejected, not queued.
        let sources = (0..1025).map(|i| format!("\"s{i}\"")).collect::<Vec<_>>().join(",");
        let body = format!(
            r#"{{"dataset": "d", "params": {{"algorithm": "personalized_page_rank"}}, "sources": [{sources}]}}"#
        );
        let r = route(&post("/api/batch", &body), &e);
        assert_eq!(r.status, StatusCode::BadRequest);
        assert!(body_str(&r).contains("limit"), "{}", body_str(&r));
    }

    #[test]
    fn query_set_submission() {
        let e = engine();
        let body = r#"[
            {"dataset": "fixture-fakenews-pl", "params": {"algorithm": "page_rank"}, "source": null, "top_k": 3},
            {"dataset": "fixture-fakenews-pl", "params": {"algorithm": "cycle_rank"}, "source": "Fake news", "top_k": 3}
        ]"#;
        let r = route(&post("/api/query-sets", body), &e);
        assert_eq!(r.status, StatusCode::Accepted);
        let v: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(v["task_ids"].as_array().unwrap().len(), 2);
        assert!(v["query_set_id"].as_str().unwrap().len() > 10);

        let empty = route(&post("/api/query-sets", "[]"), &e);
        assert_eq!(empty.status, StatusCode::BadRequest);
    }

    #[test]
    fn upload_then_query_roundtrip() {
        let e = engine();
        // Upload a Pajek graph with labels.
        let content = "*Vertices 2\n1 \"me\"\n2 \"friend\"\n*Arcs\n1 2\n2 1\n";
        let body = serde_json::json!({"name": "my-net", "content": content}).to_string();
        let r = route(&post("/api/datasets", &body), &e);
        assert_eq!(r.status, StatusCode::Ok, "{}", body_str(&r));
        let v: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(v["dataset_id"], "my-net");
        assert_eq!(v["nodes"], 2);

        // Uploads appear in the catalog listing.
        let listing = route(&get("/api/datasets"), &e);
        assert!(body_str(&listing).contains("my-net"));

        // Stats endpoint works for the upload.
        let stats = route(&get("/api/datasets/my-net/stats"), &e);
        assert_eq!(stats.status, StatusCode::Ok);
        assert!(body_str(&stats).contains("reciprocity"));

        // And tasks can run against it.
        let spec = r#"{
            "dataset": "my-net",
            "params": {"algorithm": "cycle_rank"},
            "source": "me",
            "top_k": 2
        }"#;
        let r = route(&post("/api/tasks", spec), &e);
        assert_eq!(r.status, StatusCode::Accepted);
        let id = serde_json::from_slice::<serde_json::Value>(&r.body).unwrap()["task_id"]
            .as_str()
            .unwrap()
            .to_string();
        e.wait(&TaskId(id.clone()), std::time::Duration::from_secs(60)).unwrap();
        let result = route(&get(&format!("/api/tasks/{id}/result")), &e);
        assert!(body_str(&result).contains("friend"));
    }

    #[test]
    fn upload_rejections() {
        let e = engine();
        assert_eq!(route(&post("/api/datasets", "nope"), &e).status, StatusCode::BadRequest);
        // Unparseable graph content.
        let body = serde_json::json!({"content": "*Vertices x"}).to_string();
        assert_eq!(route(&post("/api/datasets", &body), &e).status, StatusCode::BadRequest);
        // Bad format name.
        let body = serde_json::json!({"format": "doc", "content": "0,1"}).to_string();
        assert_eq!(route(&post("/api/datasets", &body), &e).status, StatusCode::BadRequest);
        // Collision with a registry id.
        let body = serde_json::json!({"name": "wiki-en-2018", "content": "0,1\n"}).to_string();
        assert_eq!(route(&post("/api/datasets", &body), &e).status, StatusCode::BadRequest);
    }

    fn delete(path: &str, body: &str) -> Request {
        Request {
            method: Method::Delete,
            path: path.to_string(),
            query: String::new(),
            headers: HashMap::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    /// The acceptance scenario: after `POST /api/datasets/{id}/edges`, a
    /// repeated identical query is recomputed (cache miss on the new
    /// graph version) and reflects the mutated graph.
    #[test]
    fn edge_mutation_invalidates_cached_results() {
        let e = engine();
        let content = "*Vertices 3\n1 \"seed\"\n2 \"a\"\n3 \"b\"\n*Arcs\n1 2\n2 1\n1 3\n";
        let body = serde_json::json!({"name": "dyn-net", "content": content}).to_string();
        assert_eq!(route(&post("/api/datasets", &body), &e).status, StatusCode::Ok);

        let spec = r#"{
            "dataset": "dyn-net",
            "params": {"algorithm": "personalized_page_rank"},
            "source": "seed",
            "top_k": 3
        }"#;
        let run = |e: &Arc<Scheduler>| -> serde_json::Value {
            let r = route(&post("/api/tasks", spec), e);
            assert_eq!(r.status, StatusCode::Accepted, "{}", body_str(&r));
            let id = serde_json::from_slice::<serde_json::Value>(&r.body).unwrap()["task_id"]
                .as_str()
                .unwrap()
                .to_string();
            e.wait(&TaskId(id.clone()), std::time::Duration::from_secs(60)).unwrap();
            serde_json::from_slice(&route(&get(&format!("/api/tasks/{id}/result")), e).body)
                .unwrap()
        };
        let score = |v: &serde_json::Value, label: &str| -> f64 {
            v["top"]
                .as_array()
                .unwrap()
                .iter()
                .find(|pair| pair[0] == *label)
                .map(|pair| pair[1].as_f64().unwrap())
                .unwrap()
        };
        let before = run(&e);
        run(&e); // warm the cache
        let hits_before = e.cache_stats().hits;
        assert!(hits_before >= 1, "second identical task must hit the cache");

        // Stats report version 0 pre-mutation.
        let stats: serde_json::Value =
            serde_json::from_slice(&route(&get("/api/datasets/dyn-net/stats"), &e).body).unwrap();
        assert_eq!(stats["version"].as_u64(), Some(0));
        assert!(stats["nodes"].as_u64().unwrap() > 0);

        // Mutate: a -> b raises b's score.
        let batch = r#"{"edges": [{"source": "a", "target": "b"}]}"#;
        let r = route(&post("/api/datasets/dyn-net/edges", batch), &e);
        assert_eq!(r.status, StatusCode::Ok, "{}", body_str(&r));
        let outcome: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(outcome["version"].as_u64(), Some(1));
        assert_eq!(outcome["applied"].as_u64(), Some(1));

        let stats: serde_json::Value =
            serde_json::from_slice(&route(&get("/api/datasets/dyn-net/stats"), &e).body).unwrap();
        assert_eq!(stats["version"].as_u64(), Some(1), "stats must report the new version");

        // Recomputed, not served stale.
        let after = run(&e);
        assert_eq!(e.cache_stats().hits, hits_before, "mutated dataset must not hit stale cache");
        assert!(
            score(&after, "b") > score(&before, "b"),
            "recomputed result must reflect the new edge: {after} vs {before}"
        );

        // DELETE reverts the edge; the next run is recomputed again and
        // matches the original scores.
        let r = route(&delete("/api/datasets/dyn-net/edges", batch), &e);
        assert_eq!(r.status, StatusCode::Ok, "{}", body_str(&r));
        let outcome: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(outcome["version"].as_u64(), Some(2));
        let reverted = run(&e);
        assert!((score(&reverted, "b") - score(&before, "b")).abs() < 1e-12);
    }

    #[test]
    fn edge_mutation_rejections() {
        let e = engine();
        // Unknown dataset: 404.
        let batch = r#"{"edges": [{"source": "a", "target": "b"}]}"#;
        assert_eq!(
            route(&post("/api/datasets/ghost/edges", batch), &e).status,
            StatusCode::NotFound
        );
        // Bad JSON / empty batch: 400.
        assert_eq!(
            route(&post("/api/datasets/fixture-fakenews-it/edges", "nope"), &e).status,
            StatusCode::BadRequest
        );
        assert_eq!(
            route(&post("/api/datasets/fixture-fakenews-it/edges", r#"{"edges": []}"#), &e).status,
            StatusCode::BadRequest
        );
        // Removal of an unresolvable endpoint: 400 (removals never create).
        let r = route(
            &delete(
                "/api/datasets/fixture-fakenews-it/edges",
                r#"{"edges": [{"source": "No Such Node", "target": "Fake news"}]}"#,
            ),
            &e,
        );
        assert_eq!(r.status, StatusCode::BadRequest, "{}", body_str(&r));
        // Removing an absent (but resolvable) edge is an accepted no-op:
        // nothing applied, version unmoved.
        let r = route(
            &delete(
                "/api/datasets/fixture-fakenews-it/edges",
                r#"{"edges": [{"source": "Pizzagate", "target": "Pizzagate"}]}"#,
            ),
            &e,
        );
        if r.status == StatusCode::Ok {
            let outcome: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
            assert_eq!(outcome["applied"].as_u64(), Some(0));
            assert_eq!(outcome["version"].as_u64(), Some(0));
        }
        // Oversized batches are rejected.
        let edges: Vec<String> =
            (0..10_001).map(|i| format!(r#"{{"source": "s{i}", "target": "t{i}"}}"#)).collect();
        let body = format!(r#"{{"edges": [{}]}}"#, edges.join(","));
        assert_eq!(
            route(&post("/api/datasets/fixture-fakenews-it/edges", &body), &e).status,
            StatusCode::BadRequest
        );
    }

    #[test]
    fn cancel_endpoint() {
        let e = engine();
        // Unknown task: 404.
        assert_eq!(route(&post("/api/tasks/ghost/cancel", ""), &e).status, StatusCode::NotFound);
        // Submit then cancel (may or may not win the race with the worker;
        // the response is well-formed either way).
        let spec = r#"{
            "dataset": "fixture-fakenews-de",
            "params": {"algorithm": "cycle_rank"},
            "source": "Fake News",
            "top_k": 3
        }"#;
        let r = route(&post("/api/tasks", spec), &e);
        let id = serde_json::from_slice::<serde_json::Value>(&r.body).unwrap()["task_id"]
            .as_str()
            .unwrap()
            .to_string();
        let r = route(&post(&format!("/api/tasks/{id}/cancel"), ""), &e);
        assert_eq!(r.status, StatusCode::Ok);
        let v: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert!(v["canceled"].is_boolean());
    }

    #[test]
    fn dataset_stats_for_registry_entry() {
        let e = engine();
        let r = route(&get("/api/datasets/fixture-fakenews-pl/stats"), &e);
        assert_eq!(r.status, StatusCode::Ok);
        assert!(body_str(&r).contains("nodes"));
        let r = route(&get("/api/datasets/ghost/stats"), &e);
        assert_eq!(r.status, StatusCode::NotFound);
    }

    #[test]
    fn dataset_stats_reports_persistence_footprint_with_data_dir() {
        let dir = std::env::temp_dir().join(format!(
            "relserver-stats-{}-{}",
            std::process::id(),
            rand_suffix()
        ));
        let e = Arc::new(Scheduler::builder().workers(1).data_dir(&dir).build());
        let mut b = relgraph::GraphBuilder::new();
        b.add_labeled_edge("x", "y");
        e.register_dataset("durable-net", b.build()).unwrap();
        // Without --data-dir the stats payload has no persistence object.
        let plain = engine();
        let mut b = relgraph::GraphBuilder::new();
        b.add_labeled_edge("x", "y");
        plain.register_dataset("durable-net", b.build()).unwrap();
        let v: serde_json::Value =
            serde_json::from_slice(&route(&get("/api/datasets/durable-net/stats"), &plain).body)
                .unwrap();
        assert!(v.get("persistence").is_none());

        let body = r#"{"edges": [{"source": "y", "target": "z", "weight": 2.0}]}"#;
        assert_eq!(
            route(&post("/api/datasets/durable-net/edges", body), &e).status,
            StatusCode::Ok
        );
        let v: serde_json::Value =
            serde_json::from_slice(&route(&get("/api/datasets/durable-net/stats"), &e).body)
                .unwrap();
        let p = &v["persistence"];
        assert_eq!(p["snapshot_version"].as_u64(), Some(0));
        assert_eq!(p["journal_records"].as_u64(), Some(1));
        // The batch created a node and an edge, so the durable version
        // matches whatever the live graph reports.
        assert_eq!(p["last_version"].as_u64(), v["version"].as_u64());
        assert!(p["journal_bytes"].as_u64().unwrap() > 0);
        assert!(p["snapshot_bytes"].as_u64().unwrap() > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn rand_suffix() -> u64 {
        std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().subsec_nanos()
            as u64
    }

    /// The degradation acceptance path over HTTP: an injected storage
    /// fault turns mutation routes into typed `503 + Retry-After`
    /// responses while reads — stats, health, queries — keep serving;
    /// health reports the degraded dataset; recovery clears it.
    #[test]
    fn degraded_storage_maps_to_503_while_reads_serve() {
        let dir = std::env::temp_dir().join(format!(
            "relserver-degraded-{}-{}",
            std::process::id(),
            rand::random::<u64>()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let inj = relstore::FaultInjector::default();
        let store = relstore::DatasetStore::open_with_vfs(&dir, Arc::new(inj.clone())).unwrap();
        let e = Arc::new(
            Scheduler::builder()
                .workers(1)
                .persistence(Arc::new(relengine::GraphPersistence::with_store(store)))
                .build(),
        );
        let content = "*Vertices 3\n1 \"seed\"\n2 \"a\"\n3 \"b\"\n*Arcs\n1 2\n2 3\n3 1\n";
        let body = serde_json::json!({"name": "frail-net", "content": content}).to_string();
        assert_eq!(route(&post("/api/datasets", &body), &e).status, StatusCode::Ok);

        // Healthy first: one mutation lands. The backoff is shortened so
        // the recovery probe at the end of the test fires quickly, but
        // kept long enough that the retry below still fast-rejects.
        e.executor().set_degraded_backoff(std::time::Duration::from_millis(200));
        let batch = r#"{"edges": [{"source": "a", "target": "b"}]}"#;
        assert_eq!(route(&post("/api/datasets/frail-net/edges", batch), &e).status, StatusCode::Ok);

        // Fail the next journal append's fsync: the mutation route answers
        // a typed 503 with a Retry-After hint.
        inj.arm(relstore::FaultPlan::one(3, relstore::FaultKind::FailSync));
        let batch2 = r#"{"edges": [{"source": "b", "target": "a"}]}"#;
        let r = route(&post("/api/datasets/frail-net/edges", batch2), &e);
        assert_eq!(r.status, StatusCode::ServiceUnavailable, "{}", body_str(&r));
        let v: serde_json::Value = serde_json::from_slice(&r.body).unwrap();
        assert_eq!(v["degraded"], true);
        assert!(v["retry_after_secs"].as_u64().unwrap() >= 1, "{v}");
        assert!(r.headers.iter().any(|(k, _)| *k == "retry-after"), "{:?}", r.headers);

        // A retry inside the backoff window fast-rejects with 503 too.
        let r = route(&post("/api/datasets/frail-net/edges", batch2), &e);
        assert_eq!(r.status, StatusCode::ServiceUnavailable);

        // Reads keep serving: stats (with the degraded object), health
        // (flipped to "degraded" with the dataset listed), and a query.
        let stats = route(&get("/api/datasets/frail-net/stats"), &e);
        assert_eq!(stats.status, StatusCode::Ok);
        let sv: serde_json::Value = serde_json::from_slice(&stats.body).unwrap();
        assert_eq!(sv["degraded"]["dataset"], "frail-net");
        assert!(sv["degraded"]["failures"].as_u64().unwrap() >= 1);
        let h = route(&get("/api/health"), &e);
        assert_eq!(h.status, StatusCode::Ok);
        let hv: serde_json::Value = serde_json::from_slice(&h.body).unwrap();
        assert_eq!(hv["status"], "degraded");
        assert_eq!(hv["degraded_datasets"][0]["dataset"], "frail-net");
        let spec = r#"{
            "dataset": "frail-net",
            "params": {"algorithm": "personalized_page_rank"},
            "source": "seed",
            "top_k": 3
        }"#;
        let req = Request {
            method: Method::Post,
            path: "/api/tasks".into(),
            query: "sync=1".into(),
            headers: HashMap::new(),
            body: spec.as_bytes().to_vec(),
        };
        assert_eq!(route(&req, &e).status, StatusCode::Ok, "reads serve while degraded");

        // After the backoff elapses the probe mutation succeeds and
        // health recovers.
        std::thread::sleep(std::time::Duration::from_millis(250));
        let r = route(&post("/api/datasets/frail-net/edges", batch2), &e);
        assert_eq!(r.status, StatusCode::Ok, "{}", body_str(&r));
        let hv: serde_json::Value =
            serde_json::from_slice(&route(&get("/api/health"), &e).body).unwrap();
        assert_eq!(hv["status"], "ok");
        assert!(hv["degraded_datasets"].as_array().unwrap().is_empty(), "{hv}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_routes_and_tasks_404() {
        let e = engine();
        assert_eq!(route(&get("/nope"), &e).status, StatusCode::NotFound);
        assert_eq!(route(&get("/api/tasks/ghost"), &e).status, StatusCode::NotFound);
        assert_eq!(route(&get("/api/tasks/ghost/result"), &e).status, StatusCode::NotFound);
        assert_eq!(route(&get("/api/tasks/ghost/log"), &e).status, StatusCode::NotFound);
    }
}
