//! The worker-pool serving path: bounded concurrency, admission control,
//! and load shedding.
//!
//! The accept loop ([`crate::server::ApiServer::run`]) no longer spawns a
//! thread per connection. Instead it `try_send`s each accepted socket
//! onto a **bounded crossbeam channel** — the admission queue — drained by
//! `workers` long-lived worker threads. When the queue is full the
//! acceptor answers `429 Too Many Requests` with a `Retry-After` header
//! and closes the socket instead of growing without bound: overload turns
//! into explicit back-pressure the client can see, not into thread
//! exhaustion.
//!
//! Each worker owns one connection at a time and serves it with HTTP
//! keep-alive: many sequential requests reuse the accepted socket (and
//! its admission slot) until the client closes, sends
//! `Connection: close`, or stays idle past [`ServingConfig::keep_alive`].
//!
//! Requests are classified into two concurrency lanes:
//!
//! * **cheap** — everything that answers from state the request path
//!   already holds: every `GET`, asynchronous task/batch submissions
//!   (they only enqueue; the scheduler's own worker pool is their
//!   admission control), synchronous solves that are cache-answerable
//!   ([`relengine::Executor::would_hit_cache`]) or use the certified
//!   top-k serving path.
//! * **expensive** — synchronous work that occupies the HTTP worker for
//!   the duration of real engine work: cold full-rank `?sync=1` solves,
//!   edge mutations, and dataset uploads.
//!
//! The expensive lane holds at most [`ServingConfig::max_expensive`]
//! permits; an expensive request that cannot take one immediately is shed
//! with `429` + `Retry-After`. Cheap requests never queue behind that
//! gate, so a burst of cold solves cannot starve cached/top-k lookups —
//! the property `tests/serving_pool.rs` pins down.
//!
//! `GET /api/serving/stats` exposes the pool's counters plus the engine
//! plumbing the limits are sized from (scheduler workers, per-dataset
//! solver-arena pools, result-cache counters).

use crate::http::{Method, Request, Response, StatusCode};
use crate::routes::{effective_task_spec, route, wants_sync};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use relengine::Scheduler;
use serde::Serialize;
use std::io::{BufRead, BufReader};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often an idle worker re-checks shutdown / keep-alive expiry.
const IDLE_POLL: Duration = Duration::from_millis(100);

/// Read timeout while parsing an in-flight request (a slow-but-live
/// client gets this long between bytes before the connection is dropped).
const REQUEST_TIMEOUT: Duration = Duration::from_secs(10);

/// Sizing of the serving path. Defaults derive from the host
/// ([`std::thread::available_parallelism`]) and the engine
/// ([`ServingConfig::auto`]); `relrank serve` exposes each knob as a
/// flag.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// HTTP worker threads (each serves one connection at a time).
    pub workers: usize,
    /// Admission-queue capacity: accepted connections waiting for a
    /// worker. Beyond this the acceptor sheds with `429`.
    pub queue_depth: usize,
    /// Concurrent expensive-lane requests (cold sync solves, mutations,
    /// uploads). Beyond this the lane sheds with `429`.
    pub max_expensive: usize,
    /// How long an idle keep-alive connection may hold its worker.
    pub keep_alive: Duration,
    /// `Retry-After` hint (seconds) attached to shed responses.
    pub retry_after_secs: u64,
}

impl ServingConfig {
    /// Sizes the pool for this host and engine: workers from
    /// `available_parallelism` (clamped to `[2, 32]`), a queue of 4
    /// connections per worker, and an expensive lane matching the
    /// scheduler's solver worker count (cold solves ultimately serialize
    /// on those workers and their per-dataset arena pools, so admitting
    /// more would only queue memory) while always leaving at least one
    /// worker free for cheap traffic.
    pub fn auto(engine_workers: usize) -> ServingConfig {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        let workers = cores.clamp(2, 32);
        ServingConfig {
            workers,
            queue_depth: workers * 4,
            max_expensive: engine_workers.max(1).min(workers.saturating_sub(1).max(1)),
            keep_alive: Duration::from_secs(5),
            retry_after_secs: 1,
        }
    }
}

impl Default for ServingConfig {
    fn default() -> ServingConfig {
        ServingConfig::auto(2)
    }
}

/// A counting gate over the expensive lane. Only `try_acquire` exists —
/// the lane *sheds* on saturation instead of queueing, so no waiter
/// bookkeeping is needed. A panicking holder releases its permit through
/// [`GatePermit`]'s drop, so the lane never leaks capacity.
pub struct Gate {
    free: std::sync::Mutex<usize>,
    capacity: usize,
}

impl Gate {
    fn new(capacity: usize) -> Arc<Gate> {
        Arc::new(Gate { free: std::sync::Mutex::new(capacity), capacity })
    }

    fn slots(&self) -> std::sync::MutexGuard<'_, usize> {
        self.free.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Takes a permit if one is free right now.
    pub fn try_acquire(self: &Arc<Gate>) -> Option<GatePermit> {
        let mut free = self.slots();
        if *free == 0 {
            return None;
        }
        *free -= 1;
        Some(GatePermit { gate: Arc::clone(self) })
    }

    /// Permits currently held.
    pub fn in_flight(&self) -> usize {
        self.capacity - *self.slots()
    }
}

/// A held expensive-lane permit; released on drop.
pub struct GatePermit {
    gate: Arc<Gate>,
}

impl Drop for GatePermit {
    fn drop(&mut self) {
        *self.gate.slots() += 1;
    }
}

/// Shared, always-incrementing serving counters plus the lane gate.
pub struct ServingState {
    config: ServingConfig,
    expensive: Arc<Gate>,
    accepted: AtomicU64,
    requests: AtomicU64,
    keep_alive_reuses: AtomicU64,
    shed_queue_full: AtomicU64,
    shed_expensive: AtomicU64,
    rejected_payload: AtomicU64,
    /// Mutations answered `503` because the dataset's storage is degraded.
    degraded_rejections: AtomicU64,
    /// Live admission-queue length, reported by the snapshot.
    queue_len: AtomicU64,
}

impl ServingState {
    /// Fresh state for `config`.
    pub fn new(config: ServingConfig) -> Arc<ServingState> {
        let expensive = Gate::new(config.max_expensive);
        Arc::new(ServingState {
            config,
            expensive,
            accepted: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            keep_alive_reuses: AtomicU64::new(0),
            shed_queue_full: AtomicU64::new(0),
            shed_expensive: AtomicU64::new(0),
            rejected_payload: AtomicU64::new(0),
            degraded_rejections: AtomicU64::new(0),
            queue_len: AtomicU64::new(0),
        })
    }

    /// The pool sizing in effect.
    pub fn config(&self) -> &ServingConfig {
        &self.config
    }

    /// Takes an expensive-lane permit if one is free — the same gate the
    /// dispatch path sheds on. Exposed so operators (and the load-
    /// shedding tests) can saturate or drain the lane deterministically:
    /// holding every permit quiesces expensive admission while cheap
    /// routes keep answering.
    pub fn try_acquire_expensive(&self) -> Option<GatePermit> {
        self.expensive.try_acquire()
    }

    /// Point-in-time counters, including the engine plumbing the limits
    /// are sized from.
    pub fn snapshot(&self, engine: &Arc<Scheduler>) -> ServingSnapshot {
        ServingSnapshot {
            workers: self.config.workers,
            queue_depth: self.config.queue_depth,
            max_expensive: self.config.max_expensive,
            keep_alive_ms: self.config.keep_alive.as_millis() as u64,
            queue_len: self.queue_len.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            keep_alive_reuses: self.keep_alive_reuses.load(Ordering::Relaxed),
            shed_queue_full: self.shed_queue_full.load(Ordering::Relaxed),
            shed_expensive: self.shed_expensive.load(Ordering::Relaxed),
            rejected_payload: self.rejected_payload.load(Ordering::Relaxed),
            degraded_rejections: self.degraded_rejections.load(Ordering::Relaxed),
            expensive_in_flight: self.expensive.in_flight(),
            engine: EngineSnapshot {
                workers: engine.worker_count(),
                arenas: engine.executor().arena_stats(),
                cache: engine.cache_stats(),
            },
        }
    }
}

/// Serialized form of `GET /api/serving/stats`.
#[derive(Debug, Clone, Serialize)]
pub struct ServingSnapshot {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Admission-queue capacity.
    pub queue_depth: usize,
    /// Expensive-lane permit count.
    pub max_expensive: usize,
    /// Idle keep-alive window, milliseconds.
    pub keep_alive_ms: u64,
    /// Connections currently queued for a worker.
    pub queue_len: u64,
    /// Connections accepted (admitted or shed).
    pub accepted: u64,
    /// Requests served (all lanes, including error responses).
    pub requests: u64,
    /// Requests served on a reused keep-alive connection.
    pub keep_alive_reuses: u64,
    /// Connections shed because the admission queue was full.
    pub shed_queue_full: u64,
    /// Requests shed because the expensive lane was saturated.
    pub shed_expensive: u64,
    /// Requests refused with `413` (oversized headers or body).
    pub rejected_payload: u64,
    /// Requests answered `503` because a dataset's storage is degraded.
    pub degraded_rejections: u64,
    /// Expensive-lane permits currently held.
    pub expensive_in_flight: usize,
    /// The engine-side pools the serving limits are sized from.
    pub engine: EngineSnapshot,
}

/// Engine-side pool figures surfaced through the serving stats.
#[derive(Debug, Clone, Serialize)]
pub struct EngineSnapshot {
    /// Scheduler solver workers.
    pub workers: usize,
    /// Per-dataset solver-arena pool footprint.
    pub arenas: relengine::ArenaPoolStats,
    /// Result-cache counters.
    pub cache: relengine::CacheStats,
}

/// Which concurrency lane a request is admitted through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Answered from held state; never shed by the lane gate.
    Cheap,
    /// Occupies the worker with real engine work; gated by
    /// [`ServingConfig::max_expensive`].
    Expensive,
}

/// Classifies a request. Synchronous solves consult the result cache and
/// the top-k serving mode: a `?sync=1` task that would hit the cache or
/// runs through certified top-k push is cheap, a cold full-rank sync
/// solve is expensive. Asynchronous submissions are always cheap — they
/// only enqueue, and the scheduler's bounded worker pool is their
/// admission control.
pub fn classify(req: &Request, engine: &Arc<Scheduler>) -> Lane {
    match (req.method, req.segments().as_slice()) {
        (Method::Get, _) => Lane::Cheap,
        (Method::Post, ["api", "tasks"]) => {
            if !wants_sync(req) {
                return Lane::Cheap;
            }
            match effective_task_spec(req) {
                Some(spec) => {
                    if spec.params.top_k.is_some() || engine.executor().would_hit_cache(&spec) {
                        Lane::Cheap
                    } else {
                        Lane::Expensive
                    }
                }
                // Malformed specs fall through to route()'s 400 — cheap.
                None => Lane::Cheap,
            }
        }
        (Method::Post, ["api", "batch"] | ["api", "query-sets"]) => Lane::Cheap,
        (Method::Post, ["api", "tasks", _, "cancel"]) => Lane::Cheap,
        // Mutations, uploads, and anything else that does synchronous
        // engine work on the HTTP worker.
        _ => Lane::Expensive,
    }
}

/// Routes one request through its admission lane. The serving-stats
/// route short-circuits here (it belongs to the pool, not the engine).
pub fn dispatch(req: &Request, engine: &Arc<Scheduler>, state: &ServingState) -> Response {
    if req.method == Method::Get && req.segments() == ["api", "serving", "stats"] {
        return Response::json(StatusCode::Ok, &state.snapshot(engine));
    }
    let count_degraded = |resp: Response| {
        if resp.status == StatusCode::ServiceUnavailable {
            state.degraded_rejections.fetch_add(1, Ordering::Relaxed);
        }
        resp
    };
    match classify(req, engine) {
        Lane::Cheap => count_degraded(route(req, engine)),
        Lane::Expensive => match state.try_acquire_expensive() {
            Some(_permit) => count_degraded(route(req, engine)),
            None => {
                state.shed_expensive.fetch_add(1, Ordering::Relaxed);
                Response::overloaded(
                    format!(
                        "expensive lane at capacity ({} in flight); retry later",
                        state.config.max_expensive
                    ),
                    state.config.retry_after_secs,
                )
            }
        },
    }
}

/// The bounded worker pool draining the admission queue.
pub struct ServingPool {
    tx: Option<Sender<TcpStream>>,
    state: Arc<ServingState>,
    shutdown: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
}

impl ServingPool {
    /// Starts `state.config().workers` worker threads.
    pub fn start(engine: Arc<Scheduler>, state: Arc<ServingState>) -> ServingPool {
        let (tx, rx) = bounded::<TcpStream>(state.config.queue_depth.max(1));
        let shutdown = Arc::new(AtomicBool::new(false));
        let workers = (0..state.config.workers.max(1))
            .map(|_| {
                let rx: Receiver<TcpStream> = rx.clone();
                let engine = Arc::clone(&engine);
                let state = Arc::clone(&state);
                let shutdown = Arc::clone(&shutdown);
                std::thread::spawn(move || worker_loop(rx, engine, state, shutdown))
            })
            .collect();
        ServingPool { tx: Some(tx), state, shutdown, workers }
    }

    /// Admits one accepted connection: queued for a worker, or shed with
    /// `429` + `Retry-After` when the queue is full.
    pub fn admit(&self, mut stream: TcpStream) {
        self.state.accepted.fetch_add(1, Ordering::Relaxed);
        // rellint: allow(panic-hygiene) -- tx is Some from construction until shutdown(), which consumes the pool
        let tx = self.tx.as_ref().expect("pool running");
        match tx.try_send(stream) {
            Ok(()) => {
                self.state.queue_len.store(tx.len() as u64, Ordering::Relaxed);
            }
            Err(TrySendError::Full(s)) | Err(TrySendError::Disconnected(s)) => {
                stream = s;
                self.state.shed_queue_full.fetch_add(1, Ordering::Relaxed);
                // Best effort: tell the client to back off, bounded so a
                // non-reading client cannot wedge the acceptor.
                let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
                let _ = Response::overloaded(
                    format!(
                        "admission queue full ({} waiting); retry later",
                        self.state.config.queue_depth
                    ),
                    self.state.config.retry_after_secs,
                )
                .write_to(&mut stream);
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Drop for ServingPool {
    /// Stops accepting, drains, and joins every worker: the channel's
    /// sender side is dropped (workers exit their `recv` loop once the
    /// queue is empty) and the shutdown flag breaks idle keep-alive
    /// polls within one idle-poll interval (100 ms).
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.tx.take();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(
    rx: Receiver<TcpStream>,
    engine: Arc<Scheduler>,
    state: Arc<ServingState>,
    shutdown: Arc<AtomicBool>,
) {
    while let Ok(stream) = rx.recv() {
        state.queue_len.store(rx.len() as u64, Ordering::Relaxed);
        if shutdown.load(Ordering::SeqCst) {
            let _ = stream.shutdown(std::net::Shutdown::Both);
            continue;
        }
        serve_connection(stream, &engine, &state, &shutdown);
    }
}

/// Serves one connection until close / `Connection: close` / idle
/// expiry / shutdown, with HTTP keep-alive in between.
fn serve_connection(
    mut stream: TcpStream,
    engine: &Arc<Scheduler>,
    state: &Arc<ServingState>,
    shutdown: &Arc<AtomicBool>,
) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(IDLE_POLL)).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut served: u64 = 0;
    'conn: loop {
        // Idle phase: poll for the next request's first byte so shutdown
        // and keep-alive expiry stay responsive without risking a
        // timeout mid-parse.
        let idle_start = Instant::now();
        loop {
            match reader.fill_buf() {
                Ok([]) => break 'conn, // clean EOF
                Ok(_) => break,        // request bytes ready
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if shutdown.load(Ordering::SeqCst)
                        || idle_start.elapsed() >= state.config.keep_alive
                    {
                        break 'conn;
                    }
                }
                Err(_) => break 'conn,
            }
        }
        let _ = stream.set_read_timeout(Some(REQUEST_TIMEOUT));
        let parsed = Request::read_buffered(&mut reader);
        let _ = stream.set_read_timeout(Some(IDLE_POLL));
        match parsed {
            Ok(Some(req)) => {
                let keep_alive = !req.wants_close();
                let response = dispatch(&req, engine, state);
                state.requests.fetch_add(1, Ordering::Relaxed);
                if served > 0 {
                    state.keep_alive_reuses.fetch_add(1, Ordering::Relaxed);
                }
                served += 1;
                if response.write_conn(&mut stream, keep_alive).is_err() || !keep_alive {
                    break;
                }
            }
            Ok(None) => break, // EOF between requests
            Err(e) => {
                if e.status == StatusCode::PayloadTooLarge {
                    state.rejected_payload.fetch_add(1, Ordering::Relaxed);
                }
                state.requests.fetch_add(1, Ordering::Relaxed);
                let _ = Response::error(e.status, e.message).write_conn(&mut stream, false);
                break;
            }
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}
