//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use relgraph::{bfs_distances, induced_subgraph, tarjan_scc, GraphBuilder, GraphStats, NodeId};

/// Strategy: a random edge list over up to `n` nodes.
fn edge_list(max_nodes: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..max_nodes, 0..max_nodes), 0..max_edges)
}

proptest! {
    /// CSR invariants: neighbor lists sorted and deduplicated, in/out edge
    /// counts agree, and every out-edge has a matching in-edge.
    #[test]
    fn csr_invariants(edges in edge_list(40, 200)) {
        let g = GraphBuilder::from_edge_indices(edges);
        let mut out_total = 0;
        let mut in_total = 0;
        for u in g.nodes() {
            let outs = g.out_neighbors(u);
            out_total += outs.len();
            prop_assert!(outs.windows(2).all(|w| w[0] < w[1]), "out list sorted+dedup");
            let ins = g.in_neighbors(u);
            in_total += ins.len();
            prop_assert!(ins.windows(2).all(|w| w[0] < w[1]), "in list sorted+dedup");
            for &v in outs {
                prop_assert!(g.in_neighbors(v).binary_search(&u).is_ok(),
                    "in-adjacency mirrors out-adjacency");
            }
        }
        prop_assert_eq!(out_total, g.edge_count());
        prop_assert_eq!(in_total, g.edge_count());
    }

    /// Transposing twice is the identity on adjacency.
    #[test]
    fn double_transpose_identity(edges in edge_list(30, 120)) {
        let g = GraphBuilder::from_edge_indices(edges);
        let t = g.transposed();
        for u in g.nodes() {
            prop_assert_eq!(t.in_neighbors(u), g.out_neighbors(u));
            prop_assert_eq!(t.out_neighbors(u), g.in_neighbors(u));
        }
    }

    /// BFS distances satisfy the triangle property along edges:
    /// d(v) ≤ d(u) + 1 for every edge u→v with d(u) finite.
    #[test]
    fn bfs_edge_relaxation(edges in edge_list(30, 150)) {
        let g = GraphBuilder::from_edge_indices(edges);
        if g.node_count() == 0 { return Ok(()); }
        let d = bfs_distances(&g, NodeId::new(0));
        prop_assert_eq!(d[0], 0);
        for (u, v) in g.edges() {
            let du = d[u.index()];
            if du != u32::MAX {
                prop_assert!(d[v.index()] <= du + 1);
            }
        }
    }

    /// Nodes in the same SCC are mutually reachable; nodes in different SCCs
    /// are not mutually reachable.
    #[test]
    fn scc_matches_mutual_reachability(edges in edge_list(14, 60)) {
        let g = GraphBuilder::from_edge_indices(edges);
        if g.node_count() == 0 { return Ok(()); }
        let scc = tarjan_scc(&g);
        // Oracle: mutual reachability via BFS both ways.
        let dists: Vec<Vec<u32>> = g.nodes().map(|u| bfs_distances(&g, u)).collect();
        for u in g.nodes() {
            for v in g.nodes() {
                let mutual = dists[u.index()][v.index()] != u32::MAX
                    && dists[v.index()][u.index()] != u32::MAX;
                prop_assert_eq!(scc.same_component(u, v), mutual,
                    "u={:?} v={:?}", u, v);
            }
        }
    }

    /// The induced subgraph over ALL nodes is isomorphic to the original
    /// (identical under the identity mapping).
    #[test]
    fn full_subgraph_is_identity(edges in edge_list(25, 100)) {
        let g = GraphBuilder::from_edge_indices(edges);
        let (sub, map) = induced_subgraph(&g, g.nodes());
        prop_assert_eq!(sub.node_count(), g.node_count());
        prop_assert_eq!(sub.edge_count(), g.edge_count());
        for u in g.nodes() {
            prop_assert_eq!(map.to_sub(u), Some(u));
            prop_assert_eq!(sub.out_neighbors(u), g.out_neighbors(u));
        }
    }

    /// Subgraph edges are exactly the original edges with both endpoints kept.
    #[test]
    fn subgraph_edge_soundness(edges in edge_list(20, 80), keep_mask in prop::collection::vec(any::<bool>(), 20)) {
        let g = GraphBuilder::from_edge_indices(edges);
        let keep: Vec<NodeId> = g.nodes().filter(|u| keep_mask.get(u.index()).copied().unwrap_or(false)).collect();
        let expected: usize = g.edges()
            .filter(|(u, v)| keep.contains(u) && keep.contains(v))
            .count();
        let (sub, map) = induced_subgraph(&g, keep.iter().copied());
        prop_assert_eq!(sub.edge_count(), expected);
        for (su, sv) in sub.edges() {
            prop_assert!(g.has_edge(map.to_orig(su), map.to_orig(sv)));
        }
    }

    /// Stats invariants: reciprocity and density within [0,1]-ish bounds,
    /// histogram sums to node count.
    #[test]
    fn stats_bounds(edges in edge_list(30, 150)) {
        let g = GraphBuilder::from_edge_indices(edges);
        let s = GraphStats::compute(&g);
        prop_assert!(s.reciprocity >= 0.0 && s.reciprocity <= 1.0);
        prop_assert!(s.density >= 0.0);
        prop_assert_eq!(s.nodes, g.node_count());
        prop_assert_eq!(s.edges, g.edge_count());
        let hist = relgraph::stats::out_degree_histogram(&g);
        prop_assert_eq!(hist.iter().sum::<usize>(), g.node_count());
    }

    /// Weighted duplicate merging conserves total weight.
    #[test]
    fn duplicate_merge_conserves_weight(
        pairs in prop::collection::vec((0u32..10, 0u32..10, 1u32..100), 1..60)
    ) {
        let mut b = GraphBuilder::new();
        let mut total = 0.0;
        for (u, v, w) in &pairs {
            let w = *w as f64;
            total += w;
            b.add_weighted_edge(NodeId::new(*u), NodeId::new(*v), w);
        }
        let g = b.build();
        let got: f64 = g.weighted_edges().map(|(_, _, w)| w).sum();
        prop_assert!((got - total).abs() < 1e-6 * total.max(1.0));
    }
}
