//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use relgraph::{bfs_distances, induced_subgraph, tarjan_scc, GraphBuilder, GraphStats, NodeId};

/// Strategy: a random edge list over up to `n` nodes.
fn edge_list(max_nodes: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..max_nodes, 0..max_nodes), 0..max_edges)
}

proptest! {
    /// CSR invariants: neighbor lists sorted and deduplicated, in/out edge
    /// counts agree, and every out-edge has a matching in-edge.
    #[test]
    fn csr_invariants(edges in edge_list(40, 200)) {
        let g = GraphBuilder::from_edge_indices(edges);
        let mut out_total = 0;
        let mut in_total = 0;
        for u in g.nodes() {
            let outs = g.out_neighbors(u);
            out_total += outs.len();
            prop_assert!(outs.windows(2).all(|w| w[0] < w[1]), "out list sorted+dedup");
            let ins = g.in_neighbors(u);
            in_total += ins.len();
            prop_assert!(ins.windows(2).all(|w| w[0] < w[1]), "in list sorted+dedup");
            for &v in outs {
                prop_assert!(g.in_neighbors(v).binary_search(&u).is_ok(),
                    "in-adjacency mirrors out-adjacency");
            }
        }
        prop_assert_eq!(out_total, g.edge_count());
        prop_assert_eq!(in_total, g.edge_count());
    }

    /// Transposing twice is the identity on adjacency.
    #[test]
    fn double_transpose_identity(edges in edge_list(30, 120)) {
        let g = GraphBuilder::from_edge_indices(edges);
        let t = g.transposed();
        for u in g.nodes() {
            prop_assert_eq!(t.in_neighbors(u).collect::<Vec<_>>(), g.out_neighbors(u));
            prop_assert_eq!(t.out_neighbors(u).collect::<Vec<_>>(), g.in_neighbors(u));
        }
    }

    /// The compact delta-varint representation is neighbor- and
    /// weight-equivalent to the standard CSR for random graphs under
    /// every node ordering, and decodes back to the identical CSR.
    #[test]
    fn compact_equivalent_to_csr_across_orderings(
        edges in edge_list(40, 200),
        weighted in any::<bool>(),
        ordering in 0u8..4,
    ) {
        let base = if weighted {
            let mut b = GraphBuilder::new();
            for (i, (u, v)) in edges.iter().enumerate() {
                // f32-exact weights so the narrowing tier is lossless here.
                b.add_weighted_edge(NodeId::new(*u), NodeId::new(*v), (i % 7 + 1) as f64 * 0.5);
            }
            b.build()
        } else {
            GraphBuilder::from_edge_indices(edges)
        };
        let ordering = match ordering {
            0 | 1 => relgraph::NodeOrdering::Original,
            2 => relgraph::NodeOrdering::Bfs,
            _ => relgraph::NodeOrdering::DegreeDescending,
        };
        let g = base.reordered_by(ordering).map(|(g, _)| g).unwrap_or(base);
        let c = relgraph::CompactGraph::from_csr(&g);
        prop_assert_eq!(c.node_count(), g.node_count());
        prop_assert_eq!(c.edge_count(), g.edge_count());
        for u in g.nodes() {
            let outs: Vec<NodeId> = c.out_edges(u).map(|(v, _)| v).collect();
            prop_assert_eq!(outs, g.out_neighbors(u));
            let ins: Vec<NodeId> = c.in_edges(u).map(|(v, _)| v).collect();
            prop_assert_eq!(ins, g.in_neighbors(u));
            if let Some(ws) = g.out_weights(u) {
                let cw: Vec<f64> = c.out_edges(u).map(|(_, w)| w).collect();
                let narrowed: Vec<f64> = ws.iter().map(|&w| w as f32 as f64).collect();
                prop_assert_eq!(cw, narrowed);
            }
            prop_assert_eq!(c.out_degree(u), g.out_degree(u));
            prop_assert_eq!(c.in_degree(u), g.in_degree(u));
        }
        // Round trip reproduces the CSR arrays (weights here are f32-exact).
        let back = c.to_csr();
        for u in g.nodes() {
            prop_assert_eq!(back.out_neighbors(u), g.out_neighbors(u));
            prop_assert_eq!(back.in_neighbors(u), g.in_neighbors(u));
            prop_assert_eq!(back.out_weights(u), g.out_weights(u));
            prop_assert_eq!(back.in_weights(u), g.in_weights(u));
            prop_assert_eq!(back.out_weight_sum(u).to_bits(), g.out_weight_sum(u).to_bits());
        }
    }

    /// BFS distances satisfy the triangle property along edges:
    /// d(v) ≤ d(u) + 1 for every edge u→v with d(u) finite.
    #[test]
    fn bfs_edge_relaxation(edges in edge_list(30, 150)) {
        let g = GraphBuilder::from_edge_indices(edges);
        if g.node_count() == 0 { return Ok(()); }
        let d = bfs_distances(&g, NodeId::new(0));
        prop_assert_eq!(d[0], 0);
        for (u, v) in g.edges() {
            let du = d[u.index()];
            if du != u32::MAX {
                prop_assert!(d[v.index()] <= du + 1);
            }
        }
    }

    /// Nodes in the same SCC are mutually reachable; nodes in different SCCs
    /// are not mutually reachable.
    #[test]
    fn scc_matches_mutual_reachability(edges in edge_list(14, 60)) {
        let g = GraphBuilder::from_edge_indices(edges);
        if g.node_count() == 0 { return Ok(()); }
        let scc = tarjan_scc(&g);
        // Oracle: mutual reachability via BFS both ways.
        let dists: Vec<Vec<u32>> = g.nodes().map(|u| bfs_distances(&g, u)).collect();
        for u in g.nodes() {
            for v in g.nodes() {
                let mutual = dists[u.index()][v.index()] != u32::MAX
                    && dists[v.index()][u.index()] != u32::MAX;
                prop_assert_eq!(scc.same_component(u, v), mutual,
                    "u={:?} v={:?}", u, v);
            }
        }
    }

    /// The induced subgraph over ALL nodes is isomorphic to the original
    /// (identical under the identity mapping).
    #[test]
    fn full_subgraph_is_identity(edges in edge_list(25, 100)) {
        let g = GraphBuilder::from_edge_indices(edges);
        let (sub, map) = induced_subgraph(&g, g.nodes());
        prop_assert_eq!(sub.node_count(), g.node_count());
        prop_assert_eq!(sub.edge_count(), g.edge_count());
        for u in g.nodes() {
            prop_assert_eq!(map.to_sub(u), Some(u));
            prop_assert_eq!(sub.out_neighbors(u), g.out_neighbors(u));
        }
    }

    /// Subgraph edges are exactly the original edges with both endpoints kept.
    #[test]
    fn subgraph_edge_soundness(edges in edge_list(20, 80), keep_mask in prop::collection::vec(any::<bool>(), 20)) {
        let g = GraphBuilder::from_edge_indices(edges);
        let keep: Vec<NodeId> = g.nodes().filter(|u| keep_mask.get(u.index()).copied().unwrap_or(false)).collect();
        let expected: usize = g.edges()
            .filter(|(u, v)| keep.contains(u) && keep.contains(v))
            .count();
        let (sub, map) = induced_subgraph(&g, keep.iter().copied());
        prop_assert_eq!(sub.edge_count(), expected);
        for (su, sv) in sub.edges() {
            prop_assert!(g.has_edge(map.to_orig(su), map.to_orig(sv)));
        }
    }

    /// Stats invariants: reciprocity and density within [0,1]-ish bounds,
    /// histogram sums to node count.
    #[test]
    fn stats_bounds(edges in edge_list(30, 150)) {
        let g = GraphBuilder::from_edge_indices(edges);
        let s = GraphStats::compute(&g);
        prop_assert!(s.reciprocity >= 0.0 && s.reciprocity <= 1.0);
        prop_assert!(s.density >= 0.0);
        prop_assert_eq!(s.nodes, g.node_count());
        prop_assert_eq!(s.edges, g.edge_count());
        let hist = relgraph::stats::out_degree_histogram(&g);
        prop_assert_eq!(hist.iter().sum::<usize>(), g.node_count());
    }

    /// Weighted duplicate merging conserves total weight.
    #[test]
    fn duplicate_merge_conserves_weight(
        pairs in prop::collection::vec((0u32..10, 0u32..10, 1u32..100), 1..60)
    ) {
        let mut b = GraphBuilder::new();
        let mut total = 0.0;
        for (u, v, w) in &pairs {
            let w = *w as f64;
            total += w;
            b.add_weighted_edge(NodeId::new(*u), NodeId::new(*v), w);
        }
        let g = b.build();
        let got: f64 = g.weighted_edges().map(|(_, _, w)| w).sum();
        prop_assert!((got - total).abs() < 1e-6 * total.max(1.0));
    }
}
