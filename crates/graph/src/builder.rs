//! Mutable graph builder.
//!
//! [`GraphBuilder`] collects nodes and edges in any order and produces an
//! immutable [`DirectedGraph`] in CSR form. Building is O(V + E) via two
//! counting sorts (one per direction).

use crate::csr::DirectedGraph;
use crate::error::GraphError;
use crate::labels::LabelTable;
use crate::node::NodeId;

/// How parallel (duplicate) edges are combined during [`GraphBuilder::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DuplicatePolicy {
    /// Keep a single copy; for weighted graphs, sum the weights.
    ///
    /// This is the default and matches the demo platform's dataset loader:
    /// the Twitter interaction networks collapse repeated interactions
    /// (retweet + reply + mention between the same pair) into one weighted
    /// edge.
    #[default]
    Merge,
    /// Keep a single copy with the weight of the first occurrence.
    KeepFirst,
}

/// Incremental builder for [`DirectedGraph`].
///
/// Nodes can be declared explicitly ([`GraphBuilder::add_node`],
/// [`GraphBuilder::add_labeled_node`]) or implicitly by adding edges with
/// raw indices; the node count is the maximum index seen plus one.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    edges: Vec<(NodeId, NodeId, f64)>,
    weighted: bool,
    node_count: usize,
    labels: LabelTable,
    drop_self_loops: bool,
    duplicate_policy: DuplicatePolicy,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with room for `nodes` nodes and `edges` edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        GraphBuilder {
            edges: Vec::with_capacity(edges),
            labels: LabelTable::with_capacity(nodes),
            node_count: 0,
            weighted: false,
            drop_self_loops: false,
            duplicate_policy: DuplicatePolicy::Merge,
        }
    }

    /// Discards self-loops (`u → u`) at build time.
    ///
    /// CycleRank considers cycles of length ≥ 2 only, so the reference
    /// datasets are loaded with self-loops dropped; PageRank-family
    /// algorithms tolerate them either way.
    pub fn drop_self_loops(&mut self, yes: bool) -> &mut Self {
        self.drop_self_loops = yes;
        self
    }

    /// Sets the policy for parallel edges (default: [`DuplicatePolicy::Merge`]).
    pub fn duplicate_policy(&mut self, p: DuplicatePolicy) -> &mut Self {
        self.duplicate_policy = p;
        self
    }

    /// Declares a fresh unlabeled node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::from_usize(self.node_count);
        self.node_count += 1;
        id
    }

    /// Returns the node labeled `label`, creating it if it does not exist.
    pub fn add_labeled_node(&mut self, label: impl AsRef<str>) -> NodeId {
        let label = label.as_ref();
        if let Some(id) = self.labels.resolve(label) {
            return id;
        }
        let id = self.add_node();
        self.labels.set(id, label);
        id
    }

    /// Looks up a labeled node without creating it.
    pub fn resolve_label(&self, label: &str) -> Option<NodeId> {
        self.labels.resolve(label)
    }

    /// Attaches (or replaces) the label of an existing node.
    pub fn set_label(&mut self, node: NodeId, label: impl AsRef<str>) -> &mut Self {
        self.ensure_node(node.raw());
        self.labels.set(node, label.as_ref());
        self
    }

    /// Ensures node indices `0..=idx` exist.
    pub fn ensure_node(&mut self, idx: u32) {
        self.node_count = self.node_count.max(idx as usize + 1);
    }

    /// Current number of declared nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Current number of staged edges (before dedup).
    pub fn staged_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds an unweighted edge `u → v`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.ensure_node(u.raw().max(v.raw()));
        self.edges.push((u, v, 1.0));
        self
    }

    /// Adds an unweighted edge by raw indices.
    pub fn add_edge_indices(&mut self, u: u32, v: u32) -> &mut Self {
        self.add_edge(NodeId::new(u), NodeId::new(v))
    }

    /// Adds a weighted edge `u → v`; marks the graph as weighted.
    ///
    /// Weights must be finite and strictly positive (checked at build time
    /// via [`GraphBuilder::try_build`]; [`GraphBuilder::build`] panics on
    /// violation).
    pub fn add_weighted_edge(&mut self, u: NodeId, v: NodeId, w: f64) -> &mut Self {
        self.ensure_node(u.raw().max(v.raw()));
        self.weighted = true;
        self.edges.push((u, v, w));
        self
    }

    /// Adds an edge between labeled nodes, creating the nodes as needed.
    pub fn add_labeled_edge(&mut self, from: impl AsRef<str>, to: impl AsRef<str>) -> &mut Self {
        let u = self.add_labeled_node(from);
        let v = self.add_labeled_node(to);
        self.add_edge(u, v)
    }

    /// Finalizes the builder into a CSR graph.
    ///
    /// # Panics
    /// Panics if a weighted edge carries a non-finite or non-positive weight.
    pub fn build(self) -> DirectedGraph {
        self.try_build().expect("invalid graph")
    }

    /// Finalizes the builder, returning an error instead of panicking.
    pub fn try_build(mut self) -> Result<DirectedGraph, GraphError> {
        if self.weighted {
            for &(u, v, w) in &self.edges {
                if !w.is_finite() || w <= 0.0 {
                    return Err(GraphError::InvalidWeight {
                        source: u.raw(),
                        target: v.raw(),
                        weight: w,
                    });
                }
            }
        }
        if self.drop_self_loops {
            self.edges.retain(|&(u, v, _)| u != v);
        }

        // Sort by (source, target) then deduplicate parallel edges. The
        // unstable sort avoids the stable sort's O(m/2) temp allocation;
        // Merge sums duplicate weights commutatively, so order among equal
        // keys is irrelevant. KeepFirst must see duplicates in arrival
        // order and keeps the stable sort.
        if self.duplicate_policy == DuplicatePolicy::KeepFirst {
            self.edges.sort_by_key(|a| (a.0, a.1));
        } else {
            self.edges.sort_unstable_by_key(|a| (a.0, a.1));
        }
        let mut deduped: Vec<(NodeId, NodeId, f64)> = Vec::with_capacity(self.edges.len());
        for (u, v, w) in self.edges.drain(..) {
            match deduped.last_mut() {
                Some(last) if last.0 == u && last.1 == v => {
                    if self.duplicate_policy == DuplicatePolicy::Merge {
                        last.2 += w;
                    }
                }
                _ => deduped.push((u, v, w)),
            }
        }

        let n = self.node_count;
        let m = deduped.len();

        // Forward CSR (edges are already sorted by source, then target).
        let mut out_offsets = vec![0usize; n + 1];
        for &(u, _, _) in &deduped {
            out_offsets[u.index() + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut out_targets = Vec::with_capacity(m);
        let mut out_weights = if self.weighted { Some(Vec::with_capacity(m)) } else { None };
        for &(_, v, w) in &deduped {
            out_targets.push(v);
            if let Some(ws) = out_weights.as_mut() {
                ws.push(w);
            }
        }

        // Cache per-node weight sums so solver sweeps get W(u) in O(1)
        // instead of re-summing adjacency slices on every call.
        let (mut out_weight_sums, mut in_weight_sums) = if self.weighted {
            (Some(vec![0.0f64; n]), Some(vec![0.0f64; n]))
        } else {
            (None, None)
        };
        if let (Some(outs), Some(ins)) = (out_weight_sums.as_mut(), in_weight_sums.as_mut()) {
            for &(u, v, w) in &deduped {
                outs[u.index()] += w;
                ins[v.index()] += w;
            }
        }

        // Reverse CSR via counting sort on target.
        let mut in_offsets = vec![0usize; n + 1];
        for &(_, v, _) in &deduped {
            in_offsets[v.index() + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_sources = vec![NodeId::new(0); m];
        let mut in_weights = if self.weighted { Some(vec![0.0f64; m]) } else { None };
        // Iterating edges in (source, target) order makes each target's
        // source list come out sorted.
        for &(u, v, w) in &deduped {
            let slot = cursor[v.index()];
            in_sources[slot] = u;
            if let Some(ws) = in_weights.as_mut() {
                ws[slot] = w;
            }
            cursor[v.index()] += 1;
        }

        Ok(DirectedGraph {
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_sources,
            in_weights,
            out_weight_sums,
            in_weight_sums,
            labels: self.labels,
        })
    }

    /// Convenience: builds a graph directly from `(source, target)` index
    /// pairs.
    pub fn from_edge_indices(edges: impl IntoIterator<Item = (u32, u32)>) -> DirectedGraph {
        let mut b = GraphBuilder::new();
        for (u, v) in edges {
            b.add_edge_indices(u, v);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().clone().build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_empty());
    }

    #[test]
    fn isolated_nodes_from_ensure() {
        let mut b = GraphBuilder::new();
        b.ensure_node(4);
        let g = b.build();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.out_degree(NodeId::new(4)), 0);
    }

    #[test]
    fn neighbors_sorted_both_directions() {
        let mut b = GraphBuilder::new();
        // Insert deliberately out of order.
        b.add_edge_indices(0, 3);
        b.add_edge_indices(0, 1);
        b.add_edge_indices(0, 2);
        b.add_edge_indices(2, 1);
        b.add_edge_indices(3, 1);
        let g = b.build();
        assert_eq!(
            g.out_neighbors(NodeId::new(0)),
            &[NodeId::new(1), NodeId::new(2), NodeId::new(3)]
        );
        assert_eq!(
            g.in_neighbors(NodeId::new(1)),
            &[NodeId::new(0), NodeId::new(2), NodeId::new(3)]
        );
    }

    #[test]
    fn duplicate_edges_merge_unweighted() {
        let mut b = GraphBuilder::new();
        b.add_edge_indices(0, 1);
        b.add_edge_indices(0, 1);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn duplicate_edges_merge_weighted_sums() {
        let mut b = GraphBuilder::new();
        b.add_weighted_edge(NodeId::new(0), NodeId::new(1), 2.0);
        b.add_weighted_edge(NodeId::new(0), NodeId::new(1), 3.5);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge_weight(NodeId::new(0), NodeId::new(1)), Some(5.5));
    }

    #[test]
    fn duplicate_keep_first() {
        let mut b = GraphBuilder::new();
        b.duplicate_policy(DuplicatePolicy::KeepFirst);
        b.add_weighted_edge(NodeId::new(0), NodeId::new(1), 2.0);
        b.add_weighted_edge(NodeId::new(0), NodeId::new(1), 3.5);
        let g = b.build();
        assert_eq!(g.edge_weight(NodeId::new(0), NodeId::new(1)), Some(2.0));
    }

    #[test]
    fn self_loops_kept_by_default_dropped_on_request() {
        let mut b = GraphBuilder::new();
        b.add_edge_indices(0, 0);
        b.add_edge_indices(0, 1);
        let g = b.clone().build();
        assert_eq!(g.edge_count(), 2);

        b.drop_self_loops(true);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(0)));
    }

    #[test]
    fn labeled_nodes_interned() {
        let mut b = GraphBuilder::new();
        let a1 = b.add_labeled_node("A");
        let a2 = b.add_labeled_node("A");
        assert_eq!(a1, a2);
        assert_eq!(b.node_count(), 1);
    }

    #[test]
    fn labeled_edges() {
        let mut b = GraphBuilder::new();
        b.add_labeled_edge("Pasta", "Italy");
        b.add_labeled_edge("Italy", "Pasta");
        let g = b.build();
        assert_eq!(g.node_count(), 2);
        let pasta = g.node_by_label("Pasta").unwrap();
        let italy = g.node_by_label("Italy").unwrap();
        assert!(g.has_edge(pasta, italy));
        assert!(g.has_edge(italy, pasta));
    }

    #[test]
    fn invalid_weight_rejected() {
        let mut b = GraphBuilder::new();
        b.add_weighted_edge(NodeId::new(0), NodeId::new(1), f64::NAN);
        assert!(matches!(b.try_build(), Err(GraphError::InvalidWeight { .. })));

        let mut b = GraphBuilder::new();
        b.add_weighted_edge(NodeId::new(0), NodeId::new(1), 0.0);
        assert!(b.try_build().is_err());

        let mut b = GraphBuilder::new();
        b.add_weighted_edge(NodeId::new(0), NodeId::new(1), -1.0);
        assert!(b.try_build().is_err());
    }

    #[test]
    fn from_edge_indices_helper() {
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 2), (2, 0)]);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn in_neighbors_sorted_regression() {
        // Counting sort must yield sorted in-neighbor lists even when edges
        // arrive in scrambled order.
        let mut b = GraphBuilder::new();
        b.add_edge_indices(5, 0);
        b.add_edge_indices(3, 0);
        b.add_edge_indices(4, 0);
        b.add_edge_indices(1, 0);
        b.add_edge_indices(2, 0);
        let g = b.build();
        let ins: Vec<u32> = g.in_neighbors(NodeId::new(0)).iter().map(|n| n.raw()).collect();
        assert_eq!(ins, vec![1, 2, 3, 4, 5]);
    }
}
