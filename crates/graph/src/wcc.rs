//! Weakly connected components.
//!
//! The demo's dataset browser reports how fragmented a graph is; weak
//! connectivity (ignoring edge direction) is the standard measure for
//! directed corpora, where strong connectivity is dominated by the giant
//! SCC but upload errors (e.g. truncated files) typically show up as many
//! small weak components.

use crate::csr::DirectedGraph;
use crate::node::NodeId;

/// Result of a weak-connectivity decomposition.
#[derive(Debug, Clone)]
pub struct WccResult {
    /// `component[u]` is the component index of node `u` (0-based, in
    /// order of first discovery by node id).
    pub component: Vec<u32>,
    /// Number of weak components.
    pub count: usize,
}

impl WccResult {
    /// Component of `u`.
    pub fn component_of(&self, u: NodeId) -> u32 {
        self.component[u.index()]
    }

    /// True iff `u` and `v` are weakly connected.
    pub fn same_component(&self, u: NodeId, v: NodeId) -> bool {
        self.component[u.index()] == self.component[v.index()]
    }

    /// Sizes per component.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &c in &self.component {
            sizes[c as usize] += 1;
        }
        sizes
    }

    /// Size of the largest weak component (0 for the empty graph).
    pub fn largest_size(&self) -> usize {
        self.sizes().into_iter().max().unwrap_or(0)
    }
}

/// Computes weakly connected components by BFS over the union of out- and
/// in-adjacency. O(V + E).
pub fn weakly_connected_components(g: &DirectedGraph) -> WccResult {
    let n = g.node_count();
    const UNSEEN: u32 = u32::MAX;
    let mut component = vec![UNSEEN; n];
    let mut count = 0u32;
    let mut queue = std::collections::VecDeque::new();

    for start in g.nodes() {
        if component[start.index()] != UNSEEN {
            continue;
        }
        component[start.index()] = count;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in g.out_neighbors(u).iter().chain(g.in_neighbors(u)) {
                if component[v.index()] == UNSEEN {
                    component[v.index()] = count;
                    queue.push_back(v);
                }
            }
        }
        count += 1;
    }
    WccResult { component, count: count as usize }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn single_chain_is_one_component() {
        // Directed chain: weakly connected even though not strongly.
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 2), (2, 3)]);
        let wcc = weakly_connected_components(&g);
        assert_eq!(wcc.count, 1);
        assert!(wcc.same_component(NodeId::new(0), NodeId::new(3)));
        assert_eq!(wcc.largest_size(), 4);
    }

    #[test]
    fn islands_are_separate() {
        let mut b = GraphBuilder::new();
        b.add_edge_indices(0, 1);
        b.add_edge_indices(2, 3);
        b.ensure_node(4); // isolated
        let g = b.build();
        let wcc = weakly_connected_components(&g);
        assert_eq!(wcc.count, 3);
        assert!(!wcc.same_component(NodeId::new(0), NodeId::new(2)));
        assert_eq!(wcc.sizes().iter().sum::<usize>(), 5);
        assert_eq!(wcc.largest_size(), 2);
    }

    #[test]
    fn direction_ignored() {
        // 0 -> 1 <- 2: no directed path 0→2, but weakly one component.
        let g = GraphBuilder::from_edge_indices([(0, 1), (2, 1)]);
        let wcc = weakly_connected_components(&g);
        assert_eq!(wcc.count, 1);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        let wcc = weakly_connected_components(&g);
        assert_eq!(wcc.count, 0);
        assert_eq!(wcc.largest_size(), 0);
    }

    #[test]
    fn wcc_coarsens_scc() {
        // Every SCC lies inside one WCC.
        let g = GraphBuilder::from_edge_indices([(0, 1), (1, 0), (1, 2), (3, 4), (4, 3)]);
        let wcc = weakly_connected_components(&g);
        let scc = crate::scc::tarjan_scc(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                if scc.same_component(u, v) {
                    assert!(wcc.same_component(u, v));
                }
            }
        }
        assert_eq!(wcc.count, 2);
    }
}
